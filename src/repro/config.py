"""Configuration dataclasses for models, clusters and inference runs.

Everything in the reproduction is driven by three configuration objects:

* :class:`ModelConfig` — the GPT MoE architecture (layers, experts, hidden
  size, gating).  Presets matching Table II of the paper are provided via
  :func:`paper_model`.
* :class:`ClusterConfig` — the simulated hardware (nodes, GPUs per node,
  link performance per tier).  :func:`wilkes3` builds the paper's testbed
  shape (4x A100 per node, NVLink intra-node, HDR200 InfiniBand inter-node).
* :class:`InferenceConfig` — the serving workload (batch of requests,
  prompt/generation lengths, execution mode).

All configs are frozen dataclasses: they are hashable, comparable and safe
to share between the engine, the placement solvers and the benchmarks.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

from repro.chaos.spec import ChaosSpec

__all__ = [
    "GatingKind",
    "ExecutionMode",
    "ModelConfig",
    "LinkSpec",
    "ClusterConfig",
    "InferenceConfig",
    "ServingConfig",
    "FleetConfig",
    "ROUTER_KINDS",
    "FLEET_ENGINES",
    "paper_model",
    "wilkes3",
    "PAPER_MODELS",
]


class GatingKind(str, Enum):
    """Routing function family used by the MoE layers.

    ``TOP1``/``TOP2`` match GShard-style softmax gating with the
    corresponding number of selected experts per token (the paper's
    inference experiments all use top-1 gating, Table II footnote).
    """

    TOP1 = "top1"
    TOP2 = "top2"

    @property
    def k(self) -> int:
        """Number of experts each token is routed to."""
        return 1 if self is GatingKind.TOP1 else 2


class ExecutionMode(str, Enum):
    """Expert-parallel execution strategies compared in the paper.

    * ``VANILLA`` — DeepSpeed-MoE style: two Alltoalls per MoE layer
      (dispatch + combine), experts placed round-robin.
    * ``CONTEXT_COHERENT`` — ExFlow without affinity: context replicated via
      AllGather each iteration, single Alltoall per layer, round-robin
      placement ("ExFlow w/o affinity" in Fig 10).
    * ``EXFLOW`` — context coherence + affinity-aware expert placement
      ("ExFlow w. affinity").
    """

    VANILLA = "vanilla"
    CONTEXT_COHERENT = "context_coherent"
    EXFLOW = "exflow"

    @property
    def uses_context_coherence(self) -> bool:
        return self is not ExecutionMode.VANILLA

    @property
    def uses_affinity_placement(self) -> bool:
        return self is ExecutionMode.EXFLOW


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a GPT MoE decoder.

    Parameters mirror the DeepSpeed-Megatron models in Table II.  ``d_model``
    is the transformer hidden size (``D`` in the table); each expert is a
    two-matrix FFN with inner size ``d_ff = ffn_mult * d_model``.

    ``moe_every`` controls how many decoder blocks share one MoE layer;
    the paper's models place an MoE layer in every block, so the default is
    1 and ``num_moe_layers == num_layers``.
    """

    name: str
    num_layers: int
    num_experts: int
    d_model: int
    gating: GatingKind = GatingKind.TOP1
    vocab_size: int = 8192
    num_heads: int = 16
    ffn_mult: int = 4
    moe_every: int = 1
    capacity_factor: float = 0.0  # 0 => variable token capacity (paper setting)
    base_params: str = ""  # human-readable base model size, e.g. "350M"

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.num_experts <= 0:
            raise ValueError(f"num_experts must be positive, got {self.num_experts}")
        if self.d_model <= 0:
            raise ValueError(f"d_model must be positive, got {self.d_model}")
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by num_heads ({self.num_heads})"
            )
        if self.moe_every < 1:
            raise ValueError("moe_every must be >= 1")
        if self.capacity_factor < 0:
            raise ValueError("capacity_factor must be >= 0 (0 = unbounded)")

    @property
    def d_ff(self) -> int:
        """Expert FFN inner dimension."""
        return self.ffn_mult * self.d_model

    @property
    def num_moe_layers(self) -> int:
        """Number of decoder blocks containing an MoE FFN."""
        return self.num_layers // self.moe_every

    @property
    def moe_layer_indices(self) -> tuple[int, ...]:
        """Indices of decoder blocks whose FFN is a mixture of experts."""
        return tuple(i for i in range(self.num_layers) if (i + 1) % self.moe_every == 0)

    @property
    def expert_params(self) -> int:
        """Parameter count of a single expert FFN (two weight matrices)."""
        return 2 * self.d_model * self.d_ff

    @property
    def total_expert_params(self) -> int:
        return self.expert_params * self.num_experts * self.num_moe_layers

    def expert_bytes(self, dtype_bytes: int = 2) -> int:
        """Memory footprint of one expert in bytes (fp16 by default)."""
        return self.expert_params * dtype_bytes

    def with_experts(self, num_experts: int) -> "ModelConfig":
        """Return a copy with a different expert count (used by sweeps)."""
        return dataclasses.replace(
            self, num_experts=num_experts, name=f"{self.name.split('-E')[0]}-E{num_experts}"
        )


@dataclass(frozen=True)
class LinkSpec:
    """Alpha-beta model of one interconnect tier.

    ``latency_s`` is the fixed per-message cost (alpha) and ``bandwidth_Bps``
    the sustained bytes/second (1/beta).  Transfer of ``n`` bytes costs
    ``latency_s + n / bandwidth_Bps``.
    """

    name: str
    latency_s: float
    bandwidth_Bps: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be > 0")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across this link (alpha-beta model)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_Bps


# Published ballpark figures for the paper's testbed tiers.  Absolute values
# only set the time scale; all reproduced results are ratios.
LOCAL_LINK = LinkSpec("local", latency_s=0.0, bandwidth_Bps=1.5e12)  # HBM-resident, ~free
NVLINK = LinkSpec("nvlink", latency_s=2.0e-6, bandwidth_Bps=300.0e9)  # NVLink3 per-GPU
INFINIBAND = LinkSpec("infiniband", latency_s=8.0e-6, bandwidth_Bps=25.0e9)  # HDR200 eff.


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and performance of the simulated GPU cluster.

    The hierarchy is ``cluster -> node -> gpu``.  Three link tiers govern
    communication cost: ``local`` (same GPU — memcpy within HBM), ``intra``
    (GPUs on one node — NVLink), ``inter`` (GPUs on different nodes —
    InfiniBand).
    """

    num_nodes: int
    gpus_per_node: int
    local_link: LinkSpec = LOCAL_LINK
    intra_link: LinkSpec = NVLINK
    inter_link: LinkSpec = INFINIBAND
    gpu_flops: float = 150.0e12  # sustained fp16 FLOP/s of one simulated GPU
    gpu_memory_bytes: int = 80 * 1024**3
    gpu_hour_usd: float = 2.5  # on-demand A100-80GB ballpark; cost accounting

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.gpu_flops <= 0:
            raise ValueError("gpu_flops must be positive")
        if self.gpu_hour_usd < 0:
            raise ValueError("gpu_hour_usd must be >= 0")

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, gpu: int) -> int:
        """Node index hosting global GPU rank ``gpu``."""
        if not 0 <= gpu < self.num_gpus:
            raise IndexError(f"gpu rank {gpu} out of range [0, {self.num_gpus})")
        return gpu // self.gpus_per_node

    def gpus_of_node(self, node: int) -> range:
        """Global GPU ranks hosted on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        start = node * self.gpus_per_node
        return range(start, start + self.gpus_per_node)

    def same_node(self, gpu_a: int, gpu_b: int) -> bool:
        return self.node_of(gpu_a) == self.node_of(gpu_b)

    def link_between(self, gpu_a: int, gpu_b: int) -> LinkSpec:
        """Link tier used for a transfer between two GPU ranks."""
        if gpu_a == gpu_b:
            return self.local_link
        if self.same_node(gpu_a, gpu_b):
            return self.intra_link
        return self.inter_link

    def gpu_pairs(self) -> Iterator[tuple[int, int]]:
        """All ordered pairs of distinct GPU ranks."""
        for a in range(self.num_gpus):
            for b in range(self.num_gpus):
                if a != b:
                    yield a, b

    def experts_per_gpu(self, num_experts: int) -> int:
        """Per-layer expert capacity of one GPU (paper's C1)."""
        if num_experts % self.num_gpus != 0:
            raise ValueError(
                f"num_experts ({num_experts}) must divide evenly across "
                f"{self.num_gpus} GPUs for load-balanced expert parallelism"
            )
        return num_experts // self.num_gpus

    def experts_per_node(self, num_experts: int) -> int:
        """Per-layer expert capacity of one node (paper's C2)."""
        return self.experts_per_gpu(num_experts) * self.gpus_per_node


@dataclass(frozen=True)
class InferenceConfig:
    """A batched autoregressive serving workload.

    ``requests_per_gpu`` requests originate on every GPU (data parallelism);
    each has ``prompt_len`` prompt tokens and the engine generates
    ``generate_len`` new tokens.  ``dtype_bytes`` sets activation precision
    for communication volume accounting (fp16 default).
    """

    requests_per_gpu: int = 8
    prompt_len: int = 64
    generate_len: int = 32
    dtype_bytes: int = 2
    mode: ExecutionMode = ExecutionMode.EXFLOW
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests_per_gpu <= 0:
            raise ValueError("requests_per_gpu must be positive")
        if self.prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        if self.generate_len <= 0:
            raise ValueError("generate_len must be positive")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError("dtype_bytes must be 1, 2, 4 or 8")

    def total_requests(self, num_gpus: int) -> int:
        return self.requests_per_gpu * num_gpus

    def total_context_len(self) -> int:
        """Final context length of each request after generation."""
        return self.prompt_len + self.generate_len


@dataclass(frozen=True)
class ServingConfig:
    """A request-level serving scenario for the continuous-batching layer.

    Where :class:`InferenceConfig` describes one lockstep batch,
    ``ServingConfig`` describes an *open* system: requests arrive over time
    (Poisson or bursty), join the running decode batch as slots free up,
    and leave when their generation finishes.

    Parameters
    ----------
    arrival:
        ``"poisson"`` — memoryless arrivals at ``arrival_rate_rps`` — or
        ``"bursty"`` — a two-state Markov-modulated Poisson process whose
        burst state multiplies the rate by ``burst_factor`` while the calm
        state is slowed so the long-run mean rate stays
        ``arrival_rate_rps``.
    burst_fraction:
        Long-run fraction of requests drawn in the burst state.
    burst_persistence:
        Probability the arrival process stays in its current state from one
        request to the next (higher = longer bursts).
    max_batch_requests:
        Continuous-batching admission cap — the serving analogue of the
        engine's total request count.
    """

    arrival: str = "poisson"
    arrival_rate_rps: float = 64.0
    num_requests: int = 512
    burst_factor: float = 4.0
    burst_fraction: float = 0.25
    burst_persistence: float = 0.9
    max_batch_requests: int = 64
    prompt_len: int = 64
    generate_len: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(
                f"arrival must be 'poisson' or 'bursty', got {self.arrival!r}"
            )
        if self.arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in [0, 1)")
        if not 0.0 <= self.burst_persistence < 1.0:
            raise ValueError("burst_persistence must be in [0, 1)")
        # the two-state chain needs a calm-state stay probability in [0, 1):
        # pi_burst = burst_fraction requires burst_fraction * (1 - persistence)
        # <= (1 - burst_fraction), else no valid chain exists and the realized
        # burst fraction (and mean rate) would silently drift from the config
        if self.burst_fraction * (1.0 - self.burst_persistence) > (
            1.0 - self.burst_fraction
        ):
            raise ValueError(
                f"infeasible burst shape: burst_fraction={self.burst_fraction} "
                f"with burst_persistence={self.burst_persistence} admits no "
                "two-state chain; raise burst_persistence or lower burst_fraction"
            )
        if self.max_batch_requests <= 0:
            raise ValueError("max_batch_requests must be positive")
        if self.prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        if self.generate_len <= 0:
            raise ValueError("generate_len must be positive")


# request-router policies the fleet layer implements; kept here so
# FleetConfig can validate without importing repro.fleet (config sits at
# the bottom of the layering)
ROUTER_KINDS: tuple[str, ...] = ("round-robin", "jsq", "p2c", "affinity")

# fleet simulation engines: "event" is the per-event heap loop (the
# correctness oracle), "tick" the vectorized engine that batches event
# processing per decode tick; both produce bit-identical FleetResults
FLEET_ENGINES: tuple[str, ...] = ("event", "tick")


@dataclass(frozen=True)
class FleetConfig:
    """A multi-replica serving deployment for the fleet layer.

    Where :class:`ServingConfig` describes the traffic offered to *one*
    replica, ``FleetConfig`` describes the deployment that absorbs it: how
    many independent replicas run behind the router, which routing policy
    assigns requests, what SLOs admission enforces, and how the reactive
    autoscaler may grow or shrink the fleet.

    Parameters
    ----------
    num_replicas:
        Replicas serving at t=0 (each a full expert-parallel cluster).
    router:
        One of :data:`ROUTER_KINDS` — ``round-robin``, ``jsq``
        (join-shortest-queue), ``p2c`` (power-of-two-choices) or
        ``affinity`` (placement-aware kept-mass scoring).
    num_regimes:
        Distinct routing regimes in the traffic mix; replica placements are
        fit round-robin across regimes, so with more than one regime the
        fleet is heterogeneous and affinity routing has signal to exploit.
    slo_ms / batch_slo_ms:
        Latency deadlines of the interactive (priority 0) and batch
        (priority 1) classes.
    interactive_fraction:
        Fraction of offered requests in the interactive class.
    shed_slack:
        Admission sheds a request when its predicted latency exceeds
        ``slack * slo``; values > 1 admit optimistically, < 1 shed early.
    max_queue_per_replica:
        Hard cap on any one replica's wait queue; arrivals beyond it are
        shed regardless of predicted latency.
    autoscale:
        Enable the reactive autoscaler (otherwise the fleet is static).
    min_replicas / max_replicas:
        Autoscaler bounds on the live replica count.
    scale_up_queue_per_replica / scale_down_queue_per_replica:
        Queue-depth-per-replica thresholds triggering scale-up/down.
    autoscale_check_every_s:
        Autoscaler evaluation cadence on the simulation clock.
    scale_dwell_checks:
        Consecutive over/under-threshold checks required before acting
        (hysteresis against reacting to one bursty tick).
    boot_overhead_s:
        Fixed per-replica boot cost (process start, CUDA context, …) added
        on top of the modelled weight-load + placement-migration time.
    migrate_on_drain:
        When a replica is drained by scale-down, hand its queued (not yet
        admitted) requests back to the router for re-placement on the
        remaining replicas instead of letting them wait out the drain.
        The replica's *active* decode batch always finishes in place
        (migrating KV state mid-generation is not modelled).
    replace:
        Run each replica's own PR-2 online re-placement loop.
    engine:
        Which simulation engine executes the fleet: ``"event"`` pops one
        heap event at a time (the reference oracle), ``"tick"`` batches
        event processing per decode tick with array state (identical
        results, built for million-request fleets).
    affinity_load_weight:
        Congestion penalty subtracted from the affinity router's kept-mass
        score per unit of relative replica load (0 = pure affinity).  The
        default 1.0 trades one full batch of backlog against one unit of
        kept mass — enough to spill traffic off a matched-but-congested
        replica instead of herding.
    chaos:
        Optional deterministic fault-injection schedule
        (:class:`~repro.chaos.spec.ChaosSpec`): replica crashes, spot
        preemptions, brownouts, and the retry policy governing failed
        request attempts.  ``None`` (the default) is a sunny day.
    """

    num_replicas: int = 4
    router: str = "p2c"
    num_regimes: int = 2
    slo_ms: float = 400.0
    batch_slo_ms: float = 4000.0
    interactive_fraction: float = 0.8
    shed_slack: float = 1.0
    max_queue_per_replica: int = 256
    autoscale: bool = False
    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_queue_per_replica: float = 6.0
    scale_down_queue_per_replica: float = 0.5
    autoscale_check_every_s: float = 0.2
    scale_dwell_checks: int = 2
    boot_overhead_s: float = 0.0
    migrate_on_drain: bool = True
    replace: bool = False
    affinity_load_weight: float = 1.0
    engine: str = "event"
    chaos: ChaosSpec | None = None

    def __post_init__(self) -> None:
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.router not in ROUTER_KINDS:
            raise ValueError(
                f"unknown router {self.router!r}; choose from {ROUTER_KINDS}"
            )
        if self.num_regimes < 1:
            raise ValueError("num_regimes must be >= 1")
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if self.batch_slo_ms < self.slo_ms:
            raise ValueError("batch_slo_ms must be >= slo_ms (batch is the laxer class)")
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError("interactive_fraction must be in [0, 1]")
        if self.shed_slack <= 0:
            raise ValueError("shed_slack must be positive")
        if self.max_queue_per_replica <= 0:
            raise ValueError("max_queue_per_replica must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not self.min_replicas <= self.num_replicas <= self.max_replicas:
            raise ValueError("num_replicas must lie in [min_replicas, max_replicas]")
        if self.scale_down_queue_per_replica < 0:
            raise ValueError("scale_down_queue_per_replica must be >= 0")
        if self.scale_up_queue_per_replica <= self.scale_down_queue_per_replica:
            raise ValueError(
                "scale_up_queue_per_replica must exceed scale_down_queue_per_replica"
            )
        if self.autoscale_check_every_s <= 0:
            raise ValueError("autoscale_check_every_s must be positive")
        if self.scale_dwell_checks < 1:
            raise ValueError("scale_dwell_checks must be >= 1")
        if self.boot_overhead_s < 0:
            raise ValueError("boot_overhead_s must be >= 0")
        if self.affinity_load_weight < 0:
            raise ValueError("affinity_load_weight must be >= 0")
        if self.engine not in FLEET_ENGINES:
            raise ValueError(
                f"unknown fleet engine {self.engine!r}; choose from {FLEET_ENGINES}"
            )
        if self.chaos is not None and not isinstance(self.chaos, ChaosSpec):
            raise TypeError("chaos must be a ChaosSpec or None")

    @property
    def slo_s(self) -> float:
        return self.slo_ms / 1e3

    @property
    def batch_slo_s(self) -> float:
        return self.batch_slo_ms / 1e3


def _paper_models() -> dict[str, ModelConfig]:
    """Table II of the paper: seven pre-trained GPT MoE variants."""
    models = {}
    for experts in (8, 16, 32, 64):
        models[f"gpt-m-350m-e{experts}"] = ModelConfig(
            name=f"MoE-GPT-M-350M-E{experts}",
            num_layers=24,
            num_experts=experts,
            d_model=1024,
            base_params="350M",
        )
    models["gpt-m-470m-e32"] = ModelConfig(
        name="MoE-GPT-M-470M-E32",
        num_layers=32,
        num_experts=32,
        d_model=1024,
        base_params="470M",
    )
    models["gpt-m-590m-e32"] = ModelConfig(
        name="MoE-GPT-M-590M-E32",
        num_layers=40,
        num_experts=32,
        d_model=1024,
        base_params="590M",
    )
    models["gpt-xl-1.3b-e16"] = ModelConfig(
        name="MoE-GPT-XL-1.3B-E16",
        num_layers=24,
        num_experts=16,
        d_model=2048,
        base_params="1.3B",
    )
    return models


PAPER_MODELS: dict[str, ModelConfig] = _paper_models()


def paper_model(key: str) -> ModelConfig:
    """Look up one of the Table II model presets by key.

    Keys: ``gpt-m-350m-e{8,16,32,64}``, ``gpt-m-470m-e32``,
    ``gpt-m-590m-e32``, ``gpt-xl-1.3b-e16``.
    """
    try:
        return PAPER_MODELS[key]
    except KeyError:
        raise KeyError(
            f"unknown paper model {key!r}; available: {sorted(PAPER_MODELS)}"
        ) from None


def wilkes3(num_nodes: int, gpus_per_node: int = 4) -> ClusterConfig:
    """The paper's Wilkes3 testbed shape: 4x A100-80GB per node.

    NVLink intra-node, dual-rail HDR200 InfiniBand inter-node.
    """
    return ClusterConfig(num_nodes=num_nodes, gpus_per_node=gpus_per_node)


def scaled_proxy(model: ModelConfig, d_model: int = 64, vocab_size: int = 512) -> ModelConfig:
    """Shrink a paper model's hidden dimensions for fast functional runs.

    Keeps the layer/expert structure (which drives all routing and placement
    behaviour) while making numpy forward passes cheap.  Head count is scaled
    down so the head dimension stays sane.
    """
    num_heads = max(1, d_model // 16)
    if d_model % num_heads:
        num_heads = 1
    return dataclasses.replace(
        model,
        d_model=d_model,
        vocab_size=vocab_size,
        num_heads=num_heads,
        name=f"{model.name}-proxy{d_model}",
    )


def validate_deployment(model: ModelConfig, cluster: ClusterConfig) -> None:
    """Raise if ``model`` cannot be expert-parallelised on ``cluster``.

    Checks divisibility (load-balance constraint, formula 9) and that each
    GPU can hold its expert shard in memory.
    """
    per_gpu = cluster.experts_per_gpu(model.num_experts)  # raises on indivisible
    shard_bytes = per_gpu * model.num_moe_layers * model.expert_bytes()
    if shard_bytes > cluster.gpu_memory_bytes:
        raise ValueError(
            f"expert shard needs {shard_bytes / 2**30:.1f} GiB but GPU has "
            f"{cluster.gpu_memory_bytes / 2**30:.1f} GiB"
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean helper used by benchmark summaries."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
