"""Seeded schedule builders and the shared brownout evaluation helper.

Engines never draw randomness for chaos: :func:`bad_day_schedule` spends
its seed once, here, and hands both engines the same frozen
:class:`~repro.chaos.spec.ChaosSpec`.  :func:`brownout_factor` is the one
piece of chaos float arithmetic evaluated *during* simulation, so both
engines call this exact function rather than each writing its own loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.chaos.spec import (
    BrownoutSpec,
    ChaosSpec,
    CrashSpec,
    PreemptSpec,
    RetryPolicy,
)

__all__ = ["bad_day_schedule", "brownout_factor"]


def brownout_factor(
    brownouts: Sequence[BrownoutSpec], replica_id: int, t_s: float
) -> float:
    """Combined step-time inflation on ``replica_id`` at step-start ``t_s``.

    Windows are half-open ``[start_s, start_s + duration_s)``; overlapping
    windows on the same replica multiply, in spec order.  Returns 1.0 when
    no window covers ``t_s``.
    """
    f = 1.0
    for b in brownouts:
        if b.replica == replica_id and b.start_s <= t_s < b.start_s + b.duration_s:
            f = f * b.factor
    return f


def bad_day_schedule(
    *,
    num_replicas: int,
    horizon_s: float,
    seed: int = 0,
    crashes: int = 1,
    preemptions: int = 1,
    brownouts: int = 1,
    grace_s: float | None = None,
    brownout_factor_x: float = 3.0,
    brownout_duration_s: float | None = None,
    retry: RetryPolicy | None = None,
    recover: bool = True,
) -> ChaosSpec:
    """Build one seeded "bad day" over ``[0, horizon_s)``.

    Fault times land in the middle 60% of the horizon (``[0.15h, 0.75h)``)
    so the fleet has warmed up before the first fault and has runway to
    recover before the run ends; targets are drawn uniformly from the
    *initial* replica ids ``[0, num_replicas)`` (autoscaled replicas get
    ids above that and are never targeted, which keeps the schedule
    meaningful whether or not scaling is enabled).  Same arguments, same
    spec — the returned ``ChaosSpec`` is frozen and JSON-round-trippable.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if not horizon_s > 0.0:
        raise ValueError("horizon_s must be > 0")
    rng = np.random.default_rng(seed)
    lo, hi = 0.15 * horizon_s, 0.75 * horizon_s
    if grace_s is None:
        grace_s = horizon_s / 50.0
    if brownout_duration_s is None:
        brownout_duration_s = horizon_s / 4.0

    def times(n: int) -> list[float]:
        return sorted(float(rng.uniform(lo, hi)) for _ in range(n))

    crash_specs = tuple(
        CrashSpec(time_s=t, replica=int(rng.integers(num_replicas)))
        for t in times(crashes)
    )
    preempt_specs = tuple(
        PreemptSpec(time_s=t, replica=int(rng.integers(num_replicas)), grace_s=grace_s)
        for t in times(preemptions)
    )
    brownout_specs = tuple(
        BrownoutSpec(
            start_s=t,
            duration_s=brownout_duration_s,
            replica=int(rng.integers(num_replicas)),
            factor=brownout_factor_x,
        )
        for t in times(brownouts)
    )
    return ChaosSpec(
        crashes=crash_specs,
        preemptions=preempt_specs,
        brownouts=brownout_specs,
        retry=retry if retry is not None else RetryPolicy(),
        recover=recover,
    )
