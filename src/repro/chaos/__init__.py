"""Deterministic fault injection for the fleet engines.

``repro.chaos`` owns the *what breaks* vocabulary — frozen injection
specs (:class:`ChaosSpec` and friends) and seeded schedule builders — and
deliberately none of the *how it breaks* mechanics, which live twice (and
must match bit-for-bit) in :mod:`repro.fleet.reference` and
:mod:`repro.fleet.engine`.
"""

from repro.chaos.schedule import bad_day_schedule, brownout_factor
from repro.chaos.spec import (
    CHAOS_FAULT_KINDS,
    BrownoutSpec,
    ChaosSpec,
    CrashSpec,
    PreemptSpec,
    RetryPolicy,
)

__all__ = [
    "BrownoutSpec",
    "ChaosSpec",
    "CrashSpec",
    "PreemptSpec",
    "RetryPolicy",
    "CHAOS_FAULT_KINDS",
    "bad_day_schedule",
    "brownout_factor",
]
