"""Frozen fault-injection specs: what breaks, when, and how hard.

A :class:`ChaosSpec` declares a *deterministic* injection schedule — every
event carries an absolute simulated time and a target replica id, so the
two fleet engines (the event-heap oracle and the vectorized tick engine)
can replay the identical bad day and produce bit-identical
:class:`~repro.fleet.result.FleetResult`\\ s.  Randomness, when wanted,
happens once at *spec build time* (see
:func:`repro.chaos.schedule.bad_day_schedule`), never inside an engine.

Three fault families:

* :class:`CrashSpec` — a hard replica failure: the in-flight decode batch
  and every queued request are lost at ``time_s``; each lost request goes
  through the :class:`RetryPolicy` (re-enter routing after backoff, or be
  recorded lost once attempts are exhausted).
* :class:`PreemptSpec` — a spot-instance reclaim: the replica receives
  notice at ``time_s``, drains for ``grace_s`` (queued requests re-route
  through the existing ``migrate_on_drain`` path when enabled), and any
  work still on it when the grace expires is lost like a crash.
* :class:`BrownoutSpec` — a soft failure: decode steps on one replica are
  inflated by ``factor`` inside a time window, so the admission
  controller's EWMA step estimate and the load-aware routers *feel* the
  slow replica instead of being told about it.

Everything here is a frozen dataclass of scalars and nested frozen
dataclasses, so a ``ChaosSpec`` obeys the same JSON round-trip and
unknown-field rules as every other scenario section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RetryPolicy",
    "CrashSpec",
    "PreemptSpec",
    "BrownoutSpec",
    "ChaosSpec",
    "CHAOS_FAULT_KINDS",
]

#: The ``kind`` values a :class:`~repro.fleet.requests.FailureRecord` (and
#: a lost request's ``reason``) can carry.
CHAOS_FAULT_KINDS: tuple[str, ...] = ("crash", "preempt", "timeout")


@dataclass(frozen=True)
class RetryPolicy:
    """How failed request attempts re-enter routing.

    An attempt fails when its replica crashes or is preempt-killed while
    the request is queued or decoding, or when the request has waited
    longer than ``attempt_timeout_s`` by the time it reaches the head of
    the admission queue.  Attempt ``n`` (1-based) of a request with
    ``n < max_attempts`` is retried: the request re-enters routing after
    ``backoff_base_s * backoff_factor ** (n - 1)`` seconds (exponential
    backoff modelled as re-admission delay).  Once ``max_attempts`` is
    reached the request is recorded as *lost* — a terminal outcome
    distinct from admission shedding.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0
    #: ``None`` disables per-attempt timeouts (keeps the spec JSON-clean —
    #: no infinities).
    attempt_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.attempt_timeout_s is not None and not self.attempt_timeout_s > 0.0:
            raise ValueError("attempt_timeout_s must be > 0 when set")

    def backoff_s(self, attempt: int) -> float:
        """Re-admission delay after failed attempt ``attempt`` (1-based).

        The exact float expression both engines evaluate — keep it here so
        they cannot diverge.
        """
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class CrashSpec:
    """A hard failure of replica ``replica`` at ``time_s``.

    No-op if the target does not exist yet or is not RUNNING/DRAINING at
    ``time_s`` (booting, already failed, or stopped) — keeping the no-op
    rule explicit keeps schedules deterministic under autoscaling.
    """

    time_s: float
    replica: int

    def __post_init__(self) -> None:
        if self.time_s < 0.0:
            raise ValueError("crash time_s must be >= 0")
        if self.replica < 0:
            raise ValueError("crash replica must be >= 0")


@dataclass(frozen=True)
class PreemptSpec:
    """A spot preemption notice for replica ``replica`` at ``time_s``.

    The replica stops taking new traffic immediately (DRAINING) and has
    ``grace_s`` seconds to finish in-flight work; whatever remains when
    the grace expires is lost as in a crash.  No-op unless the target is
    RUNNING at notice time.
    """

    time_s: float
    replica: int
    grace_s: float = 0.01

    def __post_init__(self) -> None:
        if self.time_s < 0.0:
            raise ValueError("preempt time_s must be >= 0")
        if self.replica < 0:
            raise ValueError("preempt replica must be >= 0")
        if self.grace_s < 0.0:
            raise ValueError("preempt grace_s must be >= 0")


@dataclass(frozen=True)
class BrownoutSpec:
    """Step-time inflation on replica ``replica`` over one time window.

    Every decode step *started* in ``[start_s, start_s + duration_s)``
    takes ``factor`` times as long.  Overlapping windows on the same
    replica multiply.
    """

    start_s: float
    duration_s: float
    replica: int
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ValueError("brownout start_s must be >= 0")
        if not self.duration_s > 0.0:
            raise ValueError("brownout duration_s must be > 0")
        if self.replica < 0:
            raise ValueError("brownout replica must be >= 0")
        if not self.factor > 0.0:
            raise ValueError("brownout factor must be > 0")


@dataclass(frozen=True)
class ChaosSpec:
    """One deterministic bad day: crash/preempt/brownout schedules + retries.

    ``recover=True`` orders a replacement replica — through the
    autoscaler's priced cold-start boot path — the moment a crash lands or
    a preemption notice arrives; the failure's time-to-recover is the span
    from that moment to the replacement going routable.
    """

    crashes: tuple[CrashSpec, ...] = ()
    preemptions: tuple[PreemptSpec, ...] = ()
    brownouts: tuple[BrownoutSpec, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    recover: bool = True

    def __post_init__(self) -> None:
        # accept lists for ergonomic construction; store tuples so the
        # spec stays hashable and value-comparable
        for name in ("crashes", "preemptions", "brownouts"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        for c in self.crashes:
            if not isinstance(c, CrashSpec):
                raise TypeError("crashes must contain CrashSpec entries")
        for p in self.preemptions:
            if not isinstance(p, PreemptSpec):
                raise TypeError("preemptions must contain PreemptSpec entries")
        for b in self.brownouts:
            if not isinstance(b, BrownoutSpec):
                raise TypeError("brownouts must contain BrownoutSpec entries")
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")

    @property
    def has_faults(self) -> bool:
        """True when the schedule can actually lose work (crash/preempt)."""
        return bool(self.crashes or self.preemptions)
