"""Terminal table / series formatting for benchmark output.

Every benchmark prints the rows or series of its paper figure through these
helpers so output stays uniform and diffable (EXPERIMENTS.md is generated
from the same strings).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: int = 3,
) -> str:
    """Fixed-width table with a separator line under the header."""
    rendered = [[_render_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width differs from header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths, strict=True))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)


def format_series(
    x: Sequence,
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
    precision: int = 3,
) -> str:
    """Multi-series table: one x column plus one column per named series."""
    headers = [x_label, *series.keys()]
    lengths = {len(v) for v in series.values()}
    if lengths and lengths != {len(x)}:
        raise ValueError("all series must match the x length")
    rows = [
        [xv, *(vals[i] for vals in series.values())] for i, xv in enumerate(x)
    ]
    return format_table(headers, rows, title=title, precision=precision)
