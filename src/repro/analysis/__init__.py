"""Analysis and reporting helpers.

Terminal-friendly renderings of the paper's artefacts: ASCII heatmaps
(Fig 2 / Figs 14-16), the Table I communication-volume formulas, and
benchmark report formatting.
"""

from repro.analysis.heatmap import ascii_heatmap, heatmap_csv
from repro.analysis.tables import (
    CommVolume,
    comm_volume_table,
    deepspeed_volume,
    exflow_volume,
    topo_aware_volume,
)
from repro.analysis.report import format_table, format_series

__all__ = [
    "ascii_heatmap",
    "heatmap_csv",
    "CommVolume",
    "comm_volume_table",
    "deepspeed_volume",
    "exflow_volume",
    "topo_aware_volume",
    "format_table",
    "format_series",
]
