"""ASCII / CSV heatmap rendering for affinity matrices.

The paper's Fig 2 and Figs 14-16 are colour heatmaps of conditional
probability matrices; in a terminal-only environment we render them with a
density character ramp plus CSV export for external plotting.
"""

from __future__ import annotations

import io

import numpy as np

__all__ = ["ascii_heatmap", "heatmap_csv"]

# light -> dark ramp; index proportional to normalised intensity
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    title: str = "",
    row_label: str = "",
    col_label: str = "",
    max_size: int = 64,
) -> str:
    """Render a non-negative matrix as an ASCII heatmap string.

    Intensity is normalised per-matrix (like the paper's per-panel colour
    scale).  Matrices wider than ``max_size`` are mean-pooled down so the
    output stays terminal-sized.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError("heatmap needs a 2-D matrix")
    if (m < 0).any():
        raise ValueError("heatmap values must be non-negative")

    # mean-pool oversized matrices
    def pool(a: np.ndarray, axis: int) -> np.ndarray:
        size = a.shape[axis]
        if size <= max_size:
            return a
        factor = int(np.ceil(size / max_size))
        pad = (-size) % factor
        if pad:
            widths = [(0, 0), (0, 0)]
            widths[axis] = (0, pad)
            a = np.pad(a, widths, mode="edge")
        new_shape = list(a.shape)
        new_shape[axis] = a.shape[axis] // factor
        new_shape.insert(axis + 1, factor)
        return a.reshape(new_shape).mean(axis=axis + 1)

    m = pool(pool(m, 0), 1)

    peak = m.max()
    scaled = m / peak if peak > 0 else m
    idx = np.minimum((scaled * (len(_RAMP) - 1)).round().astype(int), len(_RAMP) - 1)

    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    if col_label:
        out.write(f"    cols: {col_label}\n")
    for r in range(idx.shape[0]):
        prefix = f"{r:>3} " if not row_label else f"{r:>3} "
        out.write(prefix + "".join(_RAMP[i] for i in idx[r]) + "\n")
    if row_label:
        out.write(f"    rows: {row_label}\n")
    out.write(f"    peak value: {peak:.4f}\n")
    return out.getvalue()


def heatmap_csv(matrix: np.ndarray) -> str:
    """CSV dump of a matrix (one row per line, 6-digit precision)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError("heatmap needs a 2-D matrix")
    buf = io.StringIO()
    np.savetxt(buf, m, delimiter=",", fmt="%.6f")
    return buf.getvalue()
