"""Table I: analytic forward-communication volumes per framework.

The paper compares per-inference communication volume formulas (in token
units — one unit = one token's activation) across frameworks:

=================  =========================  ===========================
Framework          Top-1 gating               Top-2 gating
=================  =========================  ===========================
FasterMoE          ``2 G N L p_topo``         ``4 G N L p_topo``
TA-MoE             ``2 G N L p_topo``         ``4 G N L p_topo``
DeepSpeed-MoE      ``2 G N L p``              ``4 G N L p``
ExFlow             ``G N (L p* + G)``         ``G N (2 L p* + G)``
=================  =========================  ===========================

G = expert-parallel GPUs, N = tokens per GPU, L = MoE layers, and the
``p`` factors are the fraction of tokens actually crossing GPUs — plain
``p`` for affinity-blind placement, ``p_topo`` under topology-aware gating,
``p*`` under ExFlow's affinity placement (the engine *measures* ``p*``; the
functions here evaluate the formulas for any supplied value).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CommVolume",
    "deepspeed_volume",
    "topo_aware_volume",
    "exflow_volume",
    "comm_volume_table",
]


def _validate(g: int, n: int, L: int, p: float) -> None:
    if g < 1 or n < 1 or L < 1:
        raise ValueError("G, N and L must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("routing fraction must be in [0, 1]")


@dataclass(frozen=True)
class CommVolume:
    """One framework's forward communication volume (token units)."""

    framework: str
    top1: float
    top2: float
    applicable_in_inference: bool

    def scaled_by(self, token_bytes: int) -> tuple[float, float]:
        """Convert token units to bytes."""
        return self.top1 * token_bytes, self.top2 * token_bytes


def deepspeed_volume(g: int, n: int, L: int, p: float) -> CommVolume:
    """DeepSpeed-MoE: two Alltoalls per layer, fraction ``p`` crossing."""
    _validate(g, n, L, p)
    base = g * n * L * p
    return CommVolume("Deepspeed-MoE", 2 * base, 4 * base, True)


def topo_aware_volume(g: int, n: int, L: int, p_topo: float, framework: str) -> CommVolume:
    """FasterMoE / TA-MoE: same structure with the topology-shaped fraction.

    Marked not-applicable-in-inference: their gating constraint is baked in
    at training time and breaks when the serving topology differs.
    """
    _validate(g, n, L, p_topo)
    base = g * n * L * p_topo
    return CommVolume(framework, 2 * base, 4 * base, False)


def exflow_volume(g: int, n: int, L: int, p_star: float) -> CommVolume:
    """ExFlow: one Alltoall per layer (fraction ``p*``) + the AllGather term.

    The trailing ``G N G`` term is the per-iteration context AllGather —
    independent of L, which is why deeper models amortise it ("as the model
    has more layers, the overhead of AllGather becomes less significant").
    """
    _validate(g, n, L, p_star)
    top1 = g * n * (L * p_star + g)
    top2 = g * n * (2 * L * p_star + g)
    return CommVolume("ExFlow", top1, top2, True)


def comm_volume_table(
    g: int,
    n: int,
    L: int,
    p: float,
    p_topo: float | None = None,
    p_star: float | None = None,
) -> list[CommVolume]:
    """Evaluate all four Table I rows.

    ``p_topo`` defaults to ``0.7 p`` and ``p_star`` to ``0.5 p`` when not
    measured — conservative placeholders; the benchmarks substitute the
    fractions the engine actually measures.
    """
    p_topo = 0.7 * p if p_topo is None else p_topo
    p_star = 0.5 * p if p_star is None else p_star
    return [
        topo_aware_volume(g, n, L, p_topo, "FasterMoE"),
        topo_aware_volume(g, n, L, p_topo, "TA-MoE"),
        deepspeed_volume(g, n, L, p),
        exflow_volume(g, n, L, p_star),
    ]
