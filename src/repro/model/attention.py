"""Causal multi-head self-attention with an incremental KV cache.

The attention module is context-bound: a token's attention output depends on
every earlier token of *its own request*.  This is precisely the constraint
that forces vanilla expert parallelism to haul tokens back to their home GPU
after every MoE layer (Section III-A) — and that ExFlow's context coherence
removes by replicating the (immutable) KV context on every GPU.

The engine never re-runs attention per GPU; it uses this module to produce
hidden states and routing, while communication is accounted separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.tensors import normal_init, softmax

__all__ = ["KVCache", "CausalSelfAttention"]


@dataclass
class KVCache:
    """Append-only key/value store for one attention layer.

    Shapes: ``keys``/``values`` are (batch, heads, seq, head_dim).  ``seq``
    grows as generation appends tokens; earlier entries are immutable, which
    is the property that makes replicating them across GPUs safe (the
    paper's "once generated, these tokens remain immutable").
    """

    keys: np.ndarray
    values: np.ndarray

    @classmethod
    def empty(cls, batch: int, heads: int, head_dim: int) -> "KVCache":
        shape = (batch, heads, 0, head_dim)
        return cls(np.zeros(shape), np.zeros(shape))

    @property
    def seq_len(self) -> int:
        return self.keys.shape[2]

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new (batch, heads, new_seq, head_dim) keys/values."""
        if k.shape != v.shape:
            raise ValueError("key/value shapes must match")
        if k.shape[:2] != self.keys.shape[:2] or k.shape[3] != self.keys.shape[3]:
            raise ValueError(
                f"incompatible append shape {k.shape} onto cache {self.keys.shape}"
            )
        self.keys = np.concatenate([self.keys, k], axis=2)
        self.values = np.concatenate([self.values, v], axis=2)


class CausalSelfAttention:
    """Multi-head causal attention, single fused QKV projection.

    Parameters
    ----------
    d_model:
        Hidden size.
    num_heads:
        Head count; ``d_model`` must be divisible by it.
    rng:
        Initialisation source.
    """

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator) -> None:
        if d_model % num_heads != 0:
            raise ValueError(f"d_model {d_model} not divisible by num_heads {num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.w_qkv = normal_init(rng, d_model, 3 * d_model)
        self.w_out = normal_init(rng, d_model, d_model)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, seq, d_model) -> (batch, heads, seq, head_dim)."""
        b, s, _ = x.shape
        return x.reshape(b, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, heads, seq, head_dim) -> (batch, seq, d_model)."""
        b, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * d)

    def __call__(
        self, x: np.ndarray, cache: KVCache | None = None
    ) -> tuple[np.ndarray, KVCache]:
        """Attend the ``x`` block (batch, seq, d_model) over cache + itself.

        With a cache, ``x`` is the newly appended slice (typically seq=1
        during generation) and attends causally over all cached positions
        plus itself.  Returns the attention output and the updated cache.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.d_model:
            raise ValueError(f"expected (batch, seq, {self.d_model}), got {x.shape}")
        b, s_new, _ = x.shape

        qkv = x @ self.w_qkv
        q, k, v = np.split(qkv, 3, axis=-1)
        q = self._split_heads(q)
        k = self._split_heads(k)
        v = self._split_heads(v)

        if cache is None:
            cache = KVCache.empty(b, self.num_heads, self.head_dim)
        past = cache.seq_len
        cache.append(k, v)

        scores = q @ cache.keys.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        # causal mask: new position i (absolute past+i) sees keys [0, past+i]
        total = past + s_new
        key_pos = np.arange(total)
        query_pos = past + np.arange(s_new)
        mask = key_pos[None, :] > query_pos[:, None]
        scores = np.where(mask[None, None, :, :], -np.inf, scores)

        attn = softmax(scores, axis=-1)
        out = self._merge_heads(attn @ cache.values)
        return out @ self.w_out, cache
