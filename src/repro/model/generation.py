"""Autoregressive generation loop emitting routing traces.

Mirrors the paper's inference pipeline (Section IV-A): prompts are consumed
in one prefill pass, then tokens are generated one iteration at a time, each
newly generated token becoming immutable context for the next iteration.
Every forward position's expert path is recorded — this is the trace that
feeds affinity estimation and the distributed-engine replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.gating import GateOutput
from repro.model.tensors import softmax
from repro.model.transformer import MoETransformer

__all__ = ["GenerationResult", "generate"]


@dataclass(frozen=True)
class GenerationResult:
    """Output of one generation run.

    Attributes
    ----------
    tokens:
        (batch, prompt_len + steps) full sequences including the prompt.
    expert_paths:
        (positions, num_moe_layers) top-1 expert id of every processed
        position, prefill positions first (batch-major), then one slab of
        ``batch`` rows per generation step.
    position_request:
        (positions,) request (batch row) index of each trace row, aligning
        ``expert_paths`` with requests.
    position_is_prefill:
        (positions,) bool — True for prompt positions.
    """

    tokens: np.ndarray
    expert_paths: np.ndarray
    position_request: np.ndarray
    position_is_prefill: np.ndarray

    @property
    def decode_paths(self) -> np.ndarray:
        """Expert paths of generated (non-prefill) positions only."""
        return self.expert_paths[~self.position_is_prefill]


def _sample(logits: np.ndarray, rng: np.random.Generator, temperature: float) -> np.ndarray:
    """Sample one token per batch row from final-position logits."""
    if temperature <= 0:  # greedy
        return logits.argmax(axis=-1)
    probs = softmax(logits / temperature, axis=-1)
    cdf = probs.cumsum(axis=-1)
    u = rng.random((probs.shape[0], 1))
    return (cdf < u).sum(axis=-1)


def generate(
    model: MoETransformer,
    prompts: np.ndarray,
    steps: int,
    rng: np.random.Generator | None = None,
    temperature: float = 1.0,
) -> GenerationResult:
    """Generate ``steps`` tokens per request and trace all routing.

    Parameters
    ----------
    model:
        The MoE decoder.
    prompts:
        (batch, prompt_len) prompt token ids.
    steps:
        Generation iterations (one token per request per iteration).
    rng:
        Sampling source; ``None`` means greedy decoding.
    temperature:
        Sampling temperature (ignored when greedy).
    """
    prompts = np.asarray(prompts)
    if prompts.ndim != 2:
        raise ValueError(f"prompts must be (batch, prompt_len), got {prompts.shape}")
    if steps < 0:
        raise ValueError("steps must be >= 0")
    greedy = rng is None
    rng = rng or np.random.default_rng(0)

    batch, prompt_len = prompts.shape
    states = model.init_state(batch)
    logits, routings = model.forward(prompts, states)

    path_chunks: list[np.ndarray] = []
    request_chunks: list[np.ndarray] = []
    prefill_chunks: list[np.ndarray] = []

    def _stack(routs: Sequence[GateOutput], seq: int, is_prefill: bool) -> None:
        if not routs:
            return
        paths = np.stack([r.top1 for r in routs], axis=1)  # (batch*seq, L_moe)
        path_chunks.append(paths)
        req = np.repeat(np.arange(batch), seq)
        request_chunks.append(req)
        prefill_chunks.append(np.full(batch * seq, is_prefill))

    _stack(routings, prompt_len, True)

    tokens = prompts
    for _ in range(steps):
        next_logits = logits[:, -1, :]
        new = _sample(next_logits, rng, 0.0 if greedy else temperature)
        tokens = np.concatenate([tokens, new[:, None]], axis=1)
        logits, routings = model.forward(new[:, None], states)
        _stack(routings, 1, False)

    if path_chunks:
        expert_paths = np.concatenate(path_chunks, axis=0)
        position_request = np.concatenate(request_chunks)
        position_is_prefill = np.concatenate(prefill_chunks)
    else:  # model without MoE layers
        expert_paths = np.empty((0, model.config.num_moe_layers), dtype=np.int64)
        position_request = np.empty(0, dtype=np.int64)
        position_is_prefill = np.empty(0, dtype=bool)

    return GenerationResult(
        tokens=tokens,
        expert_paths=expert_paths,
        position_request=position_request,
        position_is_prefill=position_is_prefill,
    )
