"""Vectorised banks of expert FFNs.

Each expert is a two-matrix feed-forward network (the paper: "each expert
being a de facto large feed-forward network").  An :class:`ExpertBank` holds
all E experts of one MoE layer as stacked weight tensors so that dispatching
a token batch to its selected experts is a grouped einsum, not a Python loop
over experts.
"""

from __future__ import annotations

import numpy as np

from repro.model.tensors import gelu, normal_init

__all__ = ["ExpertBank"]


class ExpertBank:
    """All experts of one MoE layer, stored as (E, d_model, d_ff) stacks.

    Parameters
    ----------
    num_experts:
        Expert count E.
    d_model:
        Token hidden size.
    d_ff:
        Expert inner size.
    rng:
        Initialisation source.  Each expert gets independent weights, which
        is what lets experts specialise once the gate differentiates them.
    """

    def __init__(
        self, num_experts: int, d_model: int, d_ff: int, rng: np.random.Generator
    ) -> None:
        if min(num_experts, d_model, d_ff) < 1:
            raise ValueError("num_experts, d_model and d_ff must be positive")
        self.num_experts = num_experts
        self.d_model = d_model
        self.d_ff = d_ff
        self.w_in = normal_init(rng, num_experts, d_model, d_ff)
        self.w_out = normal_init(rng, num_experts, d_ff, d_model)

    @property
    def params_per_expert(self) -> int:
        return self.d_model * self.d_ff * 2

    def forward_expert(self, expert_id: int, x: np.ndarray) -> np.ndarray:
        """Run one expert on a (tokens, d_model) batch."""
        if not 0 <= expert_id < self.num_experts:
            raise IndexError(f"expert {expert_id} out of range [0, {self.num_experts})")
        h = gelu(x @ self.w_in[expert_id])
        return h @ self.w_out[expert_id]

    def forward_routed(self, x: np.ndarray, expert_ids: np.ndarray) -> np.ndarray:
        """Run each token through its assigned expert.

        ``x`` is (tokens, d_model); ``expert_ids`` is (tokens,).  Tokens are
        grouped by expert (argsort) so each expert processes its tokens as
        one matmul — the vectorisation pattern the HPC guide prescribes for
        scatter/gather-style work.
        """
        x = np.asarray(x, dtype=np.float64)
        expert_ids = np.asarray(expert_ids)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"expected (tokens, {self.d_model}), got {x.shape}")
        if expert_ids.shape != (x.shape[0],):
            raise ValueError("expert_ids must be one id per token")
        if expert_ids.size and (
            expert_ids.min() < 0 or expert_ids.max() >= self.num_experts
        ):
            raise ValueError("expert id out of range")

        out = np.empty_like(x)
        order = np.argsort(expert_ids, kind="stable")
        sorted_ids = expert_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        for group in np.split(order, boundaries):
            if group.size == 0:
                continue
            eid = int(expert_ids[group[0]])
            out[group] = self.forward_expert(eid, x[group])
        return out

    def forward_topk(
        self, x: np.ndarray, expert_ids: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Top-k combination: weighted sum over each token's k experts.

        ``expert_ids``/``weights`` are (tokens, k).
        """
        expert_ids = np.asarray(expert_ids)
        weights = np.asarray(weights, dtype=np.float64)
        if expert_ids.shape != weights.shape:
            raise ValueError("expert_ids and weights must have matching shapes")
        acc = np.zeros_like(np.asarray(x, dtype=np.float64))
        for j in range(expert_ids.shape[1]):
            acc += weights[:, j : j + 1] * self.forward_routed(x, expert_ids[:, j])
        return acc
