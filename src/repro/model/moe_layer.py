"""One MoE layer: gate + expert bank + routing record.

This is the unit the paper's communication analysis revolves around: in
distributed execution each :class:`MoELayer` implies an Alltoall dispatch
(and, without context coherence, a second Alltoall combine).  The layer
itself is communication-agnostic — it just computes and reports *which
expert each token chose*, which the engine turns into traffic.
"""

from __future__ import annotations

import numpy as np

from repro.config import GatingKind
from repro.model.experts import ExpertBank
from repro.model.gating import GateOutput, TopKGate

__all__ = ["MoELayer"]


class MoELayer:
    """Sparsely activated FFN: route each token to its top-k experts.

    Parameters mirror :class:`~repro.model.experts.ExpertBank` plus the
    gating kind.  ``capacity_factor`` > 0 enables GShard-style token
    dropping when an expert overflows ``capacity_factor * tokens / E``
    slots; the paper's models run with *variable capacity* (no dropping),
    which is the default here (0 = unbounded).
    """

    def __init__(
        self,
        num_experts: int,
        d_model: int,
        d_ff: int,
        rng: np.random.Generator,
        gating: GatingKind = GatingKind.TOP1,
        capacity_factor: float = 0.0,
        gate_temperature: float = 1.0,
    ):
        self.gate = TopKGate(d_model, num_experts, gating, rng, gate_temperature)
        self.experts = ExpertBank(num_experts, d_model, d_ff, rng)
        self.capacity_factor = capacity_factor

    @property
    def num_experts(self) -> int:
        return self.experts.num_experts

    def _apply_capacity(self, out: GateOutput) -> GateOutput:
        """Drop overflow tokens to their next-best expert (or keep if top-1).

        With top-1 gating an overflowing token simply stays with its expert
        (variable-capacity semantics would not drop either; capacity here
        exists for the ablations, not the headline runs).
        """
        if self.capacity_factor <= 0:
            return out
        n = out.num_tokens
        cap = int(np.ceil(self.capacity_factor * n / self.num_experts))
        experts = out.experts.copy()
        primary = experts[:, 0]
        counts = np.zeros(self.num_experts, dtype=np.int64)
        # deterministic first-come-first-served in token order
        for t in range(n):
            e = primary[t]
            if counts[e] < cap:
                counts[e] += 1
            elif out.k > 1:
                alt = experts[t, 1]
                if counts[alt] < cap:
                    experts[t, 0], experts[t, 1] = alt, e
                    counts[alt] += 1
                else:
                    counts[e] += 1  # both full: overflow in place
            else:
                counts[e] += 1
        return GateOutput(experts=experts, weights=out.weights, probs=out.probs)

    def __call__(self, x: np.ndarray) -> tuple[np.ndarray, GateOutput]:
        """Forward a (tokens, d_model) batch; return (output, routing)."""
        routing = self._apply_capacity(self.gate(np.asarray(x, dtype=np.float64)))
        y = self.experts.forward_topk(x, routing.experts, routing.weights)
        return y, routing
