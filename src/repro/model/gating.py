"""Top-k softmax gating (GShard-style) for MoE layers.

The gate is the component whose decisions the whole paper revolves around:
``TopKGate`` maps each token's hidden state to a distribution over experts
and selects the top-1 or top-2.  It is *shared across all GPUs* ("the gating
function is shared among all GPUs", Section IV-A), so a token can be routed
correctly no matter where it currently resides.

The GShard auxiliary load-balancing loss and its gradient are implemented
for the training-dynamics experiments (Figs 11/12): models trained with it
converge to balanced expert usage while still developing strong inter-layer
affinity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GatingKind
from repro.model.tensors import normal_init, softmax

__all__ = ["GateOutput", "TopKGate", "gshard_balance_loss"]


@dataclass(frozen=True)
class GateOutput:
    """Routing decision for a batch of tokens.

    Attributes
    ----------
    experts:
        (tokens, k) int array — selected expert ids, best first.
    weights:
        (tokens, k) float array — normalised combination weights for the
        selected experts (sums to 1 per token).
    probs:
        (tokens, E) full softmax distribution (used by the balance loss and
        by affinity analysis).
    """

    experts: np.ndarray
    weights: np.ndarray
    probs: np.ndarray

    @property
    def num_tokens(self) -> int:
        return self.experts.shape[0]

    @property
    def k(self) -> int:
        return self.experts.shape[1]

    @property
    def top1(self) -> np.ndarray:
        """Primary expert id per token (the paper's trace unit)."""
        return self.experts[:, 0]


class TopKGate:
    """Linear router + softmax + top-k selection.

    Parameters
    ----------
    d_model:
        Token hidden size.
    num_experts:
        Experts per layer (E).
    kind:
        Top-1 or top-2 selection.
    rng:
        Initialisation source.
    temperature:
        Softmax temperature; lower values sharpen routing and strengthen
        affinity (exposed for the affinity-strength ablation).
    """

    def __init__(
        self,
        d_model: int,
        num_experts: int,
        kind: GatingKind = GatingKind.TOP1,
        rng: np.random.Generator | None = None,
        temperature: float = 1.0,
    ):
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if kind.k > num_experts:
            raise ValueError(f"top-{kind.k} gating needs at least {kind.k} experts")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_experts = num_experts
        self.kind = kind
        self.temperature = temperature
        self.weight = normal_init(rng, d_model, num_experts)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """(tokens, E) router logits."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"expected (tokens, {self.d_model}), got {x.shape}")
        return (x @ self.weight) / self.temperature

    def __call__(self, x: np.ndarray) -> GateOutput:
        """Route a (tokens, d_model) batch."""
        probs = softmax(self.logits(x), axis=-1)
        k = self.kind.k
        # argpartition then sort the k winners — O(E) instead of full sort
        top = np.argpartition(probs, -k, axis=-1)[:, -k:]
        top_p = np.take_along_axis(probs, top, axis=-1)
        order = np.argsort(-top_p, axis=-1)
        experts = np.take_along_axis(top, order, axis=-1)
        weights = np.take_along_axis(top_p, order, axis=-1)
        weights = weights / weights.sum(axis=-1, keepdims=True)
        return GateOutput(experts=experts, weights=weights, probs=probs)

    def balance_loss(self, probs: np.ndarray, experts: np.ndarray) -> float:
        """GShard auxiliary loss for this gate's decisions."""
        return gshard_balance_loss(probs, experts, self.num_experts)

    def balance_grad(self, x: np.ndarray) -> np.ndarray:
        """d(balance loss)/d(weight) — used by the gate-only trainer.

        Differentiates the smooth part of the GShard loss
        ``E * sum_e f_e * P_e`` treating the dispatch fractions ``f_e`` as
        constants (the standard straight-through treatment).
        """
        x = np.asarray(x, dtype=np.float64)
        out = self(x)
        n, e = out.probs.shape
        f = np.bincount(out.top1, minlength=e) / max(n, 1)
        # dL/dprobs = E * f / n ; backprop through softmax
        dprobs = (e * f / max(n, 1))[None, :].repeat(n, axis=0)
        dot = (dprobs * out.probs).sum(axis=-1, keepdims=True)
        dlogits = out.probs * (dprobs - dot) / self.temperature
        return x.T @ dlogits


def gshard_balance_loss(probs: np.ndarray, experts: np.ndarray, num_experts: int) -> float:
    """GShard load-balance loss: ``E * sum_e f_e * P_e``.

    ``f_e`` is the fraction of tokens dispatched to expert ``e`` (top-1) and
    ``P_e`` the mean router probability of ``e``.  Perfectly balanced routing
    gives 1.0; fully collapsed routing gives ``num_experts``.
    """
    probs = np.asarray(probs, dtype=np.float64)
    experts = np.asarray(experts)
    if probs.ndim != 2 or probs.shape[1] != num_experts:
        raise ValueError(f"probs must be (tokens, {num_experts}), got {probs.shape}")
    top1 = experts[:, 0] if experts.ndim == 2 else experts
    n = probs.shape[0]
    if n == 0:
        return 0.0
    f = np.bincount(top1, minlength=num_experts) / n
    p = probs.mean(axis=0)
    return float(num_experts * (f * p).sum())
