"""Decoder-only GPT transformer with MoE feed-forward layers.

Structure follows the paper's DeepSpeed-Megatron models (Table II): a stack
of pre-norm blocks, each ``attention -> residual -> MoE FFN -> residual``,
token + learned positional embeddings, and a weight-tied LM head.  Every
block whose index appears in ``ModelConfig.moe_layer_indices`` uses a
mixture of experts; the rest use a dense FFN (with ``moe_every == 1`` every
block is MoE, matching the paper).

The forward pass returns the routing decisions of every MoE layer for the
positions processed — the raw material for affinity profiling, placement
and the distributed-engine simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ModelConfig
from repro.model.attention import CausalSelfAttention, KVCache
from repro.model.gating import GateOutput
from repro.model.moe_layer import MoELayer
from repro.model.tensors import gelu, layer_norm, normal_init

__all__ = ["BlockState", "MoETransformer"]


@dataclass
class BlockState:
    """Per-block mutable inference state (the attention KV cache)."""

    cache: KVCache


class _DenseFFN:
    """Plain two-matrix FFN used for non-MoE blocks."""

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator) -> None:
        self.w_in = normal_init(rng, d_model, d_ff)
        self.w_out = normal_init(rng, d_ff, d_model)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return gelu(x @ self.w_in) @ self.w_out


class _Block:
    """One decoder block: attention + (MoE or dense) FFN, pre-norm residual."""

    def __init__(self, config: ModelConfig, is_moe: bool, rng: np.random.Generator) -> None:
        self.attn = CausalSelfAttention(config.d_model, config.num_heads, rng)
        self.is_moe = is_moe
        if is_moe:
            self.ffn: MoELayer | _DenseFFN = MoELayer(
                config.num_experts,
                config.d_model,
                config.d_ff,
                rng,
                gating=config.gating,
                capacity_factor=config.capacity_factor,
            )
        else:
            self.ffn = _DenseFFN(config.d_model, config.d_ff, rng)

    def __call__(
        self, x: np.ndarray, state: BlockState
    ) -> tuple[np.ndarray, GateOutput | None]:
        """(batch, seq, d) -> (batch, seq, d), plus routing if MoE."""
        a, state.cache = self.attn(layer_norm(x), state.cache)
        x = x + a
        h = layer_norm(x)
        b, s, d = h.shape
        flat = h.reshape(b * s, d)
        routing = None
        if self.is_moe:
            y, routing = self.ffn(flat)  # type: ignore[misc]
        else:
            y = self.ffn(flat)
        return x + y.reshape(b, s, d), routing


class MoETransformer:
    """The full GPT MoE decoder.

    Parameters
    ----------
    config:
        Architecture description (use :func:`repro.config.scaled_proxy` to
        shrink hidden sizes for fast functional runs — the routing structure
        is preserved).
    rng:
        Initialisation source; pass a seeded generator for reproducibility.

    Notes
    -----
    ``forward`` processes a (batch, seq) token block given per-block states
    and returns logits for every position plus each MoE layer's
    :class:`GateOutput`, ordered by MoE layer index.  Gate outputs flatten
    positions batch-major: token ``(b, s)`` is row ``b * seq + s``.
    """

    def __init__(self, config: ModelConfig, rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.wte = normal_init(rng, config.vocab_size, config.d_model)
        self.wpe = normal_init(rng, 4096, config.d_model, scale=0.01)
        moe_set = set(config.moe_layer_indices)
        self.blocks = [
            _Block(config, i in moe_set, rng) for i in range(config.num_layers)
        ]

    @property
    def moe_layers(self) -> list[MoELayer]:
        """The MoE FFNs in layer order (len == config.num_moe_layers)."""
        return [b.ffn for b in self.blocks if b.is_moe]  # type: ignore[misc]

    def init_state(self, batch: int) -> list[BlockState]:
        """Fresh per-block KV caches for a new batch of requests."""
        return [
            BlockState(
                KVCache.empty(batch, self.config.num_heads, self.config.d_model // self.config.num_heads)
            )
            for _ in self.blocks
        ]

    def forward(
        self, tokens: np.ndarray, states: list[BlockState]
    ) -> tuple[np.ndarray, list[GateOutput]]:
        """Run a (batch, seq) token block through the stack.

        Returns (batch, seq, vocab) logits and per-MoE-layer routing for the
        ``batch * seq`` processed positions.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got {tokens.shape}")
        if len(states) != len(self.blocks):
            raise ValueError("one BlockState per block required")
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")

        past = states[0].cache.seq_len
        b, s = tokens.shape
        if past + s > self.wpe.shape[0]:
            raise ValueError(f"sequence length {past + s} exceeds positional table")

        x = self.wte[tokens] + self.wpe[past : past + s][None, :, :]
        routings: list[GateOutput] = []
        for block, state in zip(self.blocks, states, strict=True):
            x, routing = block(x, state)
            if routing is not None:
                routings.append(routing)
        logits = layer_norm(x) @ self.wte.T
        return logits, routings

    def route_hidden(self, hidden: np.ndarray) -> np.ndarray:
        """Route raw hidden states through every MoE gate (no FFN compute).

        Used by trainers and profilers that only need routing decisions.
        Returns (tokens, num_moe_layers) top-1 expert ids.
        """
        hidden = np.asarray(hidden, dtype=np.float64)
        paths = np.empty((hidden.shape[0], self.config.num_moe_layers), dtype=np.int64)
        for j, layer in enumerate(self.moe_layers):
            paths[:, j] = layer.gate(hidden).top1
        return paths

    def param_count(self) -> int:
        """Total parameter count (embeddings + blocks)."""
        total = self.wte.size + self.wpe.size
        for block in self.blocks:
            total += block.attn.w_qkv.size + block.attn.w_out.size
            ffn = block.ffn
            if isinstance(ffn, MoELayer):
                total += ffn.experts.w_in.size + ffn.experts.w_out.size
                total += ffn.gate.weight.size
            else:
                total += ffn.w_in.size + ffn.w_out.size
        return int(total)
