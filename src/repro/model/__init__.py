"""Pure-numpy GPT MoE model substrate.

The paper runs pre-trained DeepSpeed-Megatron GPT MoE checkpoints; this
package provides the functional equivalent the reproduction needs: a
decoder-only transformer whose FFNs are mixtures of experts with softmax
top-k gating.  The placement and engine layers only consume the model's
*routing decisions*, so the substrate's job is to produce realistic routing:
experts specialise on synthetic topics during a short gate-training phase,
after which inter-layer affinity emerges exactly as Section II-B describes.

Modules
-------
* :mod:`repro.model.tensors` — numerical primitives (softmax, layernorm,
  GELU, initialisers).
* :mod:`repro.model.attention` — causal multi-head attention with KV cache.
* :mod:`repro.model.experts` — vectorised banks of expert FFNs.
* :mod:`repro.model.gating` — top-1/top-2 softmax gate + GShard aux loss.
* :mod:`repro.model.moe_layer` — gate + experts + routing records.
* :mod:`repro.model.transformer` — the full decoder.
* :mod:`repro.model.generation` — autoregressive loop emitting traces.
"""

from repro.model.gating import GateOutput, TopKGate
from repro.model.experts import ExpertBank
from repro.model.moe_layer import MoELayer
from repro.model.transformer import MoETransformer
from repro.model.generation import generate, GenerationResult

__all__ = [
    "GateOutput",
    "TopKGate",
    "ExpertBank",
    "MoELayer",
    "MoETransformer",
    "generate",
    "GenerationResult",
]
