"""Numerical primitives shared by the model substrate.

Small, vectorised building blocks with no state: activations, normalisation,
stable softmax, and weight initialisers.  Everything takes and returns
``float64`` numpy arrays (precision is irrelevant at proxy scale and float64
keeps tests deterministic across BLAS backends).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "layer_norm",
    "gelu",
    "normal_init",
    "one_hot",
    "cross_entropy",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Parameter-free LayerNorm over the last dimension."""
    x = np.asarray(x, dtype=np.float64)
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps)


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-approximation GELU (the GPT-2 variant)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def normal_init(
    rng: np.random.Generator, *shape: int, scale: float | None = None
) -> np.ndarray:
    """Gaussian weight initialiser with 1/sqrt(fan_in) default scale."""
    if scale is None:
        fan_in = shape[-2] if len(shape) >= 2 else shape[-1]
        scale = 1.0 / np.sqrt(max(fan_in, 1))
    return rng.normal(0.0, scale, size=shape)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """One-hot encode an integer array into a trailing ``depth`` axis."""
    indices = np.asarray(indices)
    if indices.size and (indices.min() < 0 or indices.max() >= depth):
        raise ValueError(f"indices out of range for depth {depth}")
    out = np.zeros(indices.shape + (depth,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy of integer ``targets`` under ``logits``."""
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.shape[:-1] != targets.shape:
        raise ValueError(
            f"logits leading shape {logits.shape[:-1]} != targets shape {targets.shape}"
        )
    logp = log_softmax(logits, axis=-1)
    picked = np.take_along_axis(logp, targets[..., None], axis=-1)
    return float(-picked.mean())
