"""Once-per-process deprecation shims for superseded entry points.

The Scenario API (:mod:`repro.scenarios`) replaced the six parallel
``simulate_*`` entry points with one ``run(scenario)`` facade.  The old
functions keep working — every existing call site and test stays green —
but each emits a :class:`DeprecationWarning` the *first* time it is called
in a process, pointing at the scenario spelling.

The once-only guard is explicit (an attribute on the wrapper, not the
``warnings`` registry) so the behaviour is independent of the caller's
warning filters: ``-W always`` still yields exactly one warning per shim,
which is what the CI deprecation check pins.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

__all__ = ["deprecated_entry_point"]

F = TypeVar("F", bound=Callable[..., object])


def deprecated_entry_point(replacement: str) -> Callable[[F], F]:
    """Wrap a public function so its first call warns, pointing at ``replacement``.

    The undecorated implementation stays reachable as ``__wrapped__`` for
    internal callers that must not trigger (or consume) the warning.
    Tests can reset the guard by setting ``fn._warned = False``.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            if not wrapper._warned:  # type: ignore[attr-defined]
                wrapper._warned = True  # type: ignore[attr-defined]
                warnings.warn(
                    f"{fn.__name__.lstrip('_')}() is deprecated; use "
                    f"{replacement} (see repro.scenarios)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return fn(*args, **kwargs)

        wrapper._warned = False  # type: ignore[attr-defined]
        wrapper.__name__ = fn.__name__.lstrip("_")  # shim exports the public name
        wrapper.__qualname__ = wrapper.__name__
        return wrapper  # type: ignore[return-value]

    return decorate
