"""Command-line interface: ``python -m repro <command>``.

Wraps the common workflows so the library is usable without writing Python:

* ``run`` — execute any scenario: a registered preset by name or a JSON
  spec file (``--scenario``).  The one entry point that covers batch
  comparisons, single-replica serving, online re-placement and fleets.
  ``--trace``/``--metrics`` export Chrome-trace and metric-timeline JSON.
* ``report`` — terminal summary (headline + per-replica utilization) of
  an exported metrics timeline.
* ``scenarios`` — enumerate the registered presets (``scenarios list``).
* ``models`` — list the Table II model presets.
* ``profile`` — sample a routing trace (Markov router) to an ``.npz`` file.
* ``place`` — solve an expert placement from a trace file.
* ``simulate`` — run the three-way serving comparison and print the table.
* ``serve`` — request-level serving with continuous batching and tail-latency
  metrics (a thin wrapper that builds a serving/online Scenario).
* ``fleet`` — multi-replica serving behind a request router (a thin wrapper
  that builds a fleet Scenario).
* ``heatmap`` — render a trace's layer-pair affinity heatmap.

Every command takes ``--seed`` and prints deterministic output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

import numpy as np

from repro.analysis.heatmap import ascii_heatmap
from repro.analysis.report import format_table
from repro.chaos import bad_day_schedule
from repro.config import (
    FLEET_ENGINES,
    PAPER_MODELS,
    ROUTER_KINDS,
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    InferenceConfig,
    ServingConfig,
    paper_model,
)
from repro.core.affinity import affinity_matrix, scaled_affinity
from repro.core.online import ReplacementPolicy
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import SOLVERS, solve_placement
from repro.engine.comparison import ComparisonRow, compare_modes
from repro.engine.workload import DRIFT_KINDS
from repro.obs.export import openmetrics_text
from repro.obs.recorder import TimelineRecorder
from repro.obs.slo import SloSpec
from repro.scenarios import (
    SCENARIO_KINDS,
    DriftSpec,
    ReplacementSpec,
    Scenario,
    TelemetrySpec,
    get_scenario,
    list_scenarios,
    make_recorder,
)
from repro.scenarios import run as run_scenario
from repro.scenarios.report import SimReport
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExFlow reproduction: MoE inference with inter-layer expert affinity",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "run", help="run a scenario: registered preset name or JSON spec file"
    )
    p.add_argument(
        "name",
        nargs="?",
        help="registered scenario name (see `repro scenarios list`)",
    )
    p.add_argument(
        "--scenario",
        metavar="FILE",
        help="JSON scenario spec (written by Scenario.save / `run --out-spec`)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the SimReport as JSON"
    )
    p.add_argument("--out", metavar="FILE", help="also write the report JSON here")
    p.add_argument(
        "--out-spec",
        metavar="FILE",
        help="write the resolved scenario spec JSON here (for reproduction)",
    )
    p.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "record the run and write a Chrome-trace JSON (open in "
            "ui.perfetto.dev); serving and fleet scenarios only"
        ),
    )
    p.add_argument(
        "--metrics",
        metavar="FILE",
        help=(
            "record the run and write the per-window metric timeline JSON "
            "(readable with `repro report`); serving and fleet scenarios only"
        ),
    )
    p.add_argument(
        "--openmetrics",
        metavar="FILE",
        help=(
            "write the report as an OpenMetrics text exposition (counters, "
            "gauges, the request-latency histogram, SLO/alert gauges)"
        ),
    )

    p = sub.add_parser(
        "report", help="summarize a metrics/report JSON file in the terminal"
    )
    p.add_argument(
        "file",
        help=(
            "metrics JSON from `repro run --metrics` or a report JSON from "
            "`repro run --out` (needs a telemetry timeline)"
        ),
    )

    p = sub.add_parser("scenarios", help="enumerate the registered scenario presets")
    p.add_argument("action", nargs="?", default="list", choices=["list"])
    p.add_argument(
        "--kind",
        choices=list(SCENARIO_KINDS),
        help="only presets of this kind",
    )
    smoke_group = p.add_mutually_exclusive_group()
    smoke_group.add_argument(
        "--smoke-only", action="store_true", help="only CI-sized -smoke variants"
    )
    smoke_group.add_argument(
        "--full-only", action="store_true", help="exclude -smoke variants"
    )
    p.add_argument(
        "--names", action="store_true", help="bare names, one per line (for scripts)"
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: JSON list of preset summaries",
    )

    sub.add_parser("models", help="list the paper's model presets")

    p = sub.add_parser("profile", help="sample a routing trace to an .npz file")
    p.add_argument("--model", default="gpt-m-350m-e32", help="paper model key")
    p.add_argument("--tokens", type=int, default=3000)
    p.add_argument("--affinity", type=float, default=0.85)
    p.add_argument("--collision", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output .npz path")

    p = sub.add_parser("place", help="solve an expert placement from a trace")
    p.add_argument("--trace", required=True, help="input trace .npz")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--out", help="optional placement .npz path")

    p = sub.add_parser("simulate", help="compare serving strategies end to end")
    p.add_argument("--model", default="gpt-m-350m-e32")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--requests-per-gpu", type=int, default=8)
    p.add_argument("--prompt-len", type=int, default=64)
    p.add_argument("--generate-len", type=int, default=8)
    p.add_argument("--affinity", type=float, default=0.85)
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "serve", help="request-level serving simulation (continuous batching)"
    )
    p.add_argument("--model", default="gpt-m-350m-e32")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--arrival", default="poisson", choices=["poisson", "bursty"])
    p.add_argument("--rate", type=float, default=64.0, help="mean arrivals per second")
    p.add_argument("--requests", type=int, default=512)
    p.add_argument("--burst-factor", type=float, default=4.0)
    p.add_argument("--burst-fraction", type=float, default=0.25)
    p.add_argument("--burst-persistence", type=float, default=0.9)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--prompt-len", type=int, default=64)
    p.add_argument("--generate-len", type=int, default=32)
    p.add_argument(
        "--mode",
        default="exflow",
        choices=[m.value for m in ExecutionMode],
        help="execution strategy used to calibrate step cost",
    )
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--drift",
        default="none",
        choices=DRIFT_KINDS,
        help="routing drift scenario over the serving horizon",
    )
    p.add_argument(
        "--replace",
        action="store_true",
        help="enable online re-placement (kept-mass degradation trigger)",
    )
    p.add_argument(
        "--replace-every",
        type=int,
        default=0,
        metavar="STEPS",
        help="also force a re-solve every N decode steps (implies --replace)",
    )
    p.add_argument(
        "--replace-threshold",
        type=float,
        default=0.15,
        help="relative kept-mass drop that triggers a re-solve",
    )
    p.add_argument(
        "--halflife",
        type=float,
        default=2048.0,
        metavar="TOKENS",
        help="streaming affinity estimator halflife in tokens",
    )

    p = sub.add_parser(
        "fleet", help="multi-replica serving: router + SLO admission + autoscaling"
    )
    p.add_argument("--model", default="gpt-m-350m-e32")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--arrival", default="poisson", choices=["poisson", "bursty"])
    p.add_argument("--rate", type=float, default=256.0, help="mean arrivals per second")
    p.add_argument("--requests", type=int, default=512)
    p.add_argument("--burst-factor", type=float, default=4.0)
    p.add_argument("--burst-fraction", type=float, default=0.25)
    p.add_argument("--burst-persistence", type=float, default=0.9)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--prompt-len", type=int, default=64)
    p.add_argument("--generate-len", type=int, default=32)
    p.add_argument(
        "--mode",
        default="exflow",
        choices=[m.value for m in ExecutionMode],
        help="execution strategy pricing each replica's decode steps",
    )
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replicas", type=int, default=4, help="replicas at t=0")
    p.add_argument(
        "--router",
        default="p2c",
        choices=ROUTER_KINDS,
        help="request routing policy",
    )
    p.add_argument(
        "--regimes", type=int, default=2, help="routing regimes in the traffic mix"
    )
    p.add_argument(
        "--slo-ms", type=float, default=400.0, help="interactive-class latency SLO"
    )
    p.add_argument(
        "--autoscale",
        action="store_true",
        help="enable reactive queue-depth autoscaling",
    )
    p.add_argument("--min-replicas", type=int, default=1)
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument(
        "--replace",
        action="store_true",
        help="run each replica's online re-placement loop",
    )
    p.add_argument(
        "--engine",
        default="event",
        choices=FLEET_ENGINES,
        help=(
            "fleet simulation engine: the event-heap oracle or the "
            "vectorized tick engine (identical results, built for scale)"
        ),
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "inject a seeded 'bad day' (replica crashes, spot preemptions, "
            "brownouts) with retry-with-backoff serving; schedule derives "
            "from --seed"
        ),
    )
    p.add_argument(
        "--slo",
        action="store_true",
        help=(
            "attach SLO monitoring: burn-rate alerts over a recorded "
            "timeline plus signal-driven outage/brownout detection, printed "
            "as compliance/alert tables (observation-only — results are "
            "identical with or without it)"
        ),
    )

    p = sub.add_parser("heatmap", help="render a trace's affinity heatmap")
    p.add_argument("--trace", required=True)
    p.add_argument("--layer", type=int, default=0)

    p = sub.add_parser(
        "lint",
        help="run the repro-specific static-analysis rules (RPL0xx)",
        description=(
            "AST-based checks for the invariants the reproduction rests on: "
            "seeded randomness, clock-free simulator logic, unit-suffix "
            "safety, frozen-spec hygiene, set-iteration determinism and "
            "seed threading.  Exit code 1 when any diagnostic is emitted."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files/directories to lint (default: src benchmarks examples)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: JSON list of {path,line,col,code,message}",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )

    return parser


# -- result printers (shared by `run` and the legacy wrappers) ----------------


def _print_batch_rows(rows: dict[str, ComparisonRow], title: str) -> None:
    table = [
        [
            label,
            row.result.throughput_tokens_per_s,
            row.speedup,
            row.comm_reduction,
            row.result.alltoall_fraction,
            row.result.gpu_stay_fraction,
        ]
        for label, row in rows.items()
    ]
    print(
        format_table(
            ["strategy", "tokens/s", "speedup", "comm cut", "alltoall share", "GPU-stay"],
            table,
            title=title,
        )
    )


def _print_serving_result(res: Any, label: str, title: str) -> None:
    rows = [
        [
            label,
            len(res.completed),
            res.latency.p50_s * 1e3,
            res.latency.p95_s * 1e3,
            res.latency.p99_s * 1e3,
            res.throughput_tokens_per_s,
            res.mean_batch_size,
            res.utilization,
        ]
    ]
    print(
        format_table(
            [
                "arrival",
                "served",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "tokens/s",
                "mean batch",
                "util",
            ],
            rows,
            title=title,
        )
    )


def _print_online_events(online: Any, drift_label: str, had_policy: bool) -> None:
    timeline = online.kept_timeline
    res = online.serving
    print(
        f"drift={drift_label}: kept transition mass "
        f"{timeline[0].true_kept:.1%} -> {timeline[-1].true_kept:.1%} "
        f"over {res.decode_steps} steps"
    )
    if online.events:
        event_rows = [
            [
                e.step,
                f"{e.kept_before:.1%}",
                f"{e.kept_after:.1%}",
                e.moved_experts,
                e.stall_s * 1e3,
                "forced" if e.forced else "drop",
            ]
            for e in online.events
        ]
        print(
            format_table(
                ["step", "kept before", "kept after", "moved", "stall ms", "trigger"],
                event_rows,
                title=(
                    "online re-placements — total stall "
                    f"{online.migration_stall_s * 1e3:.3f} ms"
                ),
            )
        )
    elif had_policy:
        print("online re-placement enabled: no migration was triggered")


def _print_fleet_result(res: Any, router_label: str, title: str) -> None:
    rows = [
        [
            router_label,
            res.served,
            len(res.shed),
            f"{res.shed_fraction:.2%}",
            res.latency.p50_s * 1e3,
            res.latency.p95_s * 1e3,
            res.latency.p99_s * 1e3,
            f"{res.slo_attainment.get('interactive', 1.0):.1%}",
            res.throughput_rps,
            res.gpu_hours,
            res.usd_per_million_tokens,
        ]
    ]
    print(
        format_table(
            [
                "router",
                "served",
                "shed",
                "shed %",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "SLO ok",
                "req/s",
                "GPU-h",
                "$/1Mtok",
            ],
            rows,
            title=title,
        )
    )
    per_replica = [
        [
            s.replica_id,
            s.regime,
            s.final_state,
            s.served,
            s.decode_steps,
            s.mean_batch_size,
            f"{s.utilization:.1%}",
            s.busy_s,
            s.gpu_hours,
            s.replacements,
        ]
        for s in res.replicas
    ]
    print(
        format_table(
            [
                "replica",
                "regime",
                "state",
                "served",
                "steps",
                "mean batch",
                "util",
                "busy s",
                "GPU-h",
                "replacements",
            ],
            per_replica,
            title="per-replica",
        )
    )
    if res.scale_events:
        events = [
            [e.kind, e.time_s, f"{e.queue_per_replica:.1f}",
             e.replicas_before, e.replicas_after, e.cold_start_s * 1e3]
            for e in res.scale_events
        ]
        print(
            format_table(
                ["action", "t (s)", "queue/replica", "before", "after", "cold start ms"],
                events,
                title="autoscaler actions",
            )
        )
    if res.failures or res.lost or res.retries:
        fault_rows = [
            [
                f.kind,
                f.time_s,
                f.replica_id,
                f.lost_active,
                f.lost_queued,
                (
                    f"{(f.recovered_at_s - f.time_s) * 1e3:.2f}"
                    if f.recovered_at_s is not None
                    else "-"
                ),
            ]
            for f in res.failures
        ]
        if fault_rows:
            print(
                format_table(
                    ["fault", "t (s)", "replica", "lost act", "lost q", "recover ms"],
                    fault_rows,
                    title="chaos: injected failures",
                )
            )
        print(
            f"chaos: {len(res.lost)} request(s) lost after retries, "
            f"{res.retries} retry(ies), availability {res.availability:.2%}, "
            f"goodput {res.goodput_rps:.1f} req/s, "
            f"mean time-to-recover {res.mean_time_to_recover_s * 1e3:.2f} ms"
        )


def _print_slo_summary(
    slo: dict[str, Any], alerts: list[Any], detection: dict[str, Any]
) -> None:
    """Compliance, alert and detection tables for an SLO-monitored run."""
    if not slo:
        return
    ok = "ok" if slo.get("ok") else "VIOLATED"
    rows = [
        [
            "p95 latency",
            f"{float(slo.get('p95_observed_s', 0.0)) * 1e3:.2f} ms",
            f"{float(slo.get('p95_target_s', 0.0)) * 1e3:.2f} ms",
            "ok" if slo.get("p95_ok") else "VIOLATED",
        ],
        [
            "availability",
            f"{float(slo.get('availability_observed', 0.0)):.2%}",
            f">= {float(slo.get('availability_target', 0.0)):.2%}",
            "ok" if slo.get("availability_ok") else "VIOLATED",
        ],
        [
            "shed fraction",
            f"{float(slo.get('shed_fraction_observed', 0.0)):.2%}",
            f"<= {float(slo.get('max_shed_fraction', 0.0)):.2%}",
            "ok" if slo.get("shed_ok") else "VIOLATED",
        ],
    ]
    print(
        format_table(
            ["objective", "observed", "target", "status"],
            rows,
            title=(
                f"SLO compliance — {ok} "
                f"({slo.get('pages', 0)} page(s), {slo.get('warns', 0)} warn(s))"
            ),
        )
    )
    if alerts:
        alert_rows = [
            [
                a.get("severity"),
                a.get("signal"),
                f"{float(a.get('open_s', 0.0)) * 1e3:.3f}",
                f"{float(a.get('close_s', 0.0)) * 1e3:.3f}",
                f"{float(a.get('burn_at_open', 0.0)):.1f}x",
                f"{float(a.get('peak_burn', 0.0)):.1f}x",
                a.get("windows"),
            ]
            for a in alerts
            if isinstance(a, dict)
        ]
        print(
            format_table(
                ["severity", "signal", "open ms", "close ms", "burn@open", "peak", "windows"],
                alert_rows,
                title="burn-rate alerts",
            )
        )
    outages = detection.get("outages", []) if detection else []
    brownouts = detection.get("brownouts", []) if detection else []
    observed_rows = [
        [
            "outage",
            o.get("replica"),
            o.get("signal"),
            f"{float(o.get('detected_s', 0.0)) * 1e3:.3f}",
            f"{float(o.get('closed_s', 0.0)) * 1e3:.3f}",
            o.get("resolution"),
        ]
        for o in outages
        if isinstance(o, dict)
    ] + [
        [
            "brownout",
            b.get("replica"),
            f"z={float(b.get('peak_z', 0.0)):.1f}",
            f"{float(b.get('detected_s', 0.0)) * 1e3:.3f}",
            f"{float(b.get('closed_s', 0.0)) * 1e3:.3f}",
            b.get("resolution"),
        ]
        for b in brownouts
        if isinstance(b, dict)
    ]
    if observed_rows:
        print(
            format_table(
                ["event", "replica", "signal", "detected ms", "closed ms", "resolution"],
                observed_rows,
                title="signal-driven detections (no chaos channel)",
            )
        )
    scored = detection.get("scored") if detection else None
    if isinstance(scored, dict) and isinstance(scored.get("outages"), dict):
        so = scored["outages"]
        lat = so.get("detection_latency", {})
        print(
            f"detection vs ground truth: {so.get('detected', 0)}/"
            f"{so.get('observable_events', 0)} observable outage(s) detected "
            f"(recall {float(so.get('recall', 0.0)):.0%}, precision "
            f"{float(so.get('precision', 0.0)):.0%}), median detection latency "
            f"{float(lat.get('median_s', 0.0)) * 1e3:.3f} ms"
        )


def _print_report(scenario: Scenario, report: SimReport) -> None:
    """Kind-appropriate tables plus the unified summary line."""
    base_title = (
        f"{scenario.model.name} — scenario `{scenario.name}` "
        f"({report.kind}) on {scenario.cluster.num_nodes}x"
        f"{scenario.cluster.gpus_per_node} GPUs"
    )
    if report.kind == "batch":
        _print_batch_rows(report.raw, base_title)
    elif report.kind == "serving":
        _print_serving_result(report.raw, scenario.serving.arrival, base_title)
    elif report.kind == "online":
        _print_serving_result(report.raw.serving, scenario.serving.arrival, base_title)
        drift_label = scenario.drift.kind if scenario.drift else "none"
        _print_online_events(report.raw, drift_label, scenario.replacement is not None)
    else:
        _print_fleet_result(report.raw, scenario.fleet.router, base_title)
    if report.slo:
        _print_slo_summary(report.slo, report.alerts, report.detection)
    print(
        f"summary: {report.completed} served, {report.generated_tokens} tokens, "
        f"p95 {report.latency_p95_s * 1e3:.2f} ms, "
        f"{report.throughput_tokens_per_s:.0f} tokens/s, "
        f"{report.gpu_hours:.4f} GPU-h (${report.cost_usd:.4f}, "
        f"${report.usd_per_million_tokens:.2f}/1M tokens)"
    )


# -- commands -----------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    if (args.name is None) == (args.scenario is None):
        print(
            "error: give exactly one of a preset name or --scenario FILE",
            file=sys.stderr,
        )
        return 2
    spec_path = args.scenario
    if spec_path is None and (args.name.endswith(".json") or os.path.sep in args.name):
        spec_path = args.name
    if spec_path is not None:
        try:
            scenario = Scenario.load(spec_path)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            print(f"error: cannot load scenario {spec_path!r}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            scenario = get_scenario(args.name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    recorder = None
    if args.trace or args.metrics:
        if scenario.kind not in ("serving", "fleet"):
            print(
                f"error: --trace/--metrics record serving and fleet scenarios, "
                f"not kind {scenario.kind!r}",
                file=sys.stderr,
            )
            return 2
        recorder = (
            make_recorder(scenario)
            if scenario.telemetry is not None
            else TimelineRecorder()
        )
    report = run_scenario(scenario, recorder=recorder)
    if args.json:
        print(report.to_json())
    else:
        _print_report(scenario, report)
    # confirmations go to stderr so --json output stays machine-readable
    try:
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report.to_json() + "\n")
            print(f"wrote report to {args.out}", file=sys.stderr)
        if args.out_spec:
            scenario.save(args.out_spec)
            print(f"wrote scenario spec to {args.out_spec}", file=sys.stderr)
        if args.trace:
            assert recorder is not None
            recorder.write_chrome_trace(
                args.trace, alerts=report.alerts, detections=report.detection
            )
            print(
                f"wrote Chrome trace to {args.trace} (open in ui.perfetto.dev)",
                file=sys.stderr,
            )
        if args.metrics:
            assert recorder is not None
            doc = {
                "scenario": scenario.name,
                "kind": scenario.kind,
                "metrics": recorder.timeline(),
            }
            with open(args.metrics, "w") as fh:
                fh.write(json.dumps(doc) + "\n")
            print(f"wrote metrics timeline to {args.metrics}", file=sys.stderr)
        if args.openmetrics:
            with open(args.openmetrics, "w") as fh:
                fh.write(openmetrics_text(report.to_dict()))
            print(
                f"wrote OpenMetrics exposition to {args.openmetrics}",
                file=sys.stderr,
            )
    except OSError as exc:
        print(f"error: cannot write output: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Terminal summary of a metrics timeline (or a report carrying one)."""
    try:
        with open(args.file) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.file!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict):
        print(f"error: {args.file!r} is not a JSON object", file=sys.stderr)
        return 2
    if "traceEvents" in doc:
        print(
            f"error: {args.file!r} is a Chrome-trace file — open it in "
            "ui.perfetto.dev or chrome://tracing.  `repro report` reads the "
            "metrics JSON from `repro run --metrics` (or a report from "
            "`repro run --out` with a telemetry timeline).",
            file=sys.stderr,
        )
        return 2
    timeline = None
    for key in ("metrics", "timeline"):
        if isinstance(doc.get(key), dict):
            timeline = doc[key]
            break
    slo = doc.get("slo") if isinstance(doc.get("slo"), dict) else {}
    alerts = doc.get("alerts") if isinstance(doc.get("alerts"), list) else []
    detection = doc.get("detection") if isinstance(doc.get("detection"), dict) else {}
    if timeline is None and not slo:
        print(
            f"error: {args.file!r} has no timeline recorded — rerun with "
            "`repro run --metrics FILE`, or give the scenario a telemetry "
            "section so `repro run --out` reports carry one",
            file=sys.stderr,
        )
        return 2

    def _f(value: object) -> float:
        return float(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else 0.0

    scenario = doc.get("scenario", "?")
    kind = doc.get("kind", "?")
    if timeline is not None:
        totals = timeline.get("totals", {})
        if not isinstance(totals, dict):
            totals = {}
        span_s = _f(timeline.get("t_end_s")) - _f(timeline.get("t0_s"))
        print(
            f"scenario `{scenario}` ({kind}): "
            f"{totals.get('admitted', 0)} admitted, "
            f"{totals.get('completed', 0)} completed, "
            f"{totals.get('shed', 0)} shed over {span_s:.3f} s"
        )
        print(
            f"timeline: {timeline.get('num_windows', 0)} windows of "
            f"{_f(timeline.get('window_s')):.6g} s, "
            f"{timeline.get('num_replicas', 0)} replica(s), "
            f"{totals.get('dropped_span_events', 0)} span event(s) dropped"
        )
        rows = []
        replicas = timeline.get("replicas")
        for r in replicas if isinstance(replicas, list) else []:
            if not isinstance(r, dict):
                continue
            rows.append(
                [
                    r.get("replica"),
                    r.get("regime"),
                    r.get("final_state"),
                    r.get("admitted"),
                    r.get("completed"),
                    r.get("steps"),
                    r.get("tokens"),
                    _f(r.get("busy_s")),
                    f"{_f(r.get('utilization')):.1%}",
                ]
            )
        if rows:
            print(
                format_table(
                    [
                        "replica",
                        "regime",
                        "state",
                        "admitted",
                        "completed",
                        "steps",
                        "tokens",
                        "busy s",
                        "util",
                    ],
                    rows,
                    title="per-replica utilization",
                )
            )
    else:
        print(
            f"scenario `{scenario}` ({kind}): no timeline recorded — rerun "
            "with `repro run --metrics` for per-window detail"
        )
    if slo:
        _print_slo_summary(slo, alerts, detection)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    smoke = None
    if args.smoke_only:
        smoke = True
    elif args.full_only:
        smoke = False
    names = list_scenarios(kind=args.kind, smoke=smoke)
    if args.names and args.json:
        print("error: --names and --json are mutually exclusive", file=sys.stderr)
        return 2
    if args.names:
        for name in names:
            print(name)
        return 0
    if args.json:
        entries = []
        for name in names:
            s = get_scenario(name)
            entries.append(
                {
                    "name": name,
                    "kind": s.kind,
                    "model": s.model.name,
                    "gpus": s.cluster.num_gpus,
                    "smoke": name.endswith("-smoke"),
                    "chaos": s.chaos is not None
                    or (s.fleet is not None and s.fleet.chaos is not None),
                    "description": s.description,
                }
            )
        print(json.dumps(entries, indent=2))
        return 0
    rows = []
    for name in names:
        s = get_scenario(name)
        rows.append(
            [name, s.kind, s.model.name, s.cluster.num_gpus, s.description]
        )
    print(
        format_table(
            ["name", "kind", "model", "GPUs", "description"],
            rows,
            title=f"registered scenarios ({len(rows)})",
        )
    )
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = [
        [key, m.name, m.num_layers, m.num_experts, m.d_model, m.base_params]
        for key, m in sorted(PAPER_MODELS.items())
    ]
    print(
        format_table(
            ["key", "name", "layers", "experts", "d_model", "base"],
            rows,
            title="Table II model presets",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    model = paper_model(args.model)
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts,
        model.num_moe_layers,
        args.affinity,
        rng=np.random.default_rng(args.seed),
        collision=args.collision,
    )
    trace = routing.sample(args.tokens, np.random.default_rng(args.seed + 1))
    trace.save(args.out)
    print(
        f"wrote {trace.num_tokens} tokens x {trace.num_layers} layers to {args.out} "
        f"(scaled affinity {scaled_affinity(trace):.3f})"
    )
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    trace = RoutingTrace.load(args.trace)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    placement = solve_placement(args.strategy, trace, cluster)
    stats = placement_locality(placement, trace, cluster)
    print(
        f"{args.strategy} placement on {cluster.num_gpus} GPUs: "
        f"{stats.gpu_stay_fraction:.1%} same-GPU, "
        f"{stats.node_stay_fraction:.1%} same-node, "
        f"{stats.crossings_per_token:.2f} crossings/token"
    )
    if args.out:
        placement.save(args.out)
        print(f"wrote placement to {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    model = paper_model(args.model)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    infer = InferenceConfig(
        requests_per_gpu=args.requests_per_gpu,
        prompt_len=args.prompt_len,
        generate_len=args.generate_len,
    )
    rows = compare_modes(
        model,
        cluster,
        infer,
        placement_strategy=args.strategy,
        affinity=args.affinity,
        seed=args.seed,
    )
    _print_batch_rows(
        rows,
        title=f"{model.name} on {cluster.num_nodes}x{cluster.gpus_per_node} GPUs",
    )
    return 0


def _serving_config_from_args(args: argparse.Namespace) -> ServingConfig:
    return ServingConfig(
        arrival=args.arrival,
        arrival_rate_rps=args.rate,
        num_requests=args.requests,
        burst_factor=args.burst_factor,
        burst_fraction=args.burst_fraction,
        burst_persistence=args.burst_persistence,
        max_batch_requests=args.max_batch,
        prompt_len=args.prompt_len,
        generate_len=args.generate_len,
        seed=args.seed,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Thin wrapper: build a serving/online Scenario, run it, print tables."""
    model = paper_model(args.model)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    serving = _serving_config_from_args(args)
    policy = None
    if args.replace or args.replace_every > 0:
        policy = ReplacementPolicy(
            kept_mass_drop=args.replace_threshold,
            replace_every_steps=args.replace_every or None,
        )
    online_mode = args.drift != "none" or policy is not None
    scenario = Scenario(
        name=f"cli-serve-{args.arrival}",
        model=model,
        cluster=cluster,
        mode=ExecutionMode(args.mode),
        placement_strategy=args.strategy,
        serving=serving,
        drift=DriftSpec(args.drift) if online_mode else None,
        replacement=(
            ReplacementSpec(policy, halflife_tokens=args.halflife) if policy else None
        ),
    )
    report = run_scenario(scenario)
    title = (
        f"{model.name} serving on {cluster.num_nodes}x"
        f"{cluster.gpus_per_node} GPUs — {args.rate:g} req/s, "
        f"{args.mode} engine"
    )
    if report.kind == "online":
        _print_serving_result(report.raw.serving, args.arrival, title)
        _print_online_events(report.raw, args.drift, policy is not None)
    else:
        _print_serving_result(report.raw, args.arrival, title)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Thin wrapper: build a fleet Scenario, run it, print tables."""
    model = paper_model(args.model)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    serving = _serving_config_from_args(args)
    fleet = FleetConfig(
        num_replicas=args.replicas,
        router=args.router,
        num_regimes=args.regimes,
        slo_ms=args.slo_ms,
        batch_slo_ms=10.0 * args.slo_ms,
        autoscale=args.autoscale,
        # with autoscaling on, FleetConfig validates min <= replicas <= max
        # and conflicting flags must error, not silently widen the user's
        # bounds; without it the bounds are inert, so any static size runs
        min_replicas=(
            args.min_replicas if args.autoscale else min(args.min_replicas, args.replicas)
        ),
        max_replicas=(
            args.max_replicas if args.autoscale else max(args.max_replicas, args.replicas)
        ),
        replace=args.replace,
        engine=args.engine,
        chaos=(
            bad_day_schedule(
                num_replicas=args.replicas,
                # nominal horizon; faults land in its middle 60%
                horizon_s=args.requests / args.rate,
                seed=args.seed,
            )
            if args.chaos
            else None
        ),
    )
    scenario = Scenario(
        name=f"cli-fleet-{args.router}",
        model=model,
        cluster=cluster,
        mode=ExecutionMode(args.mode),
        placement_strategy=args.strategy,
        serving=serving,
        fleet=fleet,
        telemetry=(
            TelemetrySpec(slo=SloSpec(p95_ms=args.slo_ms)) if args.slo else None
        ),
    )
    report = run_scenario(scenario)
    _print_fleet_result(
        report.raw,
        args.router,
        title=(
            f"{model.name} fleet — {args.replicas} replica(s) of "
            f"{cluster.num_nodes}x{cluster.gpus_per_node} GPUs, "
            f"{args.rate:g} req/s offered"
        ),
    )
    if args.slo:
        _print_slo_summary(report.slo, report.alerts, report.detection)
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    trace = RoutingTrace.load(args.trace)
    if not 0 <= args.layer < trace.num_layers - 1:
        print(
            f"error: layer must be in [0, {trace.num_layers - 2}]", file=sys.stderr
        )
        return 2
    print(
        ascii_heatmap(
            affinity_matrix(trace, args.layer),
            title=f"affinity: layer {args.layer} -> {args.layer + 1} "
            f"({trace.num_tokens} tokens, source {trace.source or 'unknown'})",
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # local import: the lint machinery is pure stdlib+repro and never needed
    # by the simulation entry points
    import json as _json

    from repro.lint import RULES, lint_paths

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            scope = ", ".join(rule.scope) if rule.scope else "all paths"
            print(f"{code} {rule.name}: {rule.description} [{scope}]")
        return 0
    try:
        diagnostics = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps([d.to_dict() for d in diagnostics], indent=2))
    else:
        for diag in diagnostics:
            print(diag.format())
        if diagnostics:
            print(f"found {len(diagnostics)} diagnostic(s)")
    return 1 if diagnostics else 0


_COMMANDS = {
    "run": _cmd_run,
    "report": _cmd_report,
    "scenarios": _cmd_scenarios,
    "models": _cmd_models,
    "profile": _cmd_profile,
    "place": _cmd_place,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "heatmap": _cmd_heatmap,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
