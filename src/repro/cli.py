"""Command-line interface: ``python -m repro <command>``.

Wraps the common workflows so the library is usable without writing Python:

* ``models`` — list the Table II model presets.
* ``profile`` — sample a routing trace (Markov router) to an ``.npz`` file.
* ``place`` — solve an expert placement from a trace file.
* ``simulate`` — run the three-way serving comparison and print the table.
* ``serve`` — request-level serving with continuous batching and tail-latency
  metrics (Poisson or bursty arrivals).
* ``fleet`` — multi-replica serving behind a request router: SLO-aware
  admission, pluggable routing policies and reactive autoscaling.
* ``heatmap`` — render a trace's layer-pair affinity heatmap.

Every command takes ``--seed`` and prints deterministic output.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.heatmap import ascii_heatmap
from repro.analysis.report import format_table
from repro.config import (
    PAPER_MODELS,
    ROUTER_KINDS,
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    InferenceConfig,
    ServingConfig,
    paper_model,
)
from repro.core.affinity import affinity_matrix, scaled_affinity
from repro.core.online import ReplacementPolicy
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import SOLVERS, solve_placement
from repro.engine.comparison import compare_modes
from repro.engine.serving import (
    simulate_cluster_serving,
    simulate_online_cluster_serving,
)
from repro.engine.workload import DRIFT_KINDS
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExFlow reproduction: MoE inference with inter-layer expert affinity",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the paper's model presets")

    p = sub.add_parser("profile", help="sample a routing trace to an .npz file")
    p.add_argument("--model", default="gpt-m-350m-e32", help="paper model key")
    p.add_argument("--tokens", type=int, default=3000)
    p.add_argument("--affinity", type=float, default=0.85)
    p.add_argument("--collision", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output .npz path")

    p = sub.add_parser("place", help="solve an expert placement from a trace")
    p.add_argument("--trace", required=True, help="input trace .npz")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--out", help="optional placement .npz path")

    p = sub.add_parser("simulate", help="compare serving strategies end to end")
    p.add_argument("--model", default="gpt-m-350m-e32")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--requests-per-gpu", type=int, default=8)
    p.add_argument("--prompt-len", type=int, default=64)
    p.add_argument("--generate-len", type=int, default=8)
    p.add_argument("--affinity", type=float, default=0.85)
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "serve", help="request-level serving simulation (continuous batching)"
    )
    p.add_argument("--model", default="gpt-m-350m-e32")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--arrival", default="poisson", choices=["poisson", "bursty"])
    p.add_argument("--rate", type=float, default=64.0, help="mean arrivals per second")
    p.add_argument("--requests", type=int, default=512)
    p.add_argument("--burst-factor", type=float, default=4.0)
    p.add_argument("--burst-fraction", type=float, default=0.25)
    p.add_argument("--burst-persistence", type=float, default=0.9)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--prompt-len", type=int, default=64)
    p.add_argument("--generate-len", type=int, default=32)
    p.add_argument(
        "--mode",
        default="exflow",
        choices=[m.value for m in ExecutionMode],
        help="execution strategy used to calibrate step cost",
    )
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--drift",
        default="none",
        choices=DRIFT_KINDS,
        help="routing drift scenario over the serving horizon",
    )
    p.add_argument(
        "--replace",
        action="store_true",
        help="enable online re-placement (kept-mass degradation trigger)",
    )
    p.add_argument(
        "--replace-every",
        type=int,
        default=0,
        metavar="STEPS",
        help="also force a re-solve every N decode steps (implies --replace)",
    )
    p.add_argument(
        "--replace-threshold",
        type=float,
        default=0.15,
        help="relative kept-mass drop that triggers a re-solve",
    )
    p.add_argument(
        "--halflife",
        type=float,
        default=2048.0,
        metavar="TOKENS",
        help="streaming affinity estimator halflife in tokens",
    )

    p = sub.add_parser(
        "fleet", help="multi-replica serving: router + SLO admission + autoscaling"
    )
    p.add_argument("--model", default="gpt-m-350m-e32")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument("--arrival", default="poisson", choices=["poisson", "bursty"])
    p.add_argument("--rate", type=float, default=256.0, help="mean arrivals per second")
    p.add_argument("--requests", type=int, default=512)
    p.add_argument("--burst-factor", type=float, default=4.0)
    p.add_argument("--burst-fraction", type=float, default=0.25)
    p.add_argument("--burst-persistence", type=float, default=0.9)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--prompt-len", type=int, default=64)
    p.add_argument("--generate-len", type=int, default=32)
    p.add_argument(
        "--mode",
        default="exflow",
        choices=[m.value for m in ExecutionMode],
        help="execution strategy pricing each replica's decode steps",
    )
    p.add_argument("--strategy", default="staged", choices=SOLVERS)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replicas", type=int, default=4, help="replicas at t=0")
    p.add_argument(
        "--router",
        default="p2c",
        choices=ROUTER_KINDS,
        help="request routing policy",
    )
    p.add_argument(
        "--regimes", type=int, default=2, help="routing regimes in the traffic mix"
    )
    p.add_argument(
        "--slo-ms", type=float, default=400.0, help="interactive-class latency SLO"
    )
    p.add_argument(
        "--autoscale",
        action="store_true",
        help="enable reactive queue-depth autoscaling",
    )
    p.add_argument("--min-replicas", type=int, default=1)
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument(
        "--replace",
        action="store_true",
        help="run each replica's online re-placement loop",
    )

    p = sub.add_parser("heatmap", help="render a trace's affinity heatmap")
    p.add_argument("--trace", required=True)
    p.add_argument("--layer", type=int, default=0)

    return parser


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = [
        [key, m.name, m.num_layers, m.num_experts, m.d_model, m.base_params]
        for key, m in sorted(PAPER_MODELS.items())
    ]
    print(
        format_table(
            ["key", "name", "layers", "experts", "d_model", "base"],
            rows,
            title="Table II model presets",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    model = paper_model(args.model)
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts,
        model.num_moe_layers,
        args.affinity,
        rng=np.random.default_rng(args.seed),
        collision=args.collision,
    )
    trace = routing.sample(args.tokens, np.random.default_rng(args.seed + 1))
    trace.save(args.out)
    print(
        f"wrote {trace.num_tokens} tokens x {trace.num_layers} layers to {args.out} "
        f"(scaled affinity {scaled_affinity(trace):.3f})"
    )
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    trace = RoutingTrace.load(args.trace)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    placement = solve_placement(args.strategy, trace, cluster)
    stats = placement_locality(placement, trace, cluster)
    print(
        f"{args.strategy} placement on {cluster.num_gpus} GPUs: "
        f"{stats.gpu_stay_fraction:.1%} same-GPU, "
        f"{stats.node_stay_fraction:.1%} same-node, "
        f"{stats.crossings_per_token:.2f} crossings/token"
    )
    if args.out:
        placement.save(args.out)
        print(f"wrote placement to {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    model = paper_model(args.model)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    infer = InferenceConfig(
        requests_per_gpu=args.requests_per_gpu,
        prompt_len=args.prompt_len,
        generate_len=args.generate_len,
    )
    rows = compare_modes(
        model,
        cluster,
        infer,
        placement_strategy=args.strategy,
        affinity=args.affinity,
        seed=args.seed,
    )
    table = [
        [
            label,
            row.result.throughput_tokens_per_s,
            row.speedup,
            row.comm_reduction,
            row.result.alltoall_fraction,
            row.result.gpu_stay_fraction,
        ]
        for label, row in rows.items()
    ]
    print(
        format_table(
            ["strategy", "tokens/s", "speedup", "comm cut", "alltoall share", "GPU-stay"],
            table,
            title=f"{model.name} on {cluster.num_nodes}x{cluster.gpus_per_node} GPUs",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    model = paper_model(args.model)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    serving = ServingConfig(
        arrival=args.arrival,
        arrival_rate_rps=args.rate,
        num_requests=args.requests,
        burst_factor=args.burst_factor,
        burst_fraction=args.burst_fraction,
        burst_persistence=args.burst_persistence,
        max_batch_requests=args.max_batch,
        prompt_len=args.prompt_len,
        generate_len=args.generate_len,
        seed=args.seed,
    )
    online_mode = args.drift != "none" or args.replace or args.replace_every > 0
    events = None
    if online_mode:
        policy = None
        if args.replace or args.replace_every > 0:
            policy = ReplacementPolicy(
                kept_mass_drop=args.replace_threshold,
                replace_every_steps=args.replace_every or None,
            )
        online = simulate_online_cluster_serving(
            model,
            cluster,
            serving,
            drift=args.drift,
            policy=policy,
            mode=ExecutionMode(args.mode),
            placement_strategy=args.strategy,
            halflife_tokens=args.halflife,
        )
        res = online.serving
        events = online
    else:
        res = simulate_cluster_serving(
            model,
            cluster,
            serving,
            mode=ExecutionMode(args.mode),
            placement_strategy=args.strategy,
        )
    rows = [
        [
            args.arrival,
            len(res.completed),
            res.latency.p50_s * 1e3,
            res.latency.p95_s * 1e3,
            res.latency.p99_s * 1e3,
            res.throughput_tokens_per_s,
            res.mean_batch_size,
            res.utilization,
        ]
    ]
    print(
        format_table(
            [
                "arrival",
                "served",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "tokens/s",
                "mean batch",
                "util",
            ],
            rows,
            title=(
                f"{model.name} serving on {cluster.num_nodes}x"
                f"{cluster.gpus_per_node} GPUs — {args.rate:g} req/s, "
                f"{args.mode} engine"
            ),
        )
    )
    if events is not None:
        timeline = events.kept_timeline
        print(
            f"drift={args.drift}: kept transition mass "
            f"{timeline[0].true_kept:.1%} -> {timeline[-1].true_kept:.1%} "
            f"over {res.decode_steps} steps"
        )
        if events.events:
            event_rows = [
                [
                    e.step,
                    f"{e.kept_before:.1%}",
                    f"{e.kept_after:.1%}",
                    e.moved_experts,
                    e.stall_s * 1e3,
                    "forced" if e.forced else "drop",
                ]
                for e in events.events
            ]
            print(
                format_table(
                    ["step", "kept before", "kept after", "moved", "stall ms", "trigger"],
                    event_rows,
                    title=(
                        "online re-placements — total stall "
                        f"{events.migration_stall_s * 1e3:.3f} ms"
                    ),
                )
            )
        elif policy is not None:
            print("online re-placement enabled: no migration was triggered")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import simulate_fleet_cluster_serving

    model = paper_model(args.model)
    cluster = ClusterConfig(num_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    serving = ServingConfig(
        arrival=args.arrival,
        arrival_rate_rps=args.rate,
        num_requests=args.requests,
        burst_factor=args.burst_factor,
        burst_fraction=args.burst_fraction,
        burst_persistence=args.burst_persistence,
        max_batch_requests=args.max_batch,
        prompt_len=args.prompt_len,
        generate_len=args.generate_len,
        seed=args.seed,
    )
    fleet = FleetConfig(
        num_replicas=args.replicas,
        router=args.router,
        num_regimes=args.regimes,
        slo_ms=args.slo_ms,
        batch_slo_ms=10.0 * args.slo_ms,
        autoscale=args.autoscale,
        # with autoscaling on, FleetConfig validates min <= replicas <= max
        # and conflicting flags must error, not silently widen the user's
        # bounds; without it the bounds are inert, so any static size runs
        min_replicas=(
            args.min_replicas if args.autoscale else min(args.min_replicas, args.replicas)
        ),
        max_replicas=(
            args.max_replicas if args.autoscale else max(args.max_replicas, args.replicas)
        ),
        replace=args.replace,
    )
    res = simulate_fleet_cluster_serving(
        model,
        cluster,
        serving,
        fleet,
        mode=ExecutionMode(args.mode),
        placement_strategy=args.strategy,
    )
    rows = [
        [
            args.router,
            res.served,
            len(res.shed),
            f"{res.shed_fraction:.2%}",
            res.latency.p50_s * 1e3,
            res.latency.p95_s * 1e3,
            res.latency.p99_s * 1e3,
            f"{res.slo_attainment.get('interactive', 1.0):.1%}",
            res.throughput_rps,
        ]
    ]
    print(
        format_table(
            [
                "router",
                "served",
                "shed",
                "shed %",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "SLO ok",
                "req/s",
            ],
            rows,
            title=(
                f"{model.name} fleet — {args.replicas} replica(s) of "
                f"{cluster.num_nodes}x{cluster.gpus_per_node} GPUs, "
                f"{args.rate:g} req/s offered"
            ),
        )
    )
    per_replica = [
        [
            s.replica_id,
            s.regime,
            s.final_state,
            s.served,
            s.decode_steps,
            s.mean_batch_size,
            s.replacements,
        ]
        for s in res.replicas
    ]
    print(
        format_table(
            ["replica", "regime", "state", "served", "steps", "mean batch", "replacements"],
            per_replica,
            title="per-replica",
        )
    )
    if res.scale_events:
        events = [
            [e.kind, e.time_s, f"{e.queue_per_replica:.1f}",
             e.replicas_before, e.replicas_after, e.cold_start_s * 1e3]
            for e in res.scale_events
        ]
        print(
            format_table(
                ["action", "t (s)", "queue/replica", "before", "after", "cold start ms"],
                events,
                title="autoscaler actions",
            )
        )
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    trace = RoutingTrace.load(args.trace)
    if not 0 <= args.layer < trace.num_layers - 1:
        print(
            f"error: layer must be in [0, {trace.num_layers - 2}]", file=sys.stderr
        )
        return 2
    print(
        ascii_heatmap(
            affinity_matrix(trace, args.layer),
            title=f"affinity: layer {args.layer} -> {args.layer + 1} "
            f"({trace.num_tokens} tokens, source {trace.source or 'unknown'})",
        )
    )
    return 0


_COMMANDS = {
    "models": _cmd_models,
    "profile": _cmd_profile,
    "place": _cmd_place,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "heatmap": _cmd_heatmap,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
