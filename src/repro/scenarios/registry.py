"""Named scenario presets: every headline experiment, enumerable and runnable.

The registry is the ROADMAP's "as many scenarios as you can imagine"
surface: each paper-figure experiment, drift workload and flash-crowd
stress is one registered :class:`~repro.scenarios.spec.Scenario`, and each
comes with a ``-smoke`` variant — the same pipeline at CI-friendly scale
(the smoke shapes are exactly the ones the fig15/fig16 benchmarks run in
their ``--smoke`` mode).  ``repro run <name>`` executes any of them;
``repro scenarios list`` enumerates the table.

Preset configurations are lifted verbatim from the benchmarks they back
(`bench_fig10_end_to_end`, `bench_fig15_online_replacement`,
`bench_fig16_fleet_routing`), so running a preset through the facade
reproduces the benchmark's headline numbers.
"""

from __future__ import annotations

from repro.chaos import RetryPolicy, bad_day_schedule
from repro.config import (
    ClusterConfig,
    FleetConfig,
    InferenceConfig,
    ModelConfig,
    ServingConfig,
    paper_model,
    wilkes3,
)
from repro.core.online import ReplacementPolicy
from repro.obs.slo import SloSpec
from repro.scenarios.spec import (
    DriftSpec,
    FlashCrowdSpec,
    ReplacementSpec,
    Scenario,
    TelemetrySpec,
)

__all__ = [
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "fig10_panel",
    "fleet_bad_day",
    "fleet_steady_day",
    "SCENARIOS",
]

#: name -> Scenario; populated below and via :func:`register_scenario`
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> Scenario:
    """Add a scenario to the registry under its own name."""
    if not overwrite and scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered preset by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(sorted(SCENARIOS))}"
        ) from None


def list_scenarios(
    kind: str | None = None, smoke: bool | None = None
) -> tuple[str, ...]:
    """Registered preset names, optionally filtered by kind / smoke flag."""
    names = []
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        if kind is not None and s.kind != kind:
            continue
        if smoke is not None and s.is_smoke != smoke:
            continue
        names.append(name)
    return tuple(names)


# -- batch presets (fig10's panels) -------------------------------------------

_FIG15_POLICY = ReplacementPolicy(
    check_every_steps=8,
    kept_mass_drop=0.1,
    min_effective_tokens=256,
    cooldown_steps=16,
    solver_passes=6,
)
_FIG15_SMOKE_POLICY = ReplacementPolicy(
    check_every_steps=8,
    kept_mass_drop=0.1,
    min_effective_tokens=128,
    cooldown_steps=16,
    solver_passes=6,
)


def fig10_panel(
    model_key: str, gpus: int, name: str | None = None, description: str = ""
) -> Scenario:
    """One fig10 panel: three-way comparison, seed = GPU count (the bench's).

    The single source of the fig10 workload shape — the registered presets
    and `bench_fig10_end_to_end.py`'s non-registered panels both build
    through here, so they can never silently diverge.
    """
    return Scenario(
        name=name or f"fig10-{model_key}-{gpus}gpu",
        description=description,
        model=paper_model(model_key),
        cluster=wilkes3(max(1, gpus // 4), gpus_per_node=min(4, gpus)),
        batch=InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8),
        seed=gpus,
    )


def _batch_smoke(name: str) -> Scenario:
    return Scenario(
        name=name,
        description="tiny three-way engine comparison (CI smoke)",
        model=paper_model("gpt-m-350m-e8"),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=4),
        batch=InferenceConfig(requests_per_gpu=2, prompt_len=16, generate_len=3),
        seed=8,
    )


register_scenario(
    fig10_panel(
        "gpt-m-350m-e32",
        16,
        name="fig10-end-to-end",
        description="Fig 10 headline panel: MoE-GPT-M-350M-E32 on 16 GPUs",
    )
)
register_scenario(_batch_smoke("fig10-end-to-end-smoke"))
register_scenario(
    fig10_panel(
        "gpt-xl-1.3b-e16",
        8,
        name="fig10-xl",
        description="Fig 10 XL panel: MoE-GPT-XL-1.3B-E16 on 8 GPUs (compute-heavy)",
    )
)
register_scenario(
    Scenario(
        name="fig10-xl-smoke",
        description="tiny XL-panel comparison: compute-heavy model (CI smoke)",
        model=paper_model("gpt-xl-1.3b-e16"),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=4),
        batch=InferenceConfig(requests_per_gpu=2, prompt_len=16, generate_len=3),
        seed=8,
    )
)
register_scenario(
    fig10_panel(
        "gpt-m-350m-e8",
        4,
        name="fig10-single-node",
        description="Fig 10 single-node panel: NVLink-only Alltoall, ~no ExFlow gain",
    )
)
register_scenario(
    Scenario(
        name="fig10-single-node-smoke",
        description="tiny single-node comparison (CI smoke)",
        model=paper_model("gpt-m-350m-e8"),
        cluster=ClusterConfig(num_nodes=1, gpus_per_node=4),
        batch=InferenceConfig(requests_per_gpu=2, prompt_len=16, generate_len=3),
        seed=4,
    )
)


# -- single-replica serving presets -------------------------------------------


def _serve(name: str, description: str, arrival: str, smoke: bool) -> Scenario:
    return Scenario(
        name=name,
        description=description,
        model=paper_model("gpt-m-350m-e8"),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        serving=ServingConfig(
            arrival=arrival,
            arrival_rate_rps=300.0,
            num_requests=32 if smoke else 256,
            generate_len=4 if smoke else 16,
            max_batch_requests=8 if smoke else 32,
            prompt_len=16 if smoke else 64,
            seed=0,
        ),
    )


register_scenario(
    _serve(
        "serve-poisson",
        "continuous batching under memoryless arrivals, tail latency",
        "poisson",
        smoke=False,
    )
)
register_scenario(
    _serve("serve-poisson-smoke", "poisson serving (CI smoke)", "poisson", smoke=True)
)
register_scenario(
    _serve(
        "serve-bursty",
        "continuous batching under MMPP flash-crowd bursts",
        "bursty",
        smoke=False,
    )
)
register_scenario(
    _serve("serve-bursty-smoke", "bursty serving (CI smoke)", "bursty", smoke=True)
)


# -- online drift presets (fig15's arms) --------------------------------------


def _fig15(drift: str, smoke: bool) -> Scenario:
    if smoke:
        model = ModelConfig(
            name="fig15-smoke", num_layers=4, num_experts=8, d_model=64, num_heads=4
        )
        serving = ServingConfig(
            arrival="bursty",
            arrival_rate_rps=900.0,
            num_requests=160,
            generate_len=12,
            max_batch_requests=24,
            prompt_len=16,
            seed=0,
        )
        replacement = ReplacementSpec(_FIG15_SMOKE_POLICY, halflife_tokens=256.0)
    else:
        model = ModelConfig(
            name="fig15", num_layers=8, num_experts=16, d_model=512, num_heads=8
        )
        serving = ServingConfig(
            arrival="bursty",
            arrival_rate_rps=900.0,
            num_requests=480,
            generate_len=16,
            max_batch_requests=32,
            prompt_len=32,
            seed=0,
        )
        replacement = ReplacementSpec(_FIG15_POLICY, halflife_tokens=512.0)
    return Scenario(
        name=f"fig15-{drift}" + ("-smoke" if smoke else ""),
        description=(
            f"online re-placement under {drift} routing drift"
            + (" (CI smoke)" if smoke else "")
        ),
        model=model,
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        serving=serving,
        drift=DriftSpec(drift),
        replacement=replacement,
    )


for _drift in ("gradual", "abrupt", "diurnal"):
    register_scenario(_fig15(_drift, smoke=False))
    register_scenario(_fig15(_drift, smoke=True))


# -- fleet presets (fig16's arms) ---------------------------------------------

_FIG16_AFFINITY = 0.95  # regime concentration: strong, trained-checkpoint-like


def _fig16_model(smoke: bool) -> ModelConfig:
    if smoke:
        return ModelConfig(
            name="fig16-smoke", num_layers=4, num_experts=8, d_model=64, num_heads=4
        )
    return ModelConfig(
        name="fig16", num_layers=8, num_experts=16, d_model=512, num_heads=8
    )


def _fig16_routing(router: str, smoke: bool) -> Scenario:
    serving = ServingConfig(
        arrival="bursty",
        arrival_rate_rps=32000.0 if smoke else 11000.0,
        num_requests=240 if smoke else 400,
        generate_len=8 if smoke else 16,
        max_batch_requests=4 if smoke else 8,
        prompt_len=16 if smoke else 32,
        seed=0,
    )
    return Scenario(
        name=f"fig16-routing-{router}" + ("-smoke" if smoke else ""),
        description=(
            f"{router} routing over 4 heterogeneous replicas, diurnal regime mix"
            + (" (CI smoke)" if smoke else "")
        ),
        model=_fig16_model(smoke),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        affinity=_FIG16_AFFINITY,
        serving=serving,
        fleet=FleetConfig(
            num_replicas=4,
            router=router,
            # latency comparison, not a shedding study: SLOs out of the way
            slo_ms=10000.0,
            batch_slo_ms=100000.0,
        ),
        regime_mix="diurnal",
    )


for _router in ("round-robin", "jsq", "p2c", "affinity"):
    register_scenario(_fig16_routing(_router, smoke=False))
    register_scenario(_fig16_routing(_router, smoke=True))


def _fig16_flash(autoscale: bool, smoke: bool) -> Scenario:
    serving = ServingConfig(
        arrival_rate_rps=9000.0 if smoke else 6000.0,
        num_requests=500 if smoke else 1200,
        generate_len=8 if smoke else 16,
        max_batch_requests=4 if smoke else 8,
        prompt_len=16 if smoke else 32,
        seed=0,
    )
    fleet = FleetConfig(
        num_replicas=2,
        router="p2c",
        autoscale=autoscale,
        min_replicas=2,
        max_replicas=8,
        slo_ms=15.0 if smoke else 60.0,
        batch_slo_ms=150.0 if smoke else 600.0,
        autoscale_check_every_s=0.0015 if smoke else 0.004,
        scale_up_queue_per_replica=4.0,
        scale_dwell_checks=2,
    )
    flash = (
        FlashCrowdSpec(4.0, 0.015, 0.03) if smoke else FlashCrowdSpec(4.0, 0.05, 0.08)
    )
    arm = "autoscale" if autoscale else "static"
    return Scenario(
        name=f"fig16-flash-{arm}" + ("-smoke" if smoke else ""),
        description=(
            f"4x flash crowd on a 2-replica fleet, {arm} arm"
            + (" (CI smoke)" if smoke else "")
        ),
        model=_fig16_model(smoke),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        affinity=_FIG16_AFFINITY,
        serving=serving,
        fleet=fleet,
        flash=flash,
    )


for _auto in (True, False):
    register_scenario(_fig16_flash(_auto, smoke=False))
    register_scenario(_fig16_flash(_auto, smoke=True))


# -- bad-day presets (the chaos subsystem's headline experiment) ---------------


def fleet_bad_day(autoscale: bool, smoke: bool) -> Scenario:
    """One seeded bad day: crash + preemption + brownout under pressure.

    The chaos schedule derives from the *nominal* horizon (requests /
    offered rate) so both arms of the benchmark — this autoscaled preset
    and the static fleet ``bench_chaos.py`` derives from it with
    ``dataclasses.replace`` — replay the exact same faults.  Retries use
    a short backoff so re-admitted requests land inside the run.  The
    offered rate overloads the initial three replicas (~15k req/s each at
    smoke scale) so the arms separate: the static arm sheds at the queue
    cap all day while the autoscaled arm absorbs both the crowd and the
    faults (availability margin ≈ +0.45 at both scales, stable across
    schedule seeds).
    """
    serving = ServingConfig(
        arrival_rate_rps=60000.0 if smoke else 15000.0,
        num_requests=800 if smoke else 1500,
        generate_len=8 if smoke else 16,
        max_batch_requests=4 if smoke else 8,
        prompt_len=16 if smoke else 32,
        seed=0,
    )
    fleet = FleetConfig(
        num_replicas=3,
        router="p2c",
        autoscale=autoscale,
        min_replicas=3 if autoscale else 1,
        max_replicas=8,
        slo_ms=15.0 if smoke else 60.0,
        batch_slo_ms=150.0 if smoke else 600.0,
        max_queue_per_replica=16,
        autoscale_check_every_s=0.0008 if smoke else 0.004,
        scale_up_queue_per_replica=4.0,
        scale_dwell_checks=2,
    )
    horizon = serving.num_requests / serving.arrival_rate_rps
    chaos = bad_day_schedule(
        num_replicas=3,
        horizon_s=horizon,
        seed=9,
        crashes=1,
        preemptions=1,
        brownouts=1,
        brownout_factor_x=4.0,
        retry=RetryPolicy(
            max_attempts=3, backoff_base_s=0.0005 if smoke else 0.002
        ),
    )
    arm = "" if autoscale else "-static"
    return Scenario(
        name=f"fleet-bad-day{arm}" + ("-smoke" if smoke else ""),
        description=(
            f"seeded bad day (crash+preempt+brownout) on a 3-replica fleet, "
            f"{'autoscaled' if autoscale else 'static'} arm"
            + (" (CI smoke)" if smoke else "")
        ),
        model=_fig16_model(smoke),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        affinity=_FIG16_AFFINITY,
        serving=serving,
        fleet=fleet,
        chaos=chaos,
    )


register_scenario(fleet_bad_day(autoscale=True, smoke=False))
register_scenario(fleet_bad_day(autoscale=True, smoke=True))


# -- fleet-at-scale preset (the tick engine's home turf) -----------------------


def _fleet_scale_day(smoke: bool) -> Scenario:
    """A compressed day-in-the-life of a large fleet, on the tick engine.

    One million requests over 128 replicas with a diurnal two-regime mix,
    SLO admission under sustained pressure (~20% of peak traffic shed) and
    reactive autoscaling — the scale the vectorized engine exists for (the
    event-heap oracle takes tens of minutes here; see
    ``benchmarks/bench_fleet_scale.py``).  Both variants use the small
    fig16 model: the subject is fleet dynamics, not the checkpoint.  The
    smoke variant is the same pipeline at CI scale.
    """
    serving = ServingConfig(
        arrival="bursty",
        arrival_rate_rps=150000.0 if smoke else 2e7,
        num_requests=2000 if smoke else 1_000_000,
        generate_len=4,
        max_batch_requests=8 if smoke else 64,
        prompt_len=16,
        seed=0,
    )
    fleet = FleetConfig(
        num_replicas=8 if smoke else 128,
        router="jsq",
        num_regimes=2,
        engine="tick",
        slo_ms=50.0,
        batch_slo_ms=500.0,
        max_queue_per_replica=32,
        autoscale=True,
        min_replicas=4 if smoke else 64,
        max_replicas=12 if smoke else 160,
        # roughly a hundred checks over the compressed day's makespan
        autoscale_check_every_s=0.0002 if smoke else 0.0005,
        scale_up_queue_per_replica=4.0,
        scale_dwell_checks=2,
    )
    return Scenario(
        name="fleet-scale-day" + ("-smoke" if smoke else ""),
        description=(
            "1M-request day over 128 replicas, diurnal mix, tick engine"
            if not smoke
            else "fleet-scale day-in-the-life pipeline (CI smoke)"
        ),
        model=_fig16_model(smoke=True),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        affinity=_FIG16_AFFINITY,
        serving=serving,
        fleet=fleet,
        regime_mix="diurnal",
    )


register_scenario(_fleet_scale_day(smoke=False))
register_scenario(_fleet_scale_day(smoke=True))


# -- chaos-free steady day (the SLO monitor's clean arm) -----------------------


def fleet_steady_day(smoke: bool = False) -> Scenario:
    """A quiet, adequately provisioned day: the SLO monitor's clean arm.

    The same fleet shape as ``fleet-bad-day`` but with no chaos schedule
    and an offered rate four replicas absorb without shedding.  This is
    the run that must stay silent — zero burn-rate alerts, zero observed
    outages or brownouts (``benchmarks/bench_detect.py`` and the
    Hypothesis false-positive guard hold the detector to that).  Ships
    with ``telemetry.slo`` attached so ``repro run fleet-steady-day``
    monitors out of the box; CI also uses the smoke variant as its
    OpenMetrics export fixture.
    """
    serving = ServingConfig(
        arrival_rate_rps=15000.0 if smoke else 4000.0,
        num_requests=800 if smoke else 1500,
        generate_len=8 if smoke else 16,
        max_batch_requests=4 if smoke else 8,
        prompt_len=16 if smoke else 32,
        seed=0,
    )
    fleet = FleetConfig(
        num_replicas=4,
        router="p2c",
        slo_ms=15.0 if smoke else 60.0,
        batch_slo_ms=150.0 if smoke else 600.0,
        max_queue_per_replica=16,
    )
    return Scenario(
        name="fleet-steady-day" + ("-smoke" if smoke else ""),
        description=(
            "chaos-free steady traffic on a 4-replica fleet, SLO-monitored"
            + (" (CI smoke)" if smoke else "")
        ),
        model=_fig16_model(smoke),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        affinity=_FIG16_AFFINITY,
        serving=serving,
        fleet=fleet,
        telemetry=TelemetrySpec(slo=SloSpec()),
    )


register_scenario(fleet_steady_day(smoke=False))
register_scenario(fleet_steady_day(smoke=True))
