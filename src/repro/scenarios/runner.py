"""The ``run()`` facade: one entry point for every scenario kind.

``run(scenario)`` inspects the spec's sections, dispatches to the right
simulator — the lockstep batch engine, the single-replica continuous-
batching loop, the online drift-aware loop, or the fleet event simulation
— and condenses the outcome into one :class:`~repro.scenarios.report.SimReport`.
The full underlying result object stays reachable on ``report.raw``.

``run_sweep(scenarios)`` executes a list of scenarios (objects or
registered preset names) across a multiprocessing pool — the parameter-
grid workhorse: build the grid with ``dataclasses.replace`` over a base
spec, hand the list over, get rectangular reports back.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import traceback
import warnings
from typing import Callable, Iterable, Sequence

from repro.config import ExecutionMode
from repro.engine.comparison import compare_modes
from repro.engine.serving import (
    _simulate_cluster_serving,
    _simulate_online_cluster_serving,
)
from repro.fleet.requests import flash_crowd_arrivals
from repro.fleet.simulate import _simulate_fleet_cluster_serving
from repro.obs.detect import SignalDetector, score_against_chaos
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import MetricsRecorder, TeeRecorder, TimelineRecorder
from repro.obs.slo import compliance_summary, evaluate_burn_alerts
from repro.scenarios.report import SimReport
from repro.scenarios.spec import Scenario

__all__ = ["SweepError", "make_recorder", "run", "run_sweep"]


class SweepError(RuntimeError):
    """A sweep worker failed; carries which scenario and its full spec.

    A bare exception escaping a ``multiprocessing`` worker surfaces as a
    context-free traceback with no hint of *which* grid point died.  The
    sweep runner wraps worker failures so the scenario name and its exact
    spec JSON travel with the error — enough to re-run the single point
    with :func:`run` and debug it serially.

    Constructed with ``(scenario_name, spec_json, details)`` positional
    args (all strings) so the instance survives pickling back across the
    pool boundary.
    """

    def __init__(self, scenario_name: str, spec_json: str, details: str) -> None:
        super().__init__(scenario_name, spec_json, details)
        self.scenario_name = scenario_name
        self.spec_json = spec_json
        self.details = details

    def __str__(self) -> str:
        return (
            f"sweep worker failed on scenario {self.scenario_name!r}\n"
            f"--- scenario spec ---\n{self.spec_json}\n"
            f"--- worker traceback ---\n{self.details}"
        )

# compare_modes row holding each execution mode's numbers
_MODE_ROW = {
    ExecutionMode.VANILLA: "deepspeed",
    ExecutionMode.CONTEXT_COHERENT: "exflow-noaff",
    ExecutionMode.EXFLOW: "exflow",
}


def _resolve(scenario: Scenario | str) -> Scenario:
    if isinstance(scenario, str):
        from repro.scenarios.registry import get_scenario

        return get_scenario(scenario)
    if not isinstance(scenario, Scenario):
        raise TypeError(
            f"run() takes a Scenario or a registered name, got {type(scenario).__name__}"
        )
    return scenario


def _cost_fields(scenario: Scenario, makespan_s: float, tokens: int) -> dict:
    """Single-replica cost account: one cluster billed for the makespan."""
    gpu_hours = makespan_s * scenario.cluster.num_gpus / 3600.0
    cost = gpu_hours * scenario.cluster.gpu_hour_usd
    return {
        "gpu_hours": gpu_hours,
        "cost_usd": cost,
        "usd_per_million_tokens": cost / (tokens / 1e6) if tokens > 0 else 0.0,
    }


def _run_batch(s: Scenario) -> SimReport:
    rows = compare_modes(
        s.model,
        s.cluster,
        s.batch,
        placement_strategy=s.placement_strategy,
        affinity=s.affinity,
        seed=s.seed,
    )
    head = rows[_MODE_ROW[s.mode]].result
    completed = s.batch.total_requests(s.cluster.num_gpus)
    makespan = head.total_time_s
    return SimReport(
        scenario=s.name,
        kind="batch",
        completed=completed,
        generated_tokens=head.generated_tokens,
        makespan_s=makespan,
        decode_steps=head.iterations,
        mean_batch_size=float(completed),
        throughput_rps=completed / makespan if makespan > 0 else 0.0,
        throughput_tokens_per_s=head.throughput_tokens_per_s,
        extra={
            "speedup_noaff": rows["exflow-noaff"].speedup,
            "speedup_exflow": rows["exflow"].speedup,
            "comm_reduction_exflow": rows["exflow"].comm_reduction,
            "alltoall_fraction_deepspeed": rows["deepspeed"].result.alltoall_fraction,
            "gpu_stay_fraction_exflow": rows["exflow"].result.gpu_stay_fraction,
        },
        **_cost_fields(s, makespan, head.generated_tokens),
        raw=rows,
    )


def _run_serving(s: Scenario, recorder: MetricsRecorder | None = None) -> SimReport:
    res = _simulate_cluster_serving(
        s.model,
        s.cluster,
        s.serving,
        mode=s.mode,
        affinity=s.affinity,
        placement_strategy=s.placement_strategy,
        recorder=recorder,
    )
    return SimReport(
        scenario=s.name,
        kind="serving",
        completed=len(res.completed),
        generated_tokens=res.generated_tokens,
        makespan_s=res.makespan_s,
        decode_steps=res.decode_steps,
        mean_batch_size=res.mean_batch_size,
        throughput_rps=res.throughput_rps,
        throughput_tokens_per_s=res.throughput_tokens_per_s,
        latency_mean_s=res.latency.mean_s,
        latency_p50_s=res.latency.p50_s,
        latency_p95_s=res.latency.p95_s,
        latency_p99_s=res.latency.p99_s,
        queue_p95_s=res.queue.p95_s,
        latency_hist=res.latency.histogram_dict(),
        **_cost_fields(s, res.makespan_s, res.generated_tokens),
        raw=res,
    )


def _run_online(s: Scenario) -> SimReport:
    drift_kind = s.drift.kind if s.drift is not None else "none"
    policy = s.replacement.policy if s.replacement is not None else None
    halflife = s.replacement.halflife_tokens if s.replacement is not None else None
    res = _simulate_online_cluster_serving(
        s.model,
        s.cluster,
        s.serving,
        drift=drift_kind,
        policy=policy,
        mode=s.mode,
        affinity=s.affinity,
        placement_strategy=s.placement_strategy,
        profile_tokens=s.profile_tokens,
        halflife_tokens=halflife,
    )
    serving = res.serving
    timeline = res.kept_timeline
    return SimReport(
        scenario=s.name,
        kind="online",
        completed=len(serving.completed),
        generated_tokens=serving.generated_tokens,
        makespan_s=serving.makespan_s,
        decode_steps=serving.decode_steps,
        mean_batch_size=serving.mean_batch_size,
        throughput_rps=serving.throughput_rps,
        throughput_tokens_per_s=serving.throughput_tokens_per_s,
        latency_mean_s=serving.latency.mean_s,
        latency_p50_s=serving.latency.p50_s,
        latency_p95_s=serving.latency.p95_s,
        latency_p99_s=serving.latency.p99_s,
        queue_p95_s=serving.queue.p95_s,
        kept_mass_initial=timeline[0].true_kept if timeline else None,
        kept_mass_final=timeline[-1].true_kept if timeline else None,
        num_replacements=res.num_replacements,
        migration_stall_s=res.migration_stall_s,
        **_cost_fields(s, serving.makespan_s, serving.generated_tokens),
        raw=res,
    )


def _diurnal_mix(horizon_s: float) -> Callable[[float], tuple[float, float]]:
    """fig16a's regime process: two regimes rotating once over the horizon."""

    def weights(t: float) -> tuple[float, float]:
        w = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / horizon_s))
        return (1.0 - w, w)

    return weights


def _run_fleet(
    s: Scenario,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> SimReport:
    arrivals = None
    if s.flash is not None:
        arrivals = flash_crowd_arrivals(
            s.serving, s.flash.factor, s.flash.start_s, s.flash.duration_s
        )
    regime_weight_at = None
    if s.regime_mix == "diurnal":
        horizon = s.serving.num_requests / s.serving.arrival_rate_rps
        regime_weight_at = _diurnal_mix(horizon)
    fleet = s.fleet
    if s.chaos is not None:
        fleet = dataclasses.replace(fleet, chaos=s.chaos)
    res = _simulate_fleet_cluster_serving(
        s.model,
        s.cluster,
        s.serving,
        fleet,
        mode=s.mode,
        affinity=s.affinity,
        placement_strategy=s.placement_strategy,
        profile_tokens=s.profile_tokens,
        arrivals=arrivals,
        regime_weight_at=regime_weight_at,
        replace_policy=s.replacement.policy if s.replacement is not None else None,
        replace_halflife_tokens=(
            s.replacement.halflife_tokens if s.replacement is not None else None
        ),
        recorder=recorder,
        profiler=profiler,
    )
    busy = sum(r.busy_s for r in res.replicas)
    weighted = sum(r.mean_batch_size * r.busy_s for r in res.replicas)
    return SimReport(
        scenario=s.name,
        kind="fleet",
        completed=res.served,
        generated_tokens=res.generated_tokens,
        makespan_s=res.makespan_s,
        decode_steps=sum(r.decode_steps for r in res.replicas),
        mean_batch_size=weighted / busy if busy > 0 else 0.0,
        throughput_rps=res.throughput_rps,
        throughput_tokens_per_s=(
            res.generated_tokens / res.makespan_s if res.makespan_s > 0 else 0.0
        ),
        latency_mean_s=res.latency.mean_s,
        latency_p50_s=res.latency.p50_s,
        latency_p95_s=res.latency.p95_s,
        latency_p99_s=res.latency.p99_s,
        queue_p95_s=res.queue.p95_s,
        latency_hist=res.latency.histogram_dict(),
        num_replacements=sum(r.replacements for r in res.replicas),
        migration_stall_s=sum(r.migration_stall_s for r in res.replicas),
        shed=len(res.shed),
        shed_fraction=res.shed_fraction,
        slo_attainment=dict(res.slo_attainment),
        peak_replicas=res.peak_replicas,
        scale_ups=sum(1 for e in res.scale_events if e.kind == "up"),
        failures=len(res.failures),
        lost=len(res.lost),
        retries=res.retries,
        availability=res.availability,
        goodput_rps=res.goodput_rps,
        mean_time_to_recover_s=res.mean_time_to_recover_s,
        gpu_hours=res.gpu_hours,
        cost_usd=res.cost_usd,
        usd_per_million_tokens=res.usd_per_million_tokens,
        raw=res,
    )


_RUNNERS = {
    "batch": _run_batch,
    "serving": _run_serving,
    "online": _run_online,
    "fleet": _run_fleet,
}


def make_recorder(scenario: Scenario | str) -> TimelineRecorder:
    """The :class:`TimelineRecorder` ``run`` would auto-attach for a spec.

    One builder keeps every caller (``run`` itself, the CLI's
    ``--trace``/``--metrics`` paths) constructing identical recorders —
    including the SLO slow-completion threshold when ``telemetry.slo``
    is set, which the burn-rate evaluator's latency signal needs.
    """
    s = _resolve(scenario)
    tele = s.telemetry
    if tele is None:
        raise ValueError(f"scenario {s.name!r} has no telemetry section")
    return TimelineRecorder(
        window_s=tele.window_s,
        max_windows=tele.max_windows,
        spans=tele.spans,
        max_span_events=tele.max_span_events,
        slow_latency_s=tele.slo.slow_latency_s if tele.slo is not None else None,
    )


def _flatten_recorders(recorder: MetricsRecorder | None) -> list[MetricsRecorder]:
    """Every leaf recorder behind ``recorder``, tees unwrapped recursively."""
    if recorder is None:
        return []
    if isinstance(recorder, TeeRecorder):
        return [leaf for r in recorder.recorders for leaf in _flatten_recorders(r)]
    return [recorder]


def _slo_fields(
    s: Scenario,
    report: SimReport,
    detector: SignalDetector,
) -> SimReport:
    """Fill ``report.slo`` / ``alerts`` / ``detection`` after an SLO run."""
    slo = s.telemetry.slo if s.telemetry is not None else None
    if slo is None:
        return report
    alerts = (
        evaluate_burn_alerts(report.timeline, slo)
        if report.timeline is not None
        else []
    )
    compliance = compliance_summary(
        slo,
        p95_latency_s=report.latency_p95_s,
        availability=report.availability,
        shed_fraction=report.shed_fraction,
        alerts=alerts,
    )
    if slo.class_overrides:
        classes: dict[str, dict[str, object]] = {}
        for o in slo.class_overrides:
            observed = report.slo_attainment.get(o.name)
            target = o.availability if o.availability is not None else slo.availability
            classes[o.name] = {
                "attainment": observed,
                "target": target,
                "ok": observed is None or observed >= target,
            }
        compliance["classes"] = classes
    detection = detector.summary()
    res = report.raw
    failures = list(getattr(res, "failures", ()) or ())
    chaos = s.chaos if s.chaos is not None else (s.fleet.chaos if s.fleet is not None else None)
    detection["scored"] = score_against_chaos(
        outages=detector.outages,
        brownouts=detector.brownouts,
        failures=failures,
        chaos=chaos,
    )
    return dataclasses.replace(
        report,
        slo=compliance,
        alerts=[a.to_dict() for a in alerts],
        detection=detection,
    )


def run(
    scenario: Scenario | str,
    *,
    keep_raw: bool = True,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> SimReport:
    """Execute one scenario (object or registered preset name).

    Dispatch follows :attr:`Scenario.kind`; the returned
    :class:`SimReport` always has the shared schema filled, with the
    simulator's native result on ``raw`` (dropped when ``keep_raw`` is
    false — the sweep runner does this to keep IPC payloads small).

    Telemetry: a scenario with a ``telemetry`` section automatically gets
    a fresh :class:`~repro.obs.recorder.TimelineRecorder` (and, with
    ``profile=True``, a :class:`~repro.obs.profile.PhaseProfiler`)
    attached; pass ``recorder``/``profiler`` explicitly to override (e.g.
    to keep the recorder for Chrome-trace export).  When the recorder is
    a ``TimelineRecorder``, its timeline document lands on
    ``report.timeline``; profiler phase seconds/fractions land in
    ``report.extra`` under ``profile_*`` keys.  Recorders attach to
    serving and fleet scenarios, profilers to fleet scenarios only.

    SLO monitoring: when ``telemetry.slo`` is set, a
    :class:`~repro.obs.detect.SignalDetector` rides the same hook stream
    (tee'd next to the timeline recorder), burn-rate alerts are evaluated
    over the recorded timeline, and ``report.slo`` / ``report.alerts`` /
    ``report.detection`` are filled in.  Monitoring is observation-only:
    every shared result field is bit-identical to an unmonitored run.

    Passing an explicit ``recorder`` for an SLO-monitored scenario: build
    it with :func:`make_recorder` (possibly inside a
    :class:`~repro.obs.recorder.TeeRecorder`) so the timeline carries the
    spec's slow-completion threshold — a recorder without it zeroes the
    latency burn signal, and ``run`` warns about the mismatch.  A
    :class:`SignalDetector` already present anywhere in the supplied tee
    is reused for detection instead of tee'ing a second one on top.
    """
    s = _resolve(scenario)
    tele = s.telemetry
    if recorder is None and tele is not None:
        recorder = make_recorder(s)
    if profiler is None and tele is not None and tele.profile:
        profiler = PhaseProfiler()
    if recorder is not None and s.kind not in ("serving", "fleet"):
        raise ValueError(
            f"recorders attach to serving and fleet scenarios, not kind {s.kind!r}"
        )
    if profiler is not None and s.kind != "fleet":
        raise ValueError(
            f"profilers attach to fleet scenarios (phase timers live in the "
            f"fleet engines), not kind {s.kind!r}"
        )
    detector: SignalDetector | None = None
    engine_recorder: MetricsRecorder | None = recorder
    leaves = _flatten_recorders(recorder)
    if tele is not None and tele.slo is not None and s.kind == "fleet":
        detector = next(
            (r for r in leaves if isinstance(r, SignalDetector)), None
        )
        if detector is None:
            detector = SignalDetector()
            engine_recorder = (
                TeeRecorder((recorder, detector)) if recorder is not None else detector
            )
        if recorder is not None:
            want = tele.slo.slow_latency_s
            if not any(
                isinstance(r, TimelineRecorder) and r.slow_latency_s == want
                for r in leaves
            ):
                warnings.warn(
                    f"scenario {s.name!r} declares an SLO but the supplied recorder "
                    f"has no TimelineRecorder with slow_latency_s={want}; the latency "
                    "burn signal will read all-zero — build recorders for SLO "
                    "scenarios with make_recorder()",
                    stacklevel=2,
                )
    if s.kind == "fleet":
        report = _run_fleet(s, recorder=engine_recorder, profiler=profiler)
    elif s.kind == "serving":
        report = _run_serving(s, recorder=recorder)
    else:
        report = _RUNNERS[s.kind](s)
    timeline_rec = next(
        (r for r in leaves if isinstance(r, TimelineRecorder)), None
    )
    if timeline_rec is not None:
        report = dataclasses.replace(report, timeline=timeline_rec.timeline())
    if detector is not None:
        report = _slo_fields(s, report, detector)
    if profiler is not None:
        prof = profiler.profile()
        extra = dict(report.extra)
        extra["profile_total_s"] = prof.total_s
        for phase, seconds in prof.phase_s.items():
            extra[f"profile_{phase}_s"] = seconds
        for phase, frac in prof.fractions.items():
            extra[f"profile_{phase}_frac"] = frac
        report = dataclasses.replace(report, extra=extra)
    if not keep_raw:
        report = dataclasses.replace(report, raw=None)
    return report


def _run_for_sweep(scenario: Scenario) -> SimReport:
    try:
        return run(scenario, keep_raw=False)
    except SweepError:
        raise
    except Exception:
        raise SweepError(
            scenario.name, scenario.to_json(), traceback.format_exc()
        ) from None


def run_sweep(
    scenarios: Iterable[Scenario | str],
    processes: int | None = None,
) -> list[SimReport]:
    """Run many scenarios across a process pool; reports in input order.

    ``scenarios`` mixes :class:`Scenario` objects and registered preset
    names freely.  ``processes`` defaults to ``min(len(grid), cpu_count)``;
    pass ``1`` to force serial execution (useful under debuggers).  Raw
    result objects are dropped from sweep reports — re-run the single
    scenario with :func:`run` when you need one in full.

    A worker failure raises :class:`SweepError` naming the scenario and
    carrying its spec JSON, instead of a bare multiprocessing traceback.
    """
    grid: Sequence[Scenario] = [_resolve(s) for s in scenarios]
    if not grid:
        return []
    if processes is None:
        processes = min(len(grid), os.cpu_count() or 1)
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if processes == 1 or len(grid) == 1:
        return [_run_for_sweep(s) for s in grid]
    with multiprocessing.Pool(processes) as pool:
        return pool.map(_run_for_sweep, grid)
