"""Unified Scenario API: declarative specs, one ``run()``, a preset registry.

This package is the front door for every simulation the reproduction can
execute:

* :mod:`repro.scenarios.spec` — the frozen, JSON-round-trippable
  :class:`Scenario` spec (model + cluster + traffic + drift + placement
  policy + optional replacement/fleet sections).
* :mod:`repro.scenarios.runner` — :func:`run` (dispatches one spec to the
  batch / serving / online / fleet simulator and returns one
  :class:`SimReport`) and :func:`run_sweep` (multiprocessing parameter
  grids).
* :mod:`repro.scenarios.registry` — named presets for the paper figures,
  drift workloads and flash crowds, each with a CI-sized ``-smoke``
  variant (``repro run <name>``, ``repro scenarios list``).

Quickstart::

    from repro import run, get_scenario, list_scenarios

    print(list_scenarios(kind="fleet"))
    report = run("fig16-flash-autoscale-smoke")
    print(report.latency_p95_s, report.shed_fraction, report.cost_usd)
"""

from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.report import SimReport
from repro.scenarios.runner import make_recorder, run, run_sweep
from repro.scenarios.spec import (
    DriftSpec,
    FlashCrowdSpec,
    REGIME_MIXES,
    ReplacementSpec,
    SCENARIO_KINDS,
    Scenario,
    TelemetrySpec,
)

__all__ = [
    "Scenario",
    "DriftSpec",
    "ReplacementSpec",
    "FlashCrowdSpec",
    "TelemetrySpec",
    "SCENARIO_KINDS",
    "REGIME_MIXES",
    "SimReport",
    "make_recorder",
    "run",
    "run_sweep",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
]
