"""The unified result schema every scenario kind reports into.

Whatever simulator a :class:`~repro.scenarios.spec.Scenario` dispatches
to, the caller gets one :class:`SimReport`: shared latency / throughput /
kept-mass / shed / cost fields, with per-mode extensions in ``extra`` and
the full underlying result object (``ServingResult``,
``OnlineServingResult``, ``FleetResult`` or the ``compare_modes`` row
dict) on ``raw`` for callers that need every detail.  Fields that don't
apply to a kind hold their zero values — a batch run has no latency
distribution, a serving run sheds nothing — so sweep output is always
rectangular.

Cost fields close the ROADMAP's accounting item: every report prices the
GPU-hours its scenario consumed (``ClusterConfig.gpu_hour_usd``) and
normalises to dollars per million generated tokens, so autoscaler arms —
or any two scenarios — can be compared on spend next to p95.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields

from repro.scenarios.spec import SCENARIO_KINDS

__all__ = ["SimReport"]


@dataclass(frozen=True)
class SimReport:
    """Outcome of one scenario run, in one schema for all four kinds."""

    scenario: str
    kind: str  # batch | serving | online | fleet

    # shared throughput account
    completed: int = 0
    generated_tokens: int = 0
    makespan_s: float = 0.0
    decode_steps: int = 0
    mean_batch_size: float = 0.0
    throughput_rps: float = 0.0
    throughput_tokens_per_s: float = 0.0

    # latency distribution (zero for batch runs — lockstep has no queueing)
    latency_mean_s: float = 0.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    queue_p95_s: float = 0.0
    # fixed-bucket latency histogram: upper-edge label -> count (see
    # repro.engine.metrics.LATENCY_HIST_EDGES_S); empty for batch runs
    latency_hist: dict = field(default_factory=dict)

    # placement / drift account (online + fleet)
    kept_mass_initial: float | None = None
    kept_mass_final: float | None = None
    num_replacements: int = 0
    migration_stall_s: float = 0.0

    # fleet account
    shed: int = 0
    shed_fraction: float = 0.0
    slo_attainment: dict = field(default_factory=dict)
    peak_replicas: int = 0
    scale_ups: int = 0

    # chaos account (zero/ideal defaults so pre-chaos reports still load)
    failures: int = 0
    lost: int = 0
    retries: int = 0
    availability: float = 1.0
    goodput_rps: float = 0.0
    mean_time_to_recover_s: float = 0.0

    # SLO monitoring account (populated when telemetry.slo is set; empty
    # defaults so pre-SLO reports still load).  ``slo`` is the compliance
    # summary, ``alerts`` the burn-rate AlertSpan dicts, ``detection`` the
    # observed outage/brownout record plus chaos ground-truth scoring.
    slo: dict = field(default_factory=dict)
    alerts: list = field(default_factory=list)
    detection: dict = field(default_factory=dict)

    # cost account (GPU-hour pricing from ClusterConfig.gpu_hour_usd)
    gpu_hours: float = 0.0
    cost_usd: float = 0.0
    usd_per_million_tokens: float = 0.0

    # per-mode extensions (e.g. batch comparisons: speedups, comm shares)
    extra: dict = field(default_factory=dict)

    # per-window metric timeline (scenarios run with a telemetry section);
    # the nested document a TimelineRecorder.timeline() returns, or None
    timeline: dict | None = field(default=None, repr=False)

    # the full underlying result object; excluded from serde and equality
    raw: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown report kind {self.kind!r}")

    def is_finite(self) -> bool:
        """True when every numeric field (incl. extras) is a finite number.

        Nested non-numeric values (the ``timeline`` document's lists,
        string labels in dicts) are skipped, not rejected.
        """
        values = []
        for f in fields(self):
            if f.name in ("raw", "timeline"):
                continue
            v = getattr(self, f.name)
            if isinstance(v, dict):
                values.extend(v.values())
            else:
                values.append(v)
        for v in values:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                continue
            if not math.isfinite(v):
                return False
        return True

    def to_dict(self) -> dict:
        """JSON-ready dict of every field except ``raw``."""
        out = {}
        for f in fields(self):
            if f.name == "raw":
                continue
            v = getattr(self, f.name)
            out[f.name] = dict(v) if isinstance(v, dict) else v
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SimReport":
        """Rebuild a report from :meth:`to_dict` output (``raw`` stays None).

        Unknown keys are rejected so a mistyped field name in a hand-edited
        report fails loudly instead of silently dropping data.
        """
        known = {f.name for f in fields(cls) if f.name != "raw"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimReport field(s) {sorted(unknown)}")
        return cls(**{k: data[k] for k in data})

    @classmethod
    def from_json(cls, text: str) -> "SimReport":
        return cls.from_dict(json.loads(text))
