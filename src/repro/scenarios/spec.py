"""The declarative scenario spec: one frozen, serializable object per run.

A :class:`Scenario` is the single source of truth for everything a
simulation needs — model preset, cluster shape, traffic, drift, placement
policy, optional online-replacement and fleet sections.  Which simulator
executes it is *derived* from which sections are present (see
:attr:`Scenario.kind`), so adding a scenario never means learning a new
entry point:

========  =====================================================
kind      sections present
========  =====================================================
batch     ``batch`` (lockstep three-way engine comparison)
serving   ``serving`` (single replica, continuous batching)
online    ``serving`` + ``drift`` and/or ``replacement``
fleet     ``serving`` + ``fleet`` (router/admission/autoscaler)
========  =====================================================

Scenarios are frozen dataclasses all the way down (model, cluster, links,
policies), so they are hashable, comparable, picklable (the sweep runner
ships them to worker processes) and JSON round-trippable:
``Scenario.from_dict(s.to_dict()) == s`` holds exactly for every valid
spec, which is what makes ``repro run --scenario file.json`` a faithful
reproduction vehicle.
"""

from __future__ import annotations

import dataclasses
import json
import os
import types
import typing
from dataclasses import dataclass
from enum import Enum

from repro.chaos.spec import ChaosSpec
from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    InferenceConfig,
    ModelConfig,
    ServingConfig,
)
from repro.core.online import ReplacementPolicy
from repro.core.placement.registry import SOLVERS
from repro.engine.workload import DRIFT_KINDS
from repro.obs.slo import SloSpec

__all__ = [
    "DriftSpec",
    "ReplacementSpec",
    "FlashCrowdSpec",
    "TelemetrySpec",
    "Scenario",
    "REGIME_MIXES",
    "SCENARIO_KINDS",
]

SCENARIO_KINDS: tuple[str, ...] = ("batch", "serving", "online", "fleet")

#: How a fleet scenario's arrival stream is split across routing regimes:
#: ``uniform`` is a stationary equal mix, ``diurnal`` rotates a two-regime
#: cosine mixture once over the serving horizon (fig16a's traffic).
REGIME_MIXES: tuple[str, ...] = ("uniform", "diurnal")


@dataclass(frozen=True)
class DriftSpec:
    """Routing drift over the serving horizon (see ``make_drift_scenario``)."""

    kind: str = "abrupt"

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise ValueError(
                f"unknown drift kind {self.kind!r}; choose from {DRIFT_KINDS}"
            )


@dataclass(frozen=True)
class ReplacementSpec:
    """Online re-placement arm: the trigger policy plus its estimator window."""

    policy: ReplacementPolicy = ReplacementPolicy()
    halflife_tokens: float | None = None

    def __post_init__(self) -> None:
        if self.halflife_tokens is not None and self.halflife_tokens <= 0:
            raise ValueError("halflife_tokens must be positive when set")


@dataclass(frozen=True)
class TelemetrySpec:
    """Observability attachment: per-window timelines, spans, self-profiling.

    Mirrors the :class:`repro.obs.recorder.TimelineRecorder` constructor —
    ``window_s=None`` enables the deterministic auto-sizing window,
    ``spans=False`` keeps timelines but drops Chrome-trace span logging,
    ``max_span_events`` bounds span memory.  ``profile=True`` additionally
    attaches a :class:`repro.obs.profile.PhaseProfiler` (fleet scenarios
    only — the phase timers live in the fleet engines) and reports the
    phase breakdown in ``SimReport.extra``.

    ``slo`` attaches a :class:`repro.obs.slo.SloSpec` (fleet scenarios
    only — burn signals need the fleet's shed/availability semantics):
    ``run`` then evaluates burn-rate alerts over the recorded timeline,
    runs the :class:`repro.obs.detect.SignalDetector` on the hook stream,
    and fills ``SimReport.slo`` / ``alerts`` / ``detection``.
    """

    window_s: float | None = None
    max_windows: int = 128
    spans: bool = True
    max_span_events: int = 20_000
    profile: bool = False
    slo: SloSpec | None = None

    def __post_init__(self) -> None:
        if self.window_s is not None and not self.window_s > 0.0:
            raise ValueError("telemetry window_s must be > 0 when set")
        if self.max_windows < 2:
            raise ValueError("telemetry max_windows must be >= 2")
        if self.max_span_events < 0:
            raise ValueError("telemetry max_span_events must be >= 0")
        if self.slo is not None and not isinstance(self.slo, SloSpec):
            raise TypeError("telemetry slo must be a SloSpec")


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A rate spike in the arrival process (fleet scenarios only)."""

    factor: float = 4.0
    start_s: float = 0.05
    duration_s: float = 0.03

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("flash factor must be >= 1")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("flash window must have start >= 0 and positive duration")


# -- generic dataclass <-> dict serde -----------------------------------------
#
# All scenario sections are frozen dataclasses whose fields are scalars,
# Enums, or further such dataclasses, so one recursive encoder/decoder
# covers the whole tree.  Types are read from the dataclass definitions,
# which keeps the serde in lockstep with the configs without a parallel
# schema.


def _encode(obj: object) -> object:
    if isinstance(obj, Enum):  # before str: GatingKind/ExecutionMode are str enums
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _encode(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, (list, tuple)):  # chaos schedules: tuples of specs
        return [_encode(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot serialize scenario field of type {type(obj).__name__}")


def _decode(tp: typing.Any, data: typing.Any, where: str) -> typing.Any:
    origin = typing.get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if data is None:
            return None
        if len(args) != 1:
            raise TypeError(f"{where}: unsupported union type {tp}")
        return _decode(args[0], data, where)
    if origin is tuple:
        args = typing.get_args(tp)
        if len(args) == 2 and args[1] is Ellipsis:
            if not isinstance(data, list):
                raise ValueError(
                    f"{where}: expected a list, got {type(data).__name__}"
                )
            return tuple(
                _decode(args[0], v, f"{where}[{i}]") for i, v in enumerate(data)
            )
        raise TypeError(f"{where}: unsupported tuple type {tp}")
    if isinstance(tp, type) and issubclass(tp, Enum):
        return tp(data)
    if dataclasses.is_dataclass(tp):
        if not isinstance(data, dict):
            raise ValueError(f"{where}: expected a mapping for {tp.__name__}")
        hints = typing.get_type_hints(tp)
        known = {f.name for f in dataclasses.fields(tp)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"{where}: unknown {tp.__name__} field(s) {sorted(unknown)}"
            )
        kwargs = {}
        for f in dataclasses.fields(tp):
            if not f.init:
                continue
            if f.name in data:
                kwargs[f.name] = _decode(
                    hints[f.name], data[f.name], f"{where}.{f.name}"
                )
        return tp(**kwargs)
    # scalar leaves: reject mistyped JSON here, at decode time, so a
    # hand-edited spec fails with a field path instead of deep in a run
    if tp is float:
        if isinstance(data, bool) or not isinstance(data, (int, float)):
            raise ValueError(f"{where}: expected a number, got {type(data).__name__}")
        return float(data)
    if tp is bool:
        if not isinstance(data, bool):
            raise ValueError(f"{where}: expected a bool, got {type(data).__name__}")
        return data
    if tp is int:
        if isinstance(data, bool) or not isinstance(data, int):
            raise ValueError(f"{where}: expected an int, got {type(data).__name__}")
        return data
    if tp is str:
        if not isinstance(data, str):
            raise ValueError(f"{where}: expected a string, got {type(data).__name__}")
        return data
    return data


@dataclass(frozen=True)
class Scenario:
    """One fully-specified simulation, declaratively.

    Parameters
    ----------
    name:
        Identifier — registry key for presets, label in reports.
    model / cluster:
        The deployment under test.  ``model`` is a full
        :class:`~repro.config.ModelConfig` (use
        :func:`~repro.config.paper_model` for Table II presets).
    mode / affinity / placement_strategy:
        Engine strategy, routing-model affinity strength, and placement
        solver — shared by every kind.  For ``batch`` scenarios all three
        execution modes run (the paper's comparison); ``mode`` selects
        which row provides the report's headline numbers.
    seed:
        Workload seed for ``batch`` scenarios (serving kinds derive all
        randomness from ``serving.seed``, matching the legacy entry
        points' seed layouts).
    batch / serving / drift / replacement / fleet:
        The optional sections whose presence selects the simulator (see
        module docstring).
    regime_mix / flash:
        Fleet-only traffic shaping: the regime mixture process and an
        optional flash-crowd rate spike.
    chaos:
        Fleet-only fault injection: a frozen
        :class:`~repro.chaos.spec.ChaosSpec` (crash / preemption /
        brownout schedules plus the retry policy), merged into
        ``fleet.chaos`` at run time.
    profile_tokens:
        Offline profiling trace length for affinity placements in the
        online and fleet paths.
    telemetry:
        Optional observability attachment (serving and fleet kinds): a
        :class:`TelemetrySpec` makes ``run`` record a per-window metric
        timeline (``SimReport.timeline``), span traces, and — with
        ``profile=True`` — the simulator's own phase breakdown.
    """

    name: str
    model: ModelConfig
    cluster: ClusterConfig
    description: str = ""
    mode: ExecutionMode = ExecutionMode.EXFLOW
    affinity: float = 0.85
    placement_strategy: str = "staged"
    seed: int = 0
    batch: InferenceConfig | None = None
    serving: ServingConfig | None = None
    drift: DriftSpec | None = None
    replacement: ReplacementSpec | None = None
    fleet: FleetConfig | None = None
    regime_mix: str = "uniform"
    flash: FlashCrowdSpec | None = None
    chaos: ChaosSpec | None = None
    profile_tokens: int = 2048
    telemetry: TelemetrySpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not 0.0 <= self.affinity <= 1.0:
            raise ValueError("affinity must be in [0, 1]")
        if self.placement_strategy not in SOLVERS:
            raise ValueError(
                f"unknown placement strategy {self.placement_strategy!r}; "
                f"choose from {sorted(SOLVERS)}"
            )
        if self.regime_mix not in REGIME_MIXES:
            raise ValueError(
                f"unknown regime mix {self.regime_mix!r}; choose from {REGIME_MIXES}"
            )
        if self.profile_tokens <= 0:
            raise ValueError("profile_tokens must be positive")
        if self.batch is not None and self.serving is not None:
            raise ValueError(
                "scenario cannot have both a batch and a serving section"
            )
        if self.batch is None and self.serving is None:
            raise ValueError(
                "scenario needs a workload: either a batch or a serving section"
            )
        serving_only = ("drift", "replacement", "fleet")
        if self.serving is None:
            for section in serving_only:
                if getattr(self, section) is not None:
                    raise ValueError(
                        f"{section} section requires a serving section"
                    )
        if self.fleet is not None and self.drift is not None:
            raise ValueError(
                "drift sections apply to single-replica online scenarios; "
                "fleet traffic drift is expressed via regime_mix"
            )
        if self.fleet is None:
            if self.flash is not None:
                raise ValueError("flash crowds require a fleet section")
            if self.regime_mix != "uniform":
                raise ValueError("regime_mix requires a fleet section")
        elif self.regime_mix == "diurnal" and self.fleet.num_regimes != 2:
            raise ValueError("the diurnal regime mix rotates exactly two regimes")
        if self.flash is not None and self.serving.arrival != "poisson":
            # the flash process replaces the arrival stream wholesale
            # (Poisson with a rate spike); accepting arrival="bursty" here
            # would silently discard the declared MMPP traffic
            raise ValueError(
                "flash crowds draw their own Poisson-with-spike arrivals; "
                "use serving.arrival='poisson' (the bursty MMPP stream would "
                "be silently ignored)"
            )
        if self.chaos is not None:
            if self.fleet is None:
                raise ValueError("chaos sections require a fleet section")
            if self.fleet.chaos is not None:
                raise ValueError(
                    "chaos is declared twice: drop fleet.chaos when the "
                    "scenario carries a chaos section"
                )
        if (
            self.fleet is not None
            and self.replacement is not None
            and not self.fleet.replace
        ):
            raise ValueError(
                "a fleet scenario with a replacement section needs fleet.replace=True"
            )
        if self.telemetry is not None:
            if self.kind not in ("serving", "fleet"):
                raise ValueError(
                    "telemetry sections apply to serving and fleet scenarios only"
                )
            if self.telemetry.profile and self.fleet is None:
                raise ValueError(
                    "telemetry.profile requires a fleet section "
                    "(the phase timers live in the fleet engines)"
                )
            if self.telemetry.slo is not None and self.fleet is None:
                raise ValueError(
                    "telemetry.slo requires a fleet section (burn-rate "
                    "signals need the fleet's shed/availability semantics)"
                )

    @property
    def kind(self) -> str:
        """Which simulator executes this spec (dispatch rule of ``run``)."""
        if self.fleet is not None:
            return "fleet"
        if self.drift is not None or self.replacement is not None:
            return "online"
        if self.serving is not None:
            return "serving"
        return "batch"

    @property
    def is_smoke(self) -> bool:
        """Registry convention: smoke variants are suffixed ``-smoke``."""
        return self.name.endswith("-smoke")

    # -- serde -----------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON-types dict; inverse of :meth:`from_dict`."""
        return _encode(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Scenario":
        return _decode(cls, data, "scenario")

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | os.PathLike[str]) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "Scenario":
        with open(path) as fh:
            return cls.from_json(fh.read())
