"""Fleet-scale serving: replicas behind a router, with SLOs and autoscaling.

One placement-optimized cluster serves one replica's worth of traffic;
the ROADMAP's "millions of users" need a *fleet*.  This package layers a
front-end on top of :mod:`repro.engine.serving`:

* :mod:`repro.fleet.requests` — regime/priority-labelled requests and the
  fleet traffic builders (time-varying regime mixes, flash crowds).
* :mod:`repro.fleet.replica` — one replica: queue, continuous-batching
  state, its own (possibly regime-specific) placement and optional PR-2
  online re-placement loop.
* :mod:`repro.fleet.router` — round-robin / join-shortest-queue /
  power-of-two-choices / affinity-aware routing policies.
* :mod:`repro.fleet.admission` — SLO deadlines, priority classes and
  predicted-latency load shedding.
* :mod:`repro.fleet.autoscaler` — reactive queue-depth scaling with an
  explicit cold-start cost (weight load + placement shuffle).
* :mod:`repro.fleet.reference` — the event-heap simulation loop tying it
  all together, retained as the correctness oracle (``engine="event"``).
* :mod:`repro.fleet.engine` — the vectorized tick engine: same events,
  same results, array state and batched arrival windows for
  million-request fleets (``engine="tick"``).
* :mod:`repro.fleet.simulate` — the engine dispatch and the config-driven
  entry point (``repro fleet`` on the CLI, fig16 in the benchmarks).
"""

from repro.fleet.admission import (
    AdmissionController,
    PriorityClass,
    default_priority_classes,
)
from repro.fleet.autoscaler import (
    ColdStartCost,
    ReactiveAutoscaler,
    ScaleEvent,
    price_cold_start,
)
from repro.fleet.engine import simulate_fleet_tick
from repro.fleet.reference import simulate_fleet_reference
from repro.fleet.replica import (
    ActiveEntry,
    ArrayQueue,
    Replica,
    ReplicaState,
    ReplicaStats,
)
from repro.fleet.requests import (
    FleetCompleted,
    FleetRequest,
    ShedRecord,
    flash_crowd_arrivals,
    make_fleet_requests,
)
from repro.fleet.router import (
    AffinityRouter,
    JoinShortestQueueRouter,
    PowerOfTwoRouter,
    ROUTER_KINDS,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.fleet.simulate import (
    FleetResult,
    simulate_fleet_cluster_serving,
    simulate_fleet_serving,
)

__all__ = [
    "AdmissionController",
    "PriorityClass",
    "default_priority_classes",
    "ColdStartCost",
    "ReactiveAutoscaler",
    "ScaleEvent",
    "price_cold_start",
    "ActiveEntry",
    "ArrayQueue",
    "Replica",
    "ReplicaState",
    "ReplicaStats",
    "FleetCompleted",
    "FleetRequest",
    "ShedRecord",
    "flash_crowd_arrivals",
    "make_fleet_requests",
    "AffinityRouter",
    "JoinShortestQueueRouter",
    "PowerOfTwoRouter",
    "ROUTER_KINDS",
    "RoundRobinRouter",
    "Router",
    "make_router",
    "FleetResult",
    "simulate_fleet_cluster_serving",
    "simulate_fleet_reference",
    "simulate_fleet_serving",
    "simulate_fleet_tick",
]
