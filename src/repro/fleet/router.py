"""Front-end request routing across fleet replicas.

Four policies, from the classical load-balancing ladder up to the
placement-aware one the affinity angle of the paper enables:

* **round-robin** — cycle over routable replicas; ignores both load and
  placement.  The baseline every figure compares against.
* **jsq** (join-shortest-queue) — full-information load balancing: send to
  the replica with the fewest resident requests.
* **p2c** (power-of-two-choices) — sample two replicas uniformly, join the
  less loaded.  The Mitzenmacher result: almost all of JSQ's tail benefit
  at O(1) state, and what production routers actually deploy.
* **affinity** — *placement-aware* routing: score each replica by the
  kept-transition mass its placement achieves under the request's routing
  regime (:func:`~repro.core.online.model_kept_mass` — the same objective
  the placement solver maximises), discounted by a congestion penalty
  proportional to relative load.  Replicas whose placements were fit to
  the request's regime serve its tokens with fewer inter-GPU crossings, so
  each decode step is cheaper — routing and placement compose.

Kept-mass scores are cached per ``(replica, regime)`` against the
placement object's identity, so an online re-placement (new placement
object) invalidates exactly that replica's rows — and a router reused
across simulations never serves a stale score for a new run's placements.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import ROUTER_KINDS
from repro.core.online import model_kept_mass
from repro.fleet.replica import Replica
from repro.fleet.requests import FleetRequest
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "PowerOfTwoRouter",
    "AffinityRouter",
    "make_router",
    "ROUTER_KINDS",
]


class Router:
    """Pick a replica for each arriving request."""

    name = "base"

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        raise NotImplementedError

    @staticmethod
    def _check(replicas: Sequence[Replica]) -> None:
        if not replicas:
            raise ValueError("router needs at least one routable replica")


class RoundRobinRouter(Router):
    """Cycle over the routable replicas in id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        chosen = ordered[self._next % len(ordered)]
        self._next += 1
        return chosen


class JoinShortestQueueRouter(Router):
    """Full-information least-loaded routing (ties to the lowest id)."""

    name = "jsq"

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        return min(replicas, key=lambda r: (r.load, r.replica_id))


class PowerOfTwoRouter(Router):
    """Sample two replicas, join the less loaded one."""

    name = "p2c"

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        if len(replicas) == 1:
            return replicas[0]
        i, j = rng.choice(len(replicas), size=2, replace=False)
        a, b = replicas[int(i)], replicas[int(j)]
        return min(a, b, key=lambda r: (r.load, r.replica_id))


class AffinityRouter(Router):
    """Score replicas by kept mass under the request's regime, minus load.

    ``score(r) = kept_mass(r.placement, regime) - load_weight * load(r)/cap``

    With ``load_weight = 0`` this is pure placement matching (and can herd
    all traffic of one regime onto one replica); the default — shared with
    :class:`~repro.config.FleetConfig.affinity_load_weight` — trades one
    full batch of backlog against one unit of kept mass, so a
    matched-but-congested replica spills instead of herding.
    """

    name = "affinity"

    def __init__(
        self,
        regimes: Sequence[MarkovRoutingModel],
        load_weight: float = 1.0,
    ) -> None:
        if not regimes:
            raise ValueError("affinity routing needs at least one regime model")
        if load_weight < 0:
            raise ValueError("load_weight must be >= 0")
        self.regimes = tuple(regimes)
        self.load_weight = load_weight
        # (replica_id, regime) -> (placement object, score); the stored
        # placement is compared by identity so replacements — or a new
        # simulation reusing this router with fresh replicas — recompute
        self._kept_cache: dict[tuple[int, int], tuple[object, float]] = {}

    def kept_mass(self, replica: Replica, regime: int) -> float:
        """Cached kept-transition mass of a replica under one regime."""
        if not 0 <= regime < len(self.regimes):
            raise ValueError(f"regime {regime} out of range [0, {len(self.regimes)})")
        key = (replica.replica_id, regime)
        hit = self._kept_cache.get(key)
        if hit is not None and hit[0] is replica.placement:
            return hit[1]
        score = model_kept_mass(replica.placement, self.regimes[regime])
        self._kept_cache[key] = (replica.placement, score)
        return score

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        regime = min(request.regime, len(self.regimes) - 1)

        def score(r: Replica) -> float:
            return self.kept_mass(r, regime) - self.load_weight * r.load / r.max_batch

        # max score; ties broken toward the lighter replica, then id
        return max(replicas, key=lambda r: (score(r), -r.load, -r.replica_id))


def make_router(
    kind: str,
    regimes: Sequence[MarkovRoutingModel] | None = None,
    load_weight: float = 1.0,
) -> Router:
    """Build the router policy ``kind`` names (see :data:`ROUTER_KINDS`)."""
    if kind == "round-robin":
        return RoundRobinRouter()
    if kind == "jsq":
        return JoinShortestQueueRouter()
    if kind == "p2c":
        return PowerOfTwoRouter()
    if kind == "affinity":
        if regimes is None:
            raise ValueError("affinity routing requires the regime model list")
        return AffinityRouter(regimes, load_weight=load_weight)
    raise ValueError(f"unknown router {kind!r}; choose from {ROUTER_KINDS}")
