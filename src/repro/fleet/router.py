"""Front-end request routing across fleet replicas.

Four policies, from the classical load-balancing ladder up to the
placement-aware one the affinity angle of the paper enables:

* **round-robin** — cycle over routable replicas; ignores both load and
  placement.  The baseline every figure compares against.
* **jsq** (join-shortest-queue) — full-information load balancing: send to
  the replica with the fewest resident requests.
* **p2c** (power-of-two-choices) — sample two replicas uniformly, join the
  less loaded.  The Mitzenmacher result: almost all of JSQ's tail benefit
  at O(1) state, and what production routers actually deploy.
* **affinity** — *placement-aware* routing: score each replica by the
  kept-transition mass its placement achieves under the request's routing
  regime (:func:`~repro.core.online.model_kept_mass` — the same objective
  the placement solver maximises), discounted by a congestion penalty
  proportional to relative load.  Replicas whose placements were fit to
  the request's regime serve its tokens with fewer inter-GPU crossings, so
  each decode step is cheaper — routing and placement compose.

Kept-mass scores are cached per ``(replica, regime)`` against the
placement object's identity, so an online re-placement (new placement
object) invalidates exactly that replica's rows — and a router reused
across simulations never serves a stale score for a new run's placements.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import ROUTER_KINDS
from repro.core.online import model_kept_mass
from repro.fleet.replica import Replica
from repro.fleet.requests import FleetRequest
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "PowerOfTwoRouter",
    "AffinityRouter",
    "make_router",
    "ROUTER_KINDS",
    "jsq_select",
    "p2c_select",
    "affinity_select",
    "rr_positions",
]


# -- array selection kernels ---------------------------------------------------
#
# The scoring cores shared by the object-level ``choose_batch`` methods and
# the tick engine's array state (which has no Replica objects to hand).
# All operate on parallel arrays over one *candidate snapshot*: position i
# describes candidate i, ``ids`` carries replica ids for tie-breaks.


def jsq_select(loads: np.ndarray) -> int:
    """Join-shortest-queue over candidates sorted by id: first minimum."""
    return int(np.argmin(loads))


def rr_positions(start: int, count: int, num_candidates: int) -> np.ndarray:
    """The next ``count`` round-robin slots of an id-ordered candidate list."""
    return (start + np.arange(count, dtype=np.int64)) % num_candidates


def p2c_select(loads: np.ndarray, ids: np.ndarray, rng: np.random.Generator) -> int:
    """Draw two distinct candidates, keep the less loaded (ties: lower id)."""
    n = loads.shape[0]
    if n == 1:
        return 0
    i, j = rng.choice(n, size=2, replace=False)
    a, b = int(i), int(j)
    if (loads[b], ids[b]) < (loads[a], ids[a]):
        return b
    return a


def affinity_select(scores: np.ndarray, loads: np.ndarray, ids: np.ndarray) -> int:
    """Highest score; ties toward the lighter candidate, then the lower id."""
    best = np.flatnonzero(scores == scores.max())
    if best.size > 1:
        best = best[loads[best] == loads[best].min()]
        if best.size > 1:
            return int(best[np.argmin(ids[best])])
    return int(best[0])


class Router:
    """Pick a replica for each arriving request."""

    name = "base"

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        raise NotImplementedError

    def choose_batch(
        self,
        requests: Sequence[FleetRequest],
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> list[Replica]:
        """Route a whole arrival batch against one frozen replica snapshot.

        Semantically ``[self.choose(q, replicas, rng) for q in requests]``:
        router-internal state (the round-robin cursor, p2c's rng draws)
        advances per request, but replica load and membership are read
        once — the caller admits or sheds *between* batches, not within
        one.  Subclasses override with vectorized scoring; this default
        delegates so custom routers stay correct for free.
        """
        return [self.choose(q, replicas, rng) for q in requests]

    @staticmethod
    def _check(replicas: Sequence[Replica]) -> None:
        if not replicas:
            raise ValueError("router needs at least one routable replica")


class RoundRobinRouter(Router):
    """Cycle over the routable replicas in id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        chosen = ordered[self._next % len(ordered)]
        self._next += 1
        return chosen

    def choose_batch(
        self,
        requests: Sequence[FleetRequest],
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> list[Replica]:
        self._check(replicas)
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        pos = rr_positions(self._next, len(requests), len(ordered))
        self._next += len(requests)
        return [ordered[int(p)] for p in pos]


class JoinShortestQueueRouter(Router):
    """Full-information least-loaded routing (ties to the lowest id)."""

    name = "jsq"

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        return min(replicas, key=lambda r: (r.load, r.replica_id))

    def choose_batch(
        self,
        requests: Sequence[FleetRequest],
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> list[Replica]:
        self._check(replicas)
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        loads = np.array([r.load for r in ordered], dtype=np.int64)
        chosen = ordered[jsq_select(loads)]
        return [chosen] * len(requests)


class PowerOfTwoRouter(Router):
    """Sample two replicas, join the less loaded one."""

    name = "p2c"

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        if len(replicas) == 1:
            return replicas[0]
        i, j = rng.choice(len(replicas), size=2, replace=False)
        a, b = replicas[int(i)], replicas[int(j)]
        return min(a, b, key=lambda r: (r.load, r.replica_id))

    def choose_batch(
        self,
        requests: Sequence[FleetRequest],
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> list[Replica]:
        self._check(replicas)
        # the two uniform draws index the candidate list as given (the
        # scalar path's contract), so no id sort here
        loads = np.array([r.load for r in replicas], dtype=np.int64)
        ids = np.array([r.replica_id for r in replicas], dtype=np.int64)
        return [replicas[p2c_select(loads, ids, rng)] for _ in requests]


class AffinityRouter(Router):
    """Score replicas by kept mass under the request's regime, minus load.

    ``score(r) = kept_mass(r.placement, regime) - load_weight * load(r)/cap``

    With ``load_weight = 0`` this is pure placement matching (and can herd
    all traffic of one regime onto one replica); the default — shared with
    :class:`~repro.config.FleetConfig.affinity_load_weight` — trades one
    full batch of backlog against one unit of kept mass, so a
    matched-but-congested replica spills instead of herding.
    """

    name = "affinity"

    def __init__(
        self,
        regimes: Sequence[MarkovRoutingModel],
        load_weight: float = 1.0,
    ) -> None:
        if not regimes:
            raise ValueError("affinity routing needs at least one regime model")
        if load_weight < 0:
            raise ValueError("load_weight must be >= 0")
        self.regimes = tuple(regimes)
        self.load_weight = load_weight
        # (replica_id, regime) -> (placement object, score); the stored
        # placement is compared by identity so replacements — or a new
        # simulation reusing this router with fresh replicas — recompute
        self._kept_cache: dict[tuple[int, int], tuple[object, float]] = {}

    def kept_mass(self, replica: Replica, regime: int) -> float:
        """Cached kept-transition mass of a replica under one regime."""
        if not 0 <= regime < len(self.regimes):
            raise ValueError(f"regime {regime} out of range [0, {len(self.regimes)})")
        key = (replica.replica_id, regime)
        hit = self._kept_cache.get(key)
        if hit is not None and hit[0] is replica.placement:
            return hit[1]
        score = model_kept_mass(replica.placement, self.regimes[regime])
        self._kept_cache[key] = (replica.placement, score)
        return score

    def choose(
        self,
        request: FleetRequest,
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> Replica:
        self._check(replicas)
        regime = request.regime

        def score(r: Replica) -> float:
            return self.kept_mass(r, regime) - self.load_weight * r.load / r.max_batch

        # max score; ties broken toward the lighter replica, then id
        return max(replicas, key=lambda r: (score(r), -r.load, -r.replica_id))

    def choose_batch(
        self,
        requests: Sequence[FleetRequest],
        replicas: Sequence[Replica],
        rng: np.random.Generator,
    ) -> list[Replica]:
        self._check(replicas)
        loads = np.array([r.load for r in replicas], dtype=np.int64)
        ids = np.array([r.replica_id for r in replicas], dtype=np.int64)
        # the selection is frozen per regime across the snapshot, so score
        # each regime present in the batch once, not each request
        by_regime: dict[int, Replica] = {}
        chosen: list[Replica] = []
        for q in requests:
            hit = by_regime.get(q.regime)
            if hit is None:
                kept = np.array(
                    [self.kept_mass(r, q.regime) for r in replicas], dtype=np.float64
                )
                caps = np.array([r.max_batch for r in replicas], dtype=np.int64)
                scores = kept - (self.load_weight * loads) / caps
                hit = replicas[affinity_select(scores, loads, ids)]
                by_regime[q.regime] = hit
            chosen.append(hit)
        return chosen


def make_router(
    kind: str,
    regimes: Sequence[MarkovRoutingModel] | None = None,
    load_weight: float = 1.0,
) -> Router:
    """Build the router policy ``kind`` names (see :data:`ROUTER_KINDS`)."""
    if kind == "round-robin":
        return RoundRobinRouter()
    if kind == "jsq":
        return JoinShortestQueueRouter()
    if kind == "p2c":
        return PowerOfTwoRouter()
    if kind == "affinity":
        if regimes is None:
            raise ValueError("affinity routing requires the regime model list")
        return AffinityRouter(regimes, load_weight=load_weight)
    raise ValueError(f"unknown router {kind!r}; choose from {ROUTER_KINDS}")
