"""One model replica: a fully-priced cluster with queue and batch state.

A :class:`Replica` is a complete expert-parallel deployment — its own
placement (possibly fit to a different routing regime than its peers),
priced per decode step by the shared
:class:`~repro.engine.serving.PlacementStepTimer`, optionally running its
own PR-2 online re-placement loop.  The fleet simulator drives replicas
through an explicit lifecycle state machine::

    PENDING ──> BOOTING ──> RUNNING ──> DRAINING ──> STOPPED
       │           │           │            │
       │           └───────────┼────────────┼──> FAILED
       └── (t=0 replicas skip the boot) ────┘

``PENDING`` is the instant between construction and the first transition
(t=0 replicas go straight to ``RUNNING``; scaled-up and recovery replicas
go through ``BOOTING`` while the priced cold start elapses).  ``RUNNING``
is the only routable state.  ``DRAINING`` replicas (scale-down victims
and preemption-noticed spot replicas) finish queued work and receive
nothing new; a clean drain ends in ``STOPPED``.  ``FAILED`` is the chaos
subsystem's terminal state — a crash or an expired preemption grace
period — and loses whatever work was still on the replica.  Legal
transitions live in :data:`STATE_TRANSITIONS` and are enforced by
:meth:`Replica.transition_to`.

The replica owns per-priority wait queues (admission is FCFS *within* a
class, strict priority *across* classes) and the continuous-batching
active set; all timing decisions stay in the simulator, which is the only
place the clock lives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.core.online import OnlineReplacer
from repro.core.placement.base import Placement
from repro.fleet.requests import FleetRequest

__all__ = [
    "ReplicaState",
    "STATE_TRANSITIONS",
    "Replica",
    "ReplicaStats",
    "ActiveEntry",
    "ArrayQueue",
]

# EWMA smoothing for the observed step-time estimate admission control
# reads; one step contributes 25% so the estimate tracks load shifts within
# a few steps without flapping on a single expensive iteration
_STEP_EWMA_ALPHA = 0.25


class ReplicaState(str, Enum):
    PENDING = "pending"
    BOOTING = "booting"
    RUNNING = "running"
    # alias kept for call sites written before the lifecycle grew FAILED;
    # same member object, so `state is ReplicaState.RUNNING` still holds
    ACTIVE = "running"
    DRAINING = "draining"
    FAILED = "failed"
    STOPPED = "stopped"


#: Legal lifecycle moves.  FAILED and STOPPED are terminal.
STATE_TRANSITIONS: dict[ReplicaState, tuple[ReplicaState, ...]] = {
    ReplicaState.PENDING: (ReplicaState.BOOTING, ReplicaState.RUNNING),
    ReplicaState.BOOTING: (ReplicaState.RUNNING, ReplicaState.FAILED),
    ReplicaState.RUNNING: (ReplicaState.DRAINING, ReplicaState.FAILED),
    ReplicaState.DRAINING: (ReplicaState.STOPPED, ReplicaState.FAILED),
    ReplicaState.FAILED: (),
    ReplicaState.STOPPED: (),
}


class ArrayQueue:
    """Array-backed FIFO of request indices: one replica priority lane.

    The tick engine (:mod:`repro.fleet.engine`) keeps requests as rows of
    numpy arrays rather than objects, so its wait queues hold *indices*
    into those arrays.  This is the array counterpart of the ``deque``
    lanes a :class:`Replica` owns: O(1) amortized push, bulk pop of the
    ``k`` oldest entries as one slice, and a zero-copy :meth:`view` of the
    queued indices (which the autoscaler's regime census reads without
    draining anything).

    The buffer is kept contiguous (popped space is reclaimed by
    compacting on overflow, doubling only when actually full), so every
    read is a plain slice — no ring-buffer wraparound on the hot path.
    """

    __slots__ = ("_buf", "_head", "_tail")

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buf = np.empty(capacity, dtype=np.int64)
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def push(self, index: int) -> None:
        """Append one request index at the tail."""
        if self._tail == self._buf.shape[0]:
            live = self._buf[self._head : self._tail]
            if self._head == 0:  # genuinely full: double
                grown = np.empty(2 * self._buf.shape[0], dtype=np.int64)
                grown[: live.size] = live
                self._buf = grown
            else:  # reclaim popped space at the front
                self._buf[: live.size] = live
            self._tail = live.size
            self._head = 0
        self._buf[self._tail] = index
        self._tail += 1

    def pop_many(self, k: int) -> np.ndarray:
        """Remove and return (a copy of) the ``k`` oldest indices (FCFS)."""
        k = min(k, len(self))
        out = self._buf[self._head : self._head + k].copy()
        self._head += k
        return out

    def drain(self) -> np.ndarray:
        """Remove and return every queued index, oldest first."""
        return self.pop_many(len(self))

    def view(self) -> np.ndarray:
        """Zero-copy window over the queued indices (oldest first)."""
        return self._buf[self._head : self._tail]


class ActiveEntry:
    """Mutable per-request decode state inside a replica's batch."""

    __slots__ = ("request", "tokens_remaining", "admitted_s", "home_gpu", "generated")

    def __init__(self, request: FleetRequest, admitted_s: float, home_gpu: int) -> None:
        self.request = request
        self.tokens_remaining = request.generate_len
        self.admitted_s = admitted_s
        self.home_gpu = home_gpu
        self.generated = 0


@dataclass(frozen=True)
class ReplicaStats:
    """Final per-replica account reported in a fleet result."""

    replica_id: int
    regime: int
    final_state: str
    served: int
    decode_steps: int
    busy_s: float
    mean_batch_size: float
    replacements: int
    migration_stall_s: float
    booted_at_s: float
    stopped_at_s: float | None
    gpu_hours: float = 0.0
    #: busy fraction of the replica's routable lifetime (boot-ready →
    #: stop/sim-end), clamped to 1.0; 0.0 when the lifetime is empty
    utilization: float = 0.0


class Replica:
    """Queue + batch + placement state of one fleet member."""

    def __init__(
        self,
        replica_id: int,
        placement: Placement,
        regime: int,
        max_batch_requests: int,
        num_gpus: int,
        num_priorities: int = 2,
        state: ReplicaState = ReplicaState.RUNNING,
        booted_at_s: float = 0.0,
        replacer: OnlineReplacer | None = None,
        billed_from_s: float | None = None,
    ) -> None:
        if max_batch_requests <= 0:
            raise ValueError("max_batch_requests must be positive")
        if num_priorities < 1:
            raise ValueError("num_priorities must be >= 1")
        self.replica_id = replica_id
        self.placement = placement
        self.placement_version = 0
        self.regime = regime
        self.max_batch = max_batch_requests
        self.num_gpus = num_gpus
        # every replica is born PENDING and immediately moved to its first
        # real state through the transition table
        self.state = ReplicaState.PENDING
        self.transition_to(state)
        # bumped when a crash/preempt-kill cancels the in-flight step, so
        # the event engine can discard the stale step-end event on pop
        self.epoch = 0
        self.booted_at_s = booted_at_s
        # billing starts at the scale-up *decision* (the GPUs are reserved
        # while the replica boots), which precedes booted_at_s by the cold
        # start; for t=0 replicas the two coincide
        self.billed_from_s = booted_at_s if billed_from_s is None else billed_from_s
        self.stopped_at_s: float | None = None
        self.replacer = replacer

        self.queues: tuple[deque, ...] = tuple(deque() for _ in range(num_priorities))
        self.active: list[ActiveEntry] = []
        self.stepping = False

        self.steps = 0
        self.busy_s = 0.0
        self.weighted_batch = 0.0
        self.served = 0
        self.migration_stall_s = 0.0
        self.replacements = 0
        self.est_step_s: float | None = None
        self._admit_counter = 0

    # -- load accounting -------------------------------------------------------

    @property
    def queue_len(self) -> int:
        return sum(len(q) for q in self.queues)

    @property
    def load(self) -> int:
        """Requests on this replica (waiting + decoding) — the JSQ signal."""
        return self.queue_len + len(self.active)

    @property
    def routable(self) -> bool:
        return self.state is ReplicaState.RUNNING

    # -- lifecycle -------------------------------------------------------------

    def transition_to(self, state: ReplicaState) -> None:
        """Move to ``state``, enforcing :data:`STATE_TRANSITIONS`."""
        if state not in STATE_TRANSITIONS[self.state]:
            raise RuntimeError(
                f"illegal replica transition {self.state.value} -> {state.value}"
            )
        self.state = state

    # -- queue / batch transitions ---------------------------------------------

    def enqueue(self, request: FleetRequest) -> None:
        if self.state not in (ReplicaState.RUNNING, ReplicaState.DRAINING):
            raise RuntimeError(f"cannot enqueue on a {self.state.value} replica")
        pri = min(request.priority, len(self.queues) - 1)
        self.queues[pri].append(request)

    def admit_up_to_capacity(self, now: float) -> list[ActiveEntry]:
        """Move queued requests into the batch: priority order, FCFS within.

        Home GPUs round-robin over the replica's data-parallel ranks, as in
        the single-replica online loop.
        """
        admitted: list[ActiveEntry] = []
        for q in self.queues:
            while q and len(self.active) < self.max_batch:
                req = q.popleft()
                entry = ActiveEntry(req, now, self._admit_counter % self.num_gpus)
                self._admit_counter += 1
                self.active.append(entry)
                admitted.append(entry)
            if len(self.active) >= self.max_batch:
                break
        return admitted

    def admit_with_timeout(
        self, now: float, expired: Callable[[FleetRequest], bool]
    ) -> tuple[list[ActiveEntry], list[FleetRequest]]:
        """:meth:`admit_up_to_capacity`, dropping attempts that timed out.

        ``expired(request) -> bool`` is evaluated lazily as each request
        reaches the head of its lane; a timed-out request consumes no
        batch slot and is returned (pop order) for the caller to retry or
        record lost.  Used when the chaos retry policy sets a per-attempt
        timeout.
        """
        admitted: list[ActiveEntry] = []
        timed_out: list[FleetRequest] = []
        for q in self.queues:
            while q and len(self.active) < self.max_batch:
                req = q.popleft()
                if expired(req):
                    timed_out.append(req)
                    continue
                entry = ActiveEntry(req, now, self._admit_counter % self.num_gpus)
                self._admit_counter += 1
                self.active.append(entry)
                admitted.append(entry)
            if len(self.active) >= self.max_batch:
                break
        return admitted, timed_out

    def note_step(self, dt: float, batch_size: int) -> None:
        """Account one completed decode step of ``batch_size`` requests."""
        self.steps += 1
        self.busy_s += dt
        self.weighted_batch += batch_size * dt
        if self.est_step_s is None:
            self.est_step_s = dt
        else:
            self.est_step_s += _STEP_EWMA_ALPHA * (dt - self.est_step_s)

    def note_admission(self, dt: float) -> None:
        """Account the one-time admission charge (coherent prompt AllGather)."""
        self.busy_s += dt
        self.weighted_batch += len(self.active) * dt

    def take_queued(self) -> list[FleetRequest]:
        """Remove and return every queued (not yet admitted) request.

        Scale-down migration: the simulator hands these back to the router
        so they don't wait out the drain.  Priority order is preserved
        (class 0 first, FCFS within a class); the active decode batch is
        untouched.
        """
        taken: list[FleetRequest] = []
        for q in self.queues:
            taken.extend(q)
            q.clear()
        return taken

    @property
    def drained(self) -> bool:
        return not self.active and self.queue_len == 0

    def gpu_hours(self, end_s: float) -> float:
        """GPU-hours billed to this replica up to simulation time ``end_s``.

        The meter runs from the scale-up decision (``billed_from_s``)
        until the replica stops — or until ``end_s`` for replicas still
        live when the simulation ends.
        """
        stop = self.stopped_at_s if self.stopped_at_s is not None else end_s
        return max(0.0, stop - self.billed_from_s) * self.num_gpus / 3600.0

    def stats(self, end_s: float) -> ReplicaStats:
        # same expression as the tick engine's _stats_at, so the two
        # engines report bit-identical utilization
        stop = self.stopped_at_s if self.stopped_at_s is not None else end_s
        life_s = stop - self.booted_at_s
        return ReplicaStats(
            replica_id=self.replica_id,
            regime=self.regime,
            final_state=self.state.value,
            served=self.served,
            decode_steps=self.steps,
            busy_s=self.busy_s,
            mean_batch_size=self.weighted_batch / self.busy_s if self.busy_s > 0 else 0.0,
            replacements=self.replacements,
            migration_stall_s=self.migration_stall_s,
            booted_at_s=self.booted_at_s,
            stopped_at_s=self.stopped_at_s,
            gpu_hours=self.gpu_hours(end_s),
            utilization=min(1.0, self.busy_s / life_s) if life_s > 0 else 0.0,
        )
