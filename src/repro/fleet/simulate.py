"""Event-driven fleet serving: router + admission + autoscaler + replicas.

:func:`simulate_fleet_serving` composes the fleet pieces into one
discrete-event simulation.  Each replica runs the same continuous-batching
semantics as the single-replica online loop
(:func:`~repro.engine.serving.simulate_online_serving`): admissions happen
at step boundaries, every decode step is priced by a
:class:`~repro.engine.serving.PlacementStepTimer` from that step's sampled
routing under the replica's *current* placement, and coherent modes pay
the prompt AllGather at admission.  Above the replicas sit the router
(per-arrival placement/load decision), the admission controller
(SLO shedding at routing time) and, optionally, the reactive autoscaler
(periodic ticks that boot or drain replicas, cold starts priced through
:func:`~repro.fleet.autoscaler.price_cold_start`).

The event heap carries four event kinds — request arrival, replica step
completion, replica boot completion, autoscaler tick — with a sequence
counter as tie-break, so the simulation is deterministic given the rng.

:func:`simulate_fleet_cluster_serving` is the config-driven entry point
(the ``repro fleet`` CLI and the fig16 benchmark): it draws the regime
models, solves one placement per regime, labels arrivals with regimes and
priorities, and runs the loop.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    ModelConfig,
    ServingConfig,
)
from repro.core.online import OnlineReplacer, ReplacementPolicy
from repro.core.placement.base import Placement
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.deprecation import deprecated_entry_point
from repro.engine.costs import CostModel
from repro.engine.metrics import LatencyStats
from repro.engine.serving import PlacementStepTimer, Request, make_arrivals
from repro.fleet.admission import AdmissionController
from repro.fleet.autoscaler import ReactiveAutoscaler, ScaleEvent, price_cold_start
from repro.fleet.replica import Replica, ReplicaState, ReplicaStats
from repro.fleet.requests import FleetCompleted, FleetRequest, ShedRecord, make_fleet_requests
from repro.fleet.router import Router, make_router
from repro.trace.markov import MarkovRoutingModel

__all__ = ["FleetResult", "simulate_fleet_serving", "simulate_fleet_cluster_serving"]


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet serving simulation."""

    completed: tuple[FleetCompleted, ...]
    shed: tuple[ShedRecord, ...]
    latency: LatencyStats
    queue: LatencyStats
    makespan_s: float
    replicas: tuple[ReplicaStats, ...]
    scale_events: tuple[ScaleEvent, ...]
    slo_attainment: dict[str, float]
    peak_replicas: int = 0
    generated_tokens: int = 0
    #: GPU-hours billed across all replicas (scale-up decision → stop/end),
    #: and their price at ``ClusterConfig.gpu_hour_usd`` — the spend the
    #: autoscaler trades against p95
    gpu_hours: float = 0.0
    cost_usd: float = 0.0

    @property
    def served(self) -> int:
        return len(self.completed)

    @property
    def usd_per_million_tokens(self) -> float:
        """Unit economics: dollars per 1e6 generated tokens."""
        if self.generated_tokens <= 0:
            return 0.0
        return self.cost_usd / (self.generated_tokens / 1e6)

    @property
    def offered(self) -> int:
        return len(self.completed) + len(self.shed)

    @property
    def shed_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return len(self.shed) / self.offered

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def final_replicas(self) -> int:
        return sum(1 for r in self.replicas if r.final_state != ReplicaState.STOPPED.value)


def _sample_paths(
    entries: Sequence,
    regimes: Sequence[MarkovRoutingModel],
    rng: np.random.Generator,
    num_layers: int,
) -> np.ndarray:
    """One (B, L) path matrix: each request draws from its own regime.

    Grouped by regime so each regime model is sampled once per step;
    groups iterate in sorted regime order, keeping rng use deterministic.
    """
    paths = np.empty((len(entries), num_layers), dtype=np.int64)
    regs = np.array(
        [min(e.request.regime, len(regimes) - 1) for e in entries], dtype=np.int64
    )
    for k in np.unique(regs):
        idx = np.flatnonzero(regs == k)
        paths[idx] = regimes[int(k)].sample(int(idx.size), rng).paths
    return paths


def _simulate_fleet_serving(
    requests: Iterable[FleetRequest],
    model: ModelConfig,
    cluster: ClusterConfig,
    regimes: Sequence[MarkovRoutingModel],
    placements_by_regime: Sequence[Placement],
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    max_batch_requests: int = 64,
    router: Router | None = None,
    admission: AdmissionController | None = None,
    timer: PlacementStepTimer | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    dtype_bytes: int = 2,
    rng: np.random.Generator | None = None,
) -> FleetResult:
    """Serve ``requests`` on a fleet of replicas behind a router.

    ``placements_by_regime[k]`` is the affinity-optimized placement fit to
    ``regimes[k]``; initial replica ``i`` carries placement
    ``i % num_regimes`` (a heterogeneous fleet when ``num_regimes > 1``),
    and autoscaled replicas boot with the placement of the regime
    dominating the queued traffic at decision time.
    ``max_batch_requests`` is each replica's continuous-batching admission
    cap (the serving layer's knob, threaded through by the cluster entry
    point).  With ``fleet.replace`` on, each replica's re-placement loop
    uses ``replace_policy`` and a streaming estimator with
    ``replace_halflife_tokens`` (defaults when ``None``).
    """
    if max_batch_requests <= 0:
        raise ValueError("max_batch_requests must be positive")
    if len(regimes) != fleet.num_regimes:
        raise ValueError(
            f"fleet.num_regimes = {fleet.num_regimes} but {len(regimes)} regime models given"
        )
    if len(placements_by_regime) != len(regimes):
        raise ValueError("need exactly one placement per regime")
    for m in regimes:
        if m.num_experts != model.num_experts or m.num_layers != model.num_moe_layers:
            raise ValueError("regime model shape does not match model architecture")

    rng = rng or np.random.default_rng(0)
    router = router or make_router(
        fleet.router, regimes=regimes, load_weight=fleet.affinity_load_weight
    )
    admission = admission or AdmissionController.from_config(fleet)
    timer = timer or PlacementStepTimer(model, cluster, mode=mode, dtype_bytes=dtype_bytes)
    top2 = model.gating.k == 2
    g = cluster.num_gpus
    L = model.num_moe_layers
    num_priorities = len(admission.classes)

    reqs = sorted(requests, key=lambda q: (q.arrival_s, q.req_id))
    empty_stats = LatencyStats.from_samples([])
    if not reqs:
        return FleetResult((), (), empty_stats, empty_stats, 0.0, (), (), {})

    replicas: list[Replica] = []

    def new_replica(
        regime: int,
        state: ReplicaState,
        booted_at: float,
        billed_from: float | None = None,
    ) -> Replica:
        replacer = None
        if fleet.replace:
            # each replica gets its own replacer (and hence estimator):
            # every replica streams only its own traffic
            replacer = OnlineReplacer(
                model,
                cluster,
                policy=replace_policy or ReplacementPolicy(),
                halflife_tokens=replace_halflife_tokens,
                dtype_bytes=dtype_bytes,
                rng=np.random.default_rng(rng.integers(2**31)),
            )
        r = Replica(
            replica_id=len(replicas),
            placement=placements_by_regime[regime],
            regime=regime,
            max_batch_requests=max_batch_requests,
            num_gpus=g,
            num_priorities=num_priorities,
            state=state,
            booted_at_s=booted_at,
            replacer=replacer,
            billed_from_s=billed_from,
        )
        replicas.append(r)
        return r

    first_arrival = reqs[0].arrival_s
    for i in range(fleet.num_replicas):
        new_replica(i % len(regimes), ReplicaState.ACTIVE, first_arrival)

    autoscaler = ReactiveAutoscaler(fleet) if fleet.autoscale else None

    heap: list[tuple[float, int, str, object]] = []
    seq = itertools.count()

    def push(t: float, kind: str, data: object) -> None:
        heapq.heappush(heap, (t, next(seq), kind, data))

    for q in reqs:
        push(q.arrival_s, "arrival", q)
    if autoscaler is not None:
        push(first_arrival + fleet.autoscale_check_every_s, "scale", None)

    total = len(reqs)
    done = 0
    completed: list[FleetCompleted] = []
    shed: list[ShedRecord] = []
    scale_events: list[ScaleEvent] = []
    peak_routable = fleet.num_replicas

    def routable() -> list[Replica]:
        return [r for r in replicas if r.routable]

    def finish_if_drained(r: Replica, t: float) -> None:
        if r.state is ReplicaState.DRAINING and r.drained:
            r.state = ReplicaState.STOPPED
            r.stopped_at_s = t

    def start_step(r: Replica, t: float) -> None:
        """Admit at the boundary and launch one decode step (or go idle)."""
        newly = r.admit_up_to_capacity(t)
        if newly:
            adm = timer.admission_time(
                np.array([e.home_gpu for e in newly], dtype=np.int64),
                np.array([e.request.prompt_len for e in newly], dtype=np.int64),
            )
            if adm > 0:
                t += adm
                r.note_admission(adm)
        if not r.active:
            r.stepping = False
            finish_if_drained(r, t)
            return
        paths = _sample_paths(r.active, regimes, rng, L)
        secondary = _sample_paths(r.active, regimes, rng, L) if top2 else None
        if r.replacer is not None:
            r.replacer.observe(paths)
        home = np.array([e.home_gpu for e in r.active], dtype=np.int64)
        ctx = np.array(
            [e.request.prompt_len + e.generated for e in r.active], dtype=np.int64
        )
        dt = timer.step_time(paths, home, ctx, r.placement, secondary)
        if not dt > 0:
            raise ValueError(f"step_time must be positive seconds, got {dt}")
        r.stepping = True
        push(t + dt, "step", (r, dt))

    def on_arrival(q: FleetRequest, t: float) -> None:
        nonlocal done
        cands = routable()
        if not cands:
            # transient hole (every replica booting/draining); shed honestly
            # rather than queueing on a replica that may never come up
            shed.append(ShedRecord(q, t, "no-capacity", None))
            done += 1
            return
        r = router.choose(q, cands, rng)
        reason = admission.assess(q, r, t)
        if reason is not None:
            shed.append(ShedRecord(q, t, reason, r.replica_id))
            done += 1
            return
        r.enqueue(q)
        if not r.stepping:
            start_step(r, t)

    def on_step_end(r: Replica, dt: float, t: float) -> None:
        nonlocal done
        batch = len(r.active)
        r.note_step(dt, batch)
        still: list = []
        for e in r.active:
            e.tokens_remaining -= 1
            e.generated += 1
            if e.tokens_remaining == 0:
                completed.append(
                    FleetCompleted(e.request, e.admitted_s, t, r.replica_id)
                )
                r.served += 1
                done += 1
            else:
                still.append(e)
        r.active = still
        t_next = t
        if r.replacer is not None:
            result = r.replacer.maybe_replace(r.steps, t, r.placement)
            if result is not None:
                r.placement, event = result
                r.placement_version += 1
                r.replacements += 1
                r.migration_stall_s += event.stall_s
                t_next += event.stall_s
        start_step(r, t_next)

    def migrate_queued(victim: Replica, t: float) -> None:
        """Hand a draining replica's queued requests back to the router.

        The active decode batch finishes in place (KV state is not moved);
        queued-but-unadmitted requests are re-routed across the remaining
        routable replicas so they don't wait out the drain.  Re-routing
        skips latency-prediction shedding — these requests were already
        admitted once, and shedding them *because* the fleet is shrinking
        would be wrong — but it still honours the hard
        ``max_queue_per_replica`` cap: orphans that would overflow every
        surviving replica stay on the victim and drain normally.
        """
        orphans = victim.take_queued()
        if not orphans:
            return
        for q in orphans:
            # victim is already DRAINING, hence excluded from routable()
            targets = [
                r for r in routable() if r.queue_len < fleet.max_queue_per_replica
            ]
            if not targets:
                victim.enqueue(q)  # nowhere with room: drain it in place
                continue
            target = router.choose(q, targets, rng)
            target.enqueue(q)
            if not target.stepping:
                start_step(target, t)

    def on_scale(t: float) -> None:
        live = routable()
        booting = [r for r in replicas if r.state is ReplicaState.BOOTING]
        draining = [r for r in replicas if r.state is ReplicaState.DRAINING]
        # demand counts draining replicas' stranded queues too (they are
        # real pending work), capacity counts only replicas that can absorb
        queued = sum(r.queue_len for r in live + draining)
        decision = autoscaler.decide(queued, len(live), len(booting))
        per = autoscaler.last_queue_per_replica
        if decision == "up":
            # boot with the placement of the regime dominating queued work
            counts: Counter = Counter()
            for r in live + draining:
                for queue in r.queues:
                    counts.update(
                        min(q.regime, len(regimes) - 1) for q in queue
                    )
            regime = min(counts, key=lambda k: (-counts[k], k)) if counts else 0
            cold = price_cold_start(
                model,
                cluster,
                placements_by_regime[regime],
                dtype_bytes,
                fleet.boot_overhead_s,
            )
            r = new_replica(
                regime, ReplicaState.BOOTING, t + cold.total_s, billed_from=t
            )
            push(t + cold.total_s, "boot", r)
            scale_events.append(
                ScaleEvent(t, "up", per, len(live) + len(booting),
                           len(live) + len(booting) + 1, cold.total_s)
            )
        elif decision == "down":
            victim = min(live, key=lambda r: (r.load, r.replica_id))
            victim.state = ReplicaState.DRAINING
            if fleet.migrate_on_drain:
                migrate_queued(victim, t)
            finish_if_drained(victim, t)
            scale_events.append(
                ScaleEvent(t, "down", per, len(live) + len(booting),
                           len(live) + len(booting) - 1, 0.0)
            )
        if done < total:
            push(t + fleet.autoscale_check_every_s, "scale", None)

    while heap:
        t, _, kind, data = heapq.heappop(heap)
        if kind == "arrival":
            on_arrival(data, t)
        elif kind == "step":
            r, dt = data
            on_step_end(r, dt, t)
        elif kind == "boot":
            r = data
            r.state = ReplicaState.ACTIVE
            peak_routable = max(peak_routable, len(routable()))
        elif kind == "scale" and autoscaler is not None and done < total:
            on_scale(t)

    end_times = [c.finished_s for c in completed] + [s.time_s for s in shed]
    makespan = max(end_times) - first_arrival if end_times else 0.0
    sim_end = first_arrival + makespan
    gpu_hours = sum(r.gpu_hours(sim_end) for r in replicas)

    # per-class SLO attainment over *offered* traffic: shed = missed
    offered_by_class: Counter = Counter()
    met_by_class: Counter = Counter()
    for c in completed:
        name = admission.class_of(c.request).name
        offered_by_class[name] += 1
        if admission.slo_met(c.request, c.latency_s):
            met_by_class[name] += 1
    for s in shed:
        offered_by_class[admission.class_of(s.request).name] += 1
    attainment = {
        cls.name: (
            met_by_class[cls.name] / offered_by_class[cls.name]
            if offered_by_class[cls.name]
            else 1.0
        )
        for cls in admission.classes
    }

    return FleetResult(
        completed=tuple(completed),
        shed=tuple(shed),
        latency=LatencyStats.from_samples([c.latency_s for c in completed]),
        queue=LatencyStats.from_samples([c.queue_s for c in completed]),
        makespan_s=makespan,
        replicas=tuple(r.stats(sim_end) for r in replicas),
        scale_events=tuple(scale_events),
        slo_attainment=attainment,
        peak_replicas=peak_routable,
        generated_tokens=sum(c.request.generate_len for c in completed),
        gpu_hours=gpu_hours,
        cost_usd=gpu_hours * cluster.gpu_hour_usd,
    )


simulate_fleet_serving = deprecated_entry_point(
    "repro.run() with a fleet Scenario"
)(_simulate_fleet_serving)


def _simulate_fleet_cluster_serving(
    model: ModelConfig,
    cluster: ClusterConfig,
    serving: ServingConfig,
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    profile_tokens: int = 2048,
    arrivals: Sequence[Request] | None = None,
    regime_weight_at: Callable[[float], Sequence[float]] | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    cost_model: CostModel | None = None,
) -> FleetResult:
    """End-to-end fleet scenario from ``ServingConfig`` + ``FleetConfig``.

    Builds ``fleet.num_regimes`` independent Markov regimes of equal
    affinity strength, solves one placement per regime from an offline
    profile, labels the arrival stream with regimes (time-varying mix via
    ``regime_weight_at``) and priorities, and runs the event loop.

    Seed layout (all derived from ``serving.seed``, all disjoint —
    mirroring the single-replica online loop): arrivals use ``seed``,
    regime ``k``'s transition structure ``seed + 101*k`` (regime 0 matches
    the drift scenarios' base regime), offline profiles ``seed + 7 + k``,
    request labelling ``seed + 5``, and the live simulation stream
    ``seed + 9``.  Pass ``arrivals`` to substitute a custom process (e.g.
    :func:`~repro.fleet.requests.flash_crowd_arrivals`) for the built-in
    Poisson/bursty families.
    """
    regimes = [
        MarkovRoutingModel.with_affinity(
            model.num_experts,
            model.num_moe_layers,
            affinity,
            rng=np.random.default_rng(serving.seed + 101 * k),
        )
        for k in range(fleet.num_regimes)
    ]
    if mode.uses_affinity_placement:
        placements = [
            solve_placement(
                placement_strategy,
                regimes[k].sample(
                    profile_tokens, np.random.default_rng(serving.seed + 7 + k)
                ),
                cluster,
            )
            for k in range(fleet.num_regimes)
        ]
    else:
        flat = vanilla_placement(
            model.num_moe_layers, model.num_experts, cluster.num_gpus
        )
        placements = [flat for _ in range(fleet.num_regimes)]

    base = (
        list(arrivals)
        if arrivals is not None
        else make_arrivals(serving, np.random.default_rng(serving.seed))
    )
    labelled = make_fleet_requests(
        base,
        fleet,
        rng=np.random.default_rng(serving.seed + 5),
        regime_weight_at=regime_weight_at,
    )

    timer = PlacementStepTimer(model, cluster, mode=mode, cost_model=cost_model)
    return _simulate_fleet_serving(
        labelled,
        model,
        cluster,
        regimes,
        placements,
        fleet,
        mode=mode,
        max_batch_requests=serving.max_batch_requests,
        timer=timer,
        replace_policy=replace_policy,
        replace_halflife_tokens=replace_halflife_tokens,
        rng=np.random.default_rng(serving.seed + 9),
    )


simulate_fleet_cluster_serving = deprecated_entry_point(
    "repro.run() with a fleet Scenario"
)(_simulate_fleet_cluster_serving)
