"""Fleet serving entry points: engine dispatch + config-driven scenario.

The fleet simulation exists twice, by design:

* :mod:`repro.fleet.reference` — the original event-heap loop, one event
  popped and processed at a time.  Slow, obvious, and the correctness
  oracle (``engine="event"``).
* :mod:`repro.fleet.engine` — the vectorized tick engine: array state,
  windowed arrival batches, the same events in the same order
  (``engine="tick"``).  Bit-identical results, built for million-request
  days (``tests/test_fleet_equivalence.py`` enforces the former,
  ``benchmarks/bench_fleet_scale.py`` measures the latter).

:func:`_simulate_fleet_serving` dispatches on ``FleetConfig.engine``;
:func:`_simulate_fleet_cluster_serving` is the config-driven entry point
(the ``repro fleet`` CLI and the fig16 benchmark): it draws the regime
models, solves one placement per regime, labels arrivals with regimes and
priorities, and runs the selected engine.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    ModelConfig,
    ServingConfig,
)
from repro.core.online import ReplacementPolicy
from repro.core.placement.base import Placement
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.deprecation import deprecated_entry_point
from repro.engine.costs import CostModel
from repro.engine.serving import PlacementStepTimer, Request, make_arrivals
from repro.fleet.admission import AdmissionController
from repro.fleet.engine import simulate_fleet_tick
from repro.fleet.reference import simulate_fleet_reference
from repro.fleet.requests import FleetRequest, make_fleet_requests
from repro.fleet.result import FleetResult
from repro.fleet.router import Router
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import MetricsRecorder
from repro.trace.markov import MarkovRoutingModel

__all__ = ["FleetResult", "simulate_fleet_serving", "simulate_fleet_cluster_serving"]


def _simulate_fleet_serving(
    requests: Iterable[FleetRequest],
    model: ModelConfig,
    cluster: ClusterConfig,
    regimes: Sequence[MarkovRoutingModel],
    placements_by_regime: Sequence[Placement],
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    max_batch_requests: int = 64,
    router: Router | None = None,
    admission: AdmissionController | None = None,
    timer: PlacementStepTimer | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    dtype_bytes: int = 2,
    rng: np.random.Generator | None = None,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> FleetResult:
    """Serve ``requests`` on a fleet of replicas behind a router.

    ``placements_by_regime[k]`` is the affinity-optimized placement fit to
    ``regimes[k]``; initial replica ``i`` carries placement
    ``i % num_regimes`` (a heterogeneous fleet when ``num_regimes > 1``),
    and autoscaled replicas boot with the placement of the regime
    dominating the queued traffic at decision time.
    ``max_batch_requests`` is each replica's continuous-batching admission
    cap (the serving layer's knob, threaded through by the cluster entry
    point).  With ``fleet.replace`` on, each replica's re-placement loop
    uses ``replace_policy`` and a streaming estimator with
    ``replace_halflife_tokens`` (defaults when ``None``).

    ``fleet.engine`` selects the execution strategy — ``"event"`` for the
    heap oracle, ``"tick"`` for the vectorized engine; both return the
    same :class:`~repro.fleet.result.FleetResult`, bit for bit.
    """
    run = simulate_fleet_tick if fleet.engine == "tick" else simulate_fleet_reference
    return run(
        requests,
        model,
        cluster,
        regimes,
        placements_by_regime,
        fleet,
        mode=mode,
        max_batch_requests=max_batch_requests,
        router=router,
        admission=admission,
        timer=timer,
        replace_policy=replace_policy,
        replace_halflife_tokens=replace_halflife_tokens,
        dtype_bytes=dtype_bytes,
        rng=rng,
        recorder=recorder,
        profiler=profiler,
    )


simulate_fleet_serving = deprecated_entry_point(
    "repro.run() with a fleet Scenario"
)(_simulate_fleet_serving)


def _simulate_fleet_cluster_serving(
    model: ModelConfig,
    cluster: ClusterConfig,
    serving: ServingConfig,
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    profile_tokens: int = 2048,
    arrivals: Sequence[Request] | None = None,
    regime_weight_at: Callable[[float], Sequence[float]] | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    cost_model: CostModel | None = None,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> FleetResult:
    """End-to-end fleet scenario from ``ServingConfig`` + ``FleetConfig``.

    Builds ``fleet.num_regimes`` independent Markov regimes of equal
    affinity strength, solves one placement per regime from an offline
    profile, labels the arrival stream with regimes (time-varying mix via
    ``regime_weight_at``) and priorities, and runs the engine
    ``fleet.engine`` selects.

    Seed layout (all derived from ``serving.seed``, all disjoint —
    mirroring the single-replica online loop): arrivals use ``seed``,
    regime ``k``'s transition structure ``seed + 101*k`` (regime 0 matches
    the drift scenarios' base regime), offline profiles ``seed + 7 + k``,
    request labelling ``seed + 5``, and the live simulation stream
    ``seed + 9``.  Pass ``arrivals`` to substitute a custom process (e.g.
    :func:`~repro.fleet.requests.flash_crowd_arrivals`) for the built-in
    Poisson/bursty families.
    """
    regimes = [
        MarkovRoutingModel.with_affinity(
            model.num_experts,
            model.num_moe_layers,
            affinity,
            rng=np.random.default_rng(serving.seed + 101 * k),
        )
        for k in range(fleet.num_regimes)
    ]
    if mode.uses_affinity_placement:
        placements = [
            solve_placement(
                placement_strategy,
                regimes[k].sample(
                    profile_tokens, np.random.default_rng(serving.seed + 7 + k)
                ),
                cluster,
            )
            for k in range(fleet.num_regimes)
        ]
    else:
        flat = vanilla_placement(
            model.num_moe_layers, model.num_experts, cluster.num_gpus
        )
        placements = [flat for _ in range(fleet.num_regimes)]

    base = (
        list(arrivals)
        if arrivals is not None
        else make_arrivals(serving, np.random.default_rng(serving.seed))
    )
    labelled = make_fleet_requests(
        base,
        fleet,
        rng=np.random.default_rng(serving.seed + 5),
        regime_weight_at=regime_weight_at,
    )

    timer = PlacementStepTimer(model, cluster, mode=mode, cost_model=cost_model)
    return _simulate_fleet_serving(
        labelled,
        model,
        cluster,
        regimes,
        placements,
        fleet,
        mode=mode,
        max_batch_requests=serving.max_batch_requests,
        timer=timer,
        replace_policy=replace_policy,
        replace_halflife_tokens=replace_halflife_tokens,
        rng=np.random.default_rng(serving.seed + 9),
        recorder=recorder,
        profiler=profiler,
    )


simulate_fleet_cluster_serving = deprecated_entry_point(
    "repro.run() with a fleet Scenario"
)(_simulate_fleet_cluster_serving)
