"""Shared fleet-simulation result type and engine-agnostic helpers.

Both fleet engines — the event-heap reference oracle
(:mod:`repro.fleet.reference`) and the vectorized tick engine
(:mod:`repro.fleet.engine`) — must produce *bit-identical*
:class:`FleetResult` values on identical inputs.  Everything that feeds
floating-point arithmetic or the shared rng stream therefore lives here,
written once and called by both:

* :func:`sample_paths_grouped` — the per-step routing-path draw, grouped
  by regime in sorted order so rng consumption depends only on the batch's
  regime multiset;
* :func:`validate_fleet_inputs` — argument checking, including the
  regime-id range check (out-of-range regimes raise instead of silently
  clamping to the last regime);
* :func:`finalize_fleet_result` — the result epilogue (makespan, latency
  percentiles, per-class SLO attainment over offered traffic, GPU-hour
  billing), identical accumulation order for both engines;
* :class:`FleetObs` — the one telemetry adapter both engines drive.  Each
  lifecycle hook has a single definition here, so the two engines cannot
  diverge in what they report: attach the same recorder to an oracle run
  and a tick run and the recorded timelines are identical, event for
  event.  Hooks are observation-only — they never draw rng samples or
  perturb simulated floats.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import ClusterConfig, FleetConfig, ModelConfig
from repro.engine.metrics import LatencyStats
from repro.fleet.admission import AdmissionController
from repro.fleet.autoscaler import ScaleEvent
from repro.fleet.replica import ReplicaState, ReplicaStats
from repro.fleet.requests import (
    FailureRecord,
    FleetCompleted,
    FleetRequest,
    LostRecord,
    ShedRecord,
)
from repro.obs.recorder import MetricsRecorder
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "FleetResult",
    "FleetObs",
    "sample_paths_grouped",
    "validate_fleet_inputs",
    "finalize_fleet_result",
]


class FleetObs:
    """Telemetry hook adapter shared verbatim by both fleet engines.

    Engines hold ``obs: FleetObs | None`` and guard every call with
    ``if obs is not None`` — with no recorder attached the simulators pay
    nothing.  The adapter translates engine state into the primitive
    :class:`repro.obs.recorder.MetricsRecorder` hook arguments in exactly
    one place, which is what keeps the oracle and the tick engine's
    recorded streams identical (the equivalence suite asserts it).
    """

    __slots__ = ("rec",)

    def __init__(self, rec: MetricsRecorder) -> None:
        self.rec = rec

    def run_start(self, first_arrival: float, cluster: ClusterConfig) -> None:
        self.rec.on_run_start(
            first_arrival,
            {"num_gpus": float(cluster.num_gpus), "gpu_hour_usd": float(cluster.gpu_hour_usd)},
        )

    def replica_start(
        self, t: float, rid: int, regime: int, booting: bool, ready_s: float, billed_from_s: float
    ) -> None:
        self.rec.on_replica_start(t, rid, regime, booting, ready_s, billed_from_s)

    def boot_ready(self, t: float, rid: int) -> None:
        self.rec.on_boot_ready(t, rid)

    def drain(self, t: float, rid: int) -> None:
        self.rec.on_drain(t, rid)

    def stop(self, t: float, rid: int) -> None:
        self.rec.on_stop(t, rid)

    def enqueue(self, t: float, rid: int, req_id: int) -> None:
        self.rec.on_enqueue(t, rid, req_id)

    def requeue(self, t: float, rid: int, count: int) -> None:
        self.rec.on_requeue(t, rid, count)

    def shed(self, t: float, req_id: int, rid: int | None, reason: str) -> None:
        self.rec.on_shed(t, req_id, rid, reason)

    def admit(self, t: float, rid: int, req_ids: Sequence[int], admission_s: float) -> None:
        self.rec.on_admit(t, rid, req_ids, admission_s)

    def step_end(self, t: float, rid: int, step_s: float, batch: int) -> None:
        self.rec.on_step_end(t, rid, step_s, batch)

    def complete(
        self, t: float, rid: int, req_id: int, arrival_s: float, admitted_s: float, tokens: int
    ) -> None:
        self.rec.on_complete(t, rid, req_id, arrival_s, admitted_s, tokens)

    def scale(
        self,
        t: float,
        direction: str,
        queue_per_replica: float,
        replicas_before: int,
        replicas_after: int,
        cold_start_s: float,
    ) -> None:
        self.rec.on_scale(
            t, direction, queue_per_replica, replicas_before, replicas_after, cold_start_s
        )

    # -- chaos hooks -----------------------------------------------------------

    def preempt(self, t: float, rid: int, grace_s: float) -> None:
        self.rec.on_preempt(t, rid, grace_s)

    def fail(self, t: float, rid: int, kind: str, lost_active: int, lost_queued: int) -> None:
        self.rec.on_fail(t, rid, kind, lost_active, lost_queued)

    def retry(
        self, t: float, req_id: int, rid: int, attempt: int, delay_s: float, was_active: bool
    ) -> None:
        self.rec.on_retry(t, req_id, rid, attempt, delay_s, was_active)

    def lost(
        self, t: float, req_id: int, rid: int, attempts: int, reason: str, was_active: bool
    ) -> None:
        self.rec.on_lost(t, req_id, rid, attempts, reason, was_active)

    def recover(self, t: float, rid: int, for_rid: int, cold_start_s: float) -> None:
        self.rec.on_recover(t, rid, for_rid, cold_start_s)

    def run_end(self, sim_end: float) -> None:
        self.rec.on_run_end(sim_end)


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet serving simulation."""

    completed: tuple[FleetCompleted, ...]
    shed: tuple[ShedRecord, ...]
    latency: LatencyStats
    queue: LatencyStats
    makespan_s: float
    replicas: tuple[ReplicaStats, ...]
    scale_events: tuple[ScaleEvent, ...]
    slo_attainment: dict[str, float]
    peak_replicas: int = 0
    generated_tokens: int = 0
    #: GPU-hours billed across all replicas (scale-up decision → stop/end),
    #: and their price at ``ClusterConfig.gpu_hour_usd`` — the spend the
    #: autoscaler trades against p95
    gpu_hours: float = 0.0
    cost_usd: float = 0.0
    # chaos account: injected replica failures, requests destroyed after
    # exhausting their retry budget, total retry re-admissions, and the
    # completions that met their class SLO (the goodput numerator)
    failures: tuple[FailureRecord, ...] = ()
    lost: tuple[LostRecord, ...] = ()
    retries: int = 0
    slo_met: int = 0

    @property
    def served(self) -> int:
        return len(self.completed)

    @property
    def usd_per_million_tokens(self) -> float:
        """Unit economics: dollars per 1e6 generated tokens."""
        if self.generated_tokens <= 0:
            return 0.0
        return self.cost_usd / (self.generated_tokens / 1e6)

    @property
    def offered(self) -> int:
        return len(self.completed) + len(self.shed) + len(self.lost)

    @property
    def shed_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return len(self.shed) / self.offered

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed (1.0 on zero offered)."""
        if self.offered == 0:
            return 1.0
        return self.served / self.offered

    @property
    def goodput_rps(self) -> float:
        """Completions that met their class SLO, per second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.slo_met / self.makespan_s

    @property
    def mean_time_to_recover_s(self) -> float:
        """Mean failure → replacement-routable span over recovered failures.

        0.0 when nothing failed or nothing recovered — callers must check
        ``failures`` before reading meaning into the zero.
        """
        spans = [
            f.recovered_at_s - f.time_s
            for f in self.failures
            if f.recovered_at_s is not None
        ]
        if not spans:
            return 0.0
        return sum(spans) / len(spans)

    @property
    def final_replicas(self) -> int:
        return sum(1 for r in self.replicas if r.final_state != ReplicaState.STOPPED.value)


def sample_paths_grouped(
    regs: np.ndarray,
    regimes: Sequence[MarkovRoutingModel],
    rng: np.random.Generator,
    num_layers: int,
) -> np.ndarray:
    """One (B, L) path matrix: each request draws from its own regime.

    Grouped by regime so each regime model is sampled once per step;
    groups iterate in sorted regime order, keeping rng use deterministic
    (it depends only on the batch's regime multiset, not its order).
    """
    paths = np.empty((regs.size, num_layers), dtype=np.int64)
    for k in np.unique(regs):
        idx = np.flatnonzero(regs == k)
        paths[idx] = regimes[int(k)].sample(int(idx.size), rng).paths
    return paths


def validate_fleet_inputs(
    reqs: Sequence[FleetRequest],
    model: ModelConfig,
    regimes: Sequence[MarkovRoutingModel],
    placements_by_regime: Sequence[object],
    fleet: FleetConfig,
    max_batch_requests: int,
) -> None:
    """Shared argument checking for both fleet engines.

    Regime ids are validated here — a request labelled with a regime the
    fleet does not model is a configuration error, not traffic to be
    silently folded onto the last regime.
    """
    if max_batch_requests <= 0:
        raise ValueError("max_batch_requests must be positive")
    if len(regimes) != fleet.num_regimes:
        raise ValueError(
            f"fleet.num_regimes = {fleet.num_regimes} but {len(regimes)} regime models given"
        )
    if len(placements_by_regime) != len(regimes):
        raise ValueError("need exactly one placement per regime")
    for m in regimes:
        if m.num_experts != model.num_experts or m.num_layers != model.num_moe_layers:
            raise ValueError("regime model shape does not match model architecture")
    k = len(regimes)
    for q in reqs:
        if q.regime >= k:
            raise ValueError(
                f"request {q.req_id} has regime {q.regime}, but the fleet models "
                f"only regimes 0..{k - 1}"
            )


def finalize_fleet_result(
    completed: list[FleetCompleted],
    shed: list[ShedRecord],
    first_arrival: float,
    stats_at: Callable[[float], tuple[ReplicaStats, ...]],
    scale_events: list[ScaleEvent],
    admission: AdmissionController,
    peak_routable: int,
    cluster: ClusterConfig,
    obs: FleetObs | None = None,
    failures: Sequence[FailureRecord] = (),
    lost: Sequence[LostRecord] = (),
    retries: int = 0,
) -> FleetResult:
    """Assemble the :class:`FleetResult` epilogue shared by both engines.

    ``stats_at(sim_end)`` returns the per-replica accounts frozen at the
    simulation end time (which depends on the makespan, computed here).
    Every accumulation below iterates in a deterministic order so the two
    engines cannot diverge in float rounding.
    """
    end_times = (
        [c.finished_s for c in completed]
        + [s.time_s for s in shed]
        + [loss.time_s for loss in lost]
    )
    makespan = max(end_times) - first_arrival if end_times else 0.0
    sim_end = first_arrival + makespan
    if obs is not None:
        obs.run_end(sim_end)
    replica_stats = stats_at(sim_end)
    gpu_hours = sum(s.gpu_hours for s in replica_stats)

    # per-class SLO attainment over *offered* traffic: shed/lost = missed
    offered_by_class: Counter[str] = Counter()
    met_by_class: Counter[str] = Counter()
    for c in completed:
        name = admission.class_of(c.request).name
        offered_by_class[name] += 1
        if admission.slo_met(c.request, c.latency_s):
            met_by_class[name] += 1
    for s in shed:
        offered_by_class[admission.class_of(s.request).name] += 1
    for loss in lost:
        offered_by_class[admission.class_of(loss.request).name] += 1
    attainment = {
        cls.name: (
            met_by_class[cls.name] / offered_by_class[cls.name]
            if offered_by_class[cls.name]
            else 1.0
        )
        for cls in admission.classes
    }

    return FleetResult(
        completed=tuple(completed),
        shed=tuple(shed),
        latency=LatencyStats.from_samples([c.latency_s for c in completed]),
        queue=LatencyStats.from_samples([c.queue_s for c in completed]),
        makespan_s=makespan,
        replicas=replica_stats,
        scale_events=tuple(scale_events),
        slo_attainment=attainment,
        peak_replicas=peak_routable,
        generated_tokens=sum(c.request.generate_len for c in completed),
        gpu_hours=gpu_hours,
        cost_usd=gpu_hours * cluster.gpu_hour_usd,
        failures=tuple(failures),
        lost=tuple(lost),
        retries=retries,
        slo_met=sum(met_by_class.values()),
    )
