"""Reactive autoscaling on queue depth, with an explicit cold-start price.

The scaling signal is queued-requests-per-routable-replica — the quantity
admission control is already fighting: when it stays above
``scale_up_queue_per_replica`` for ``scale_dwell_checks`` consecutive
ticks, a replica boots; when it stays below the scale-down threshold the
least-loaded replica drains.  Dwell counts are the hysteresis that keeps a
single bursty tick from thrashing the fleet.

Scaling up is not free, and the cost model is the point: a booting replica
pays

1. **weight load** — every GPU pulls its expert shard
   (``experts_per_gpu x num_moe_layers x expert_bytes``) from the
   checkpoint store over the inter-node link (alpha-beta transfer; pulls
   run in parallel across GPUs, so the wall time is one shard's transfer);
2. **placement shuffle** — checkpoints are stored rank-contiguous
   (the vanilla layout), so reaching the replica's affinity-optimized
   placement costs exactly :func:`~repro.core.online.plan_migration`
   from vanilla to the target — the same cost model serving migrations pay;
3. a fixed ``boot_overhead_s`` for everything the simulation does not
   model (process spawn, CUDA context, allocator warm-up).

During that window the new replica absorbs nothing — which is exactly why
a reactive policy must trigger early enough, and what the fig16 flash
crowd benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, FleetConfig, ModelConfig
from repro.core.online import plan_migration
from repro.core.placement.base import Placement
from repro.core.placement.vanilla import vanilla_placement

__all__ = ["ColdStartCost", "price_cold_start", "ScaleEvent", "ReactiveAutoscaler"]


@dataclass(frozen=True)
class ColdStartCost:
    """Seconds from scale-up decision to a servable replica."""

    weight_load_s: float
    placement_shuffle_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.weight_load_s + self.placement_shuffle_s + self.overhead_s


def price_cold_start(
    model: ModelConfig,
    cluster: ClusterConfig,
    placement: Placement,
    dtype_bytes: int = 2,
    boot_overhead_s: float = 0.0,
) -> ColdStartCost:
    """Price booting one replica that will serve ``placement``."""
    if boot_overhead_s < 0:
        raise ValueError("boot_overhead_s must be >= 0")
    per_gpu = cluster.experts_per_gpu(model.num_experts)
    shard_bytes = per_gpu * model.num_moe_layers * model.expert_bytes(dtype_bytes)
    weight_load_s = cluster.inter_link.transfer_time(shard_bytes)
    contiguous = vanilla_placement(
        model.num_moe_layers, model.num_experts, cluster.num_gpus
    )
    shuffle = plan_migration(contiguous, placement, cluster, model, dtype_bytes)
    return ColdStartCost(
        weight_load_s=float(weight_load_s),
        placement_shuffle_s=shuffle.stall_s,
        overhead_s=boot_overhead_s,
    )


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action on the fleet timeline."""

    time_s: float
    kind: str  # "up" | "down"
    queue_per_replica: float
    replicas_before: int
    replicas_after: int
    cold_start_s: float = 0.0


class ReactiveAutoscaler:
    """Queue-depth trigger with dwell-count hysteresis.

    :meth:`decide` is called on a fixed cadence with the current fleet
    view and returns ``"up"``, ``"down"`` or ``None``.  Booting replicas
    count toward capacity for the *up* decision (their arrival is already
    scheduled — scaling again would overshoot) but a pending boot blocks
    scale-down entirely (the two actions contradict).
    """

    def __init__(self, fleet: FleetConfig) -> None:
        self.fleet = fleet
        self._over = 0
        self._under = 0
        #: queue-per-replica the most recent decide() call acted on —
        #: the single source of truth for scale-event logging
        self.last_queue_per_replica = 0.0

    def decide(self, queued: int, live: int, booting: int) -> str | None:
        """One tick: ``queued`` waiting requests, ``live`` routable replicas,
        ``booting`` replicas already paying cold start."""
        cfg = self.fleet
        per = queued / max(1, live + booting)
        self.last_queue_per_replica = per
        if per > cfg.scale_up_queue_per_replica:
            self._over += 1
            self._under = 0
        elif per < cfg.scale_down_queue_per_replica:
            self._under += 1
            self._over = 0
        else:
            self._over = 0
            self._under = 0

        if (
            self._over >= cfg.scale_dwell_checks
            and live + booting < cfg.max_replicas
        ):
            self._over = 0
            return "up"
        if (
            self._under >= cfg.scale_dwell_checks
            and booting == 0
            and live > cfg.min_replicas
        ):
            self._under = 0
            return "down"
        return None

    def decide_from_depths(
        self, queue_depths: np.ndarray, live: int, booting: int
    ) -> str | None:
        """One tick from per-replica queue depths (the tick engine's view).

        ``queue_depths`` holds the wait-queue length of every replica
        whose backlog counts as demand (routable + draining); the trigger
        aggregates it here so the engine hands over its array state
        unsummed.
        """
        return self.decide(int(queue_depths.sum()), live, booting)
