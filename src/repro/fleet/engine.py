"""Vectorized tick-driven fleet engine: batch event processing per tick.

Same simulation as the event-heap oracle (:mod:`repro.fleet.reference`),
rebuilt for million-request fleets.  The oracle pops one heap event at a
time and walks Python objects per arrival; at 1M+ requests and 128
replicas that interpreter loop dominates wall time.  This engine keeps
the *simulated* semantics identical while changing the *host* execution
model:

* **Array state.**  Requests live as rows of parallel numpy arrays
  (arrival time, generate length, regime, priority lane, SLO); per-replica
  state (queue depth, load, EWMA step estimate, next-step deadline) is a
  column per replica; the in-flight decode batches are one
  ``(replica, slot)`` matrix per field.  Wait queues hold request *indices*
  in :class:`~repro.fleet.replica.ArrayQueue` lanes.
* **Windowed arrivals.**  Arrivals are pre-sorted, so instead of a heap
  the engine keeps a cursor and processes every arrival before the next
  replica event (step end, boot, autoscale tick) as one window — routing
  decisions and admission shedding evaluate as array operations over the
  whole window (:func:`~repro.fleet.router.jsq_select` and friends,
  :meth:`~repro.fleet.admission.AdmissionController.assess_codes`).
  Within a window replica state is frozen: sheds mutate nothing, so they
  batch; the first admission mutates load (and may wake an idle replica,
  creating an event inside the window), so the window re-opens there.
* **Event-order mirroring.**  The oracle breaks time ties by heap push
  sequence.  The engine assigns the same sequence numbers to the same
  pushes (arrivals are seqs ``0..N-1``, every dynamic event takes the
  next counter value) and selects the minimum ``(time, seq)`` event, so
  even exact ties resolve identically.
* **Shared kernels.**  Everything that touches the rng stream or float
  accumulation — grouped path sampling, step timing, admission formulas,
  router scoring, the result epilogue — is either shared code
  (:mod:`repro.fleet.result`) or mirrors the scalar expression order
  operation for operation.

``tests/test_fleet_equivalence.py`` holds this engine to the oracle's
exact :class:`~repro.fleet.result.FleetResult`; the three object-routing
policies (round-robin, jsq, affinity) take the fully vectorized window
path, while p2c keeps a tight per-arrival loop (its two uniform draws per
decision are part of the simulated semantics and cannot batch).

Custom :class:`~repro.fleet.router.Router` subclasses and
:class:`~repro.fleet.admission.AdmissionController` subclasses have no
array form, so the tick engine rejects them — use ``engine="event"``.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.chaos.schedule import brownout_factor
from repro.chaos.spec import PreemptSpec
from repro.config import ClusterConfig, ExecutionMode, FleetConfig, ModelConfig
from repro.core.online import OnlineReplacer, ReplacementPolicy, model_kept_mass
from repro.core.placement.base import Placement
from repro.engine.metrics import LatencyStats
from repro.engine.serving import PlacementStepTimer
from repro.fleet.admission import ADMIT, SHED_REASONS, AdmissionController
from repro.fleet.autoscaler import ReactiveAutoscaler, ScaleEvent, price_cold_start
from repro.fleet.replica import _STEP_EWMA_ALPHA, ArrayQueue, ReplicaState, ReplicaStats
from repro.fleet.requests import (
    FailureRecord,
    FleetCompleted,
    FleetRequest,
    LostRecord,
    ShedRecord,
)
from repro.fleet.result import (
    FleetObs,
    FleetResult,
    finalize_fleet_result,
    sample_paths_grouped,
    validate_fleet_inputs,
)
from repro.fleet.router import (
    AffinityRouter,
    JoinShortestQueueRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    Router,
    affinity_select,
    jsq_select,
    make_router,
    p2c_select,
    rr_positions,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import MetricsRecorder
from repro.trace.markov import MarkovRoutingModel

__all__ = ["simulate_fleet_tick"]

_INF = math.inf

# replica states as int8 codes (column ``state``); order mirrors the
# PENDING → BOOTING → RUNNING → DRAINING → FAILED/STOPPED lifecycle
_PENDING, _BOOTING, _RUNNING, _DRAINING, _FAILED, _STOPPED = 0, 1, 2, 3, 4, 5
_STATE_VALUES = (
    ReplicaState.PENDING.value,
    ReplicaState.BOOTING.value,
    ReplicaState.RUNNING.value,
    ReplicaState.DRAINING.value,
    ReplicaState.FAILED.value,
    ReplicaState.STOPPED.value,
)

# dynamic event kinds competing with the arrival cursor
_EV_STEP, _EV_BOOT, _EV_SCALE, _EV_CHAOS, _EV_NONE = 0, 1, 2, 3, 4

# chaos event codes inside the pending heap (payload discriminator)
_CH_CRASH, _CH_PREEMPT, _CH_KILL, _CH_RETRY = 0, 1, 2, 3


class _TickFleet:
    """All mutable simulation state of one tick-engine run."""

    def __init__(
        self,
        reqs: list[FleetRequest],
        model: ModelConfig,
        cluster: ClusterConfig,
        regimes: Sequence[MarkovRoutingModel],
        placements_by_regime: Sequence[Placement],
        fleet: FleetConfig,
        max_batch_requests: int,
        router: Router,
        admission: AdmissionController,
        timer: PlacementStepTimer,
        replace_policy: ReplacementPolicy | None,
        replace_halflife_tokens: float | None,
        dtype_bytes: int,
        rng: np.random.Generator,
        recorder: MetricsRecorder | None = None,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.regimes = regimes
        self.placements_by_regime = placements_by_regime
        self.fleet = fleet
        self.max_batch = max_batch_requests
        self.router = router
        self.admission = admission
        self.timer = timer
        self.replace_policy = replace_policy
        self.replace_halflife = replace_halflife_tokens
        self.dtype_bytes = dtype_bytes
        self.rng = rng
        self.top2 = model.gating.k == 2
        self.g = cluster.num_gpus
        self.L = model.num_moe_layers
        self.num_lanes = len(admission.classes)

        if isinstance(router, RoundRobinRouter):
            self.policy = "round-robin"
        elif isinstance(router, JoinShortestQueueRouter):
            self.policy = "jsq"
        elif isinstance(router, PowerOfTwoRouter):
            self.policy = "p2c"
        else:
            self.policy = "affinity"
        if isinstance(router, AffinityRouter):
            self.aff_regimes: tuple[MarkovRoutingModel, ...] = router.regimes
            self.load_weight = router.load_weight
            if len(self.aff_regimes) < len(regimes):
                raise ValueError(
                    "affinity router models fewer regimes than the fleet serves"
                )
        else:
            self.aff_regimes = ()
            self.load_weight = 0.0
        # kept-mass rows per placement object (identity-keyed; storing the
        # placement keeps it alive so ids cannot be recycled)
        self._kept_cache: dict[int, tuple[Placement, np.ndarray]] = {}

        # -- request columns (sorted by (arrival_s, req_id) upstream) ----------
        self.reqs = reqs
        self.total = len(reqs)
        self.arr_t = np.array([q.arrival_s for q in reqs], dtype=np.float64)
        self.gen_len = np.array([q.generate_len for q in reqs], dtype=np.int64)
        self.prompt = np.array([q.prompt_len for q in reqs], dtype=np.int64)
        self.reg = np.array([q.regime for q in reqs], dtype=np.int64)
        pri = np.array([q.priority for q in reqs], dtype=np.int64)
        self.lane = np.minimum(pri, self.num_lanes - 1)
        self.slo = admission.slo_by_priority(pri)

        # -- replica columns ---------------------------------------------------
        cap = max(4, fleet.num_replicas)
        self.cap = cap
        self.num_replicas = 0
        self.state = np.full(cap, _STOPPED, dtype=np.int8)
        self.regime_of = np.zeros(cap, dtype=np.int64)
        self.booted_at = np.zeros(cap, dtype=np.float64)
        self.billed_from = np.zeros(cap, dtype=np.float64)
        self.stopped_at = np.full(cap, np.nan, dtype=np.float64)
        self.est_step = np.full(cap, np.nan, dtype=np.float64)
        self.busy = np.zeros(cap, dtype=np.float64)
        self.weighted = np.zeros(cap, dtype=np.float64)
        self.steps = np.zeros(cap, dtype=np.int64)
        self.served = np.zeros(cap, dtype=np.int64)
        self.replacements = np.zeros(cap, dtype=np.int64)
        self.mig_stall = np.zeros(cap, dtype=np.float64)
        self.admit_ctr = np.zeros(cap, dtype=np.int64)
        self.queue_len = np.zeros(cap, dtype=np.int64)
        self.load = np.zeros(cap, dtype=np.int64)
        self.stepping = np.zeros(cap, dtype=np.bool_)
        self.next_step_t = np.full(cap, _INF, dtype=np.float64)
        self.step_seq = np.zeros(cap, dtype=np.int64)
        self.step_dt = np.zeros(cap, dtype=np.float64)
        self.boot_t = np.full(cap, _INF, dtype=np.float64)
        self.boot_seq = np.zeros(cap, dtype=np.int64)
        self.n_act = np.zeros(cap, dtype=np.int64)
        mb = self.max_batch
        self.act_req = np.zeros((cap, mb), dtype=np.int64)
        self.act_tok = np.zeros((cap, mb), dtype=np.int64)
        self.act_gen = np.zeros((cap, mb), dtype=np.int64)
        self.act_home = np.zeros((cap, mb), dtype=np.int64)
        self.act_adm = np.zeros((cap, mb), dtype=np.float64)
        self.act_reg = np.zeros((cap, mb), dtype=np.int64)
        self.queues: list[list[ArrayQueue]] = []
        self.placements: list[Placement] = []
        self.replacers: list[OnlineReplacer | None] = []
        self.n_booting = 0

        # -- event bookkeeping (seqs mirror the oracle's heap pushes) ----------
        self.seq = self.total  # arrivals took 0..N-1
        self.cursor = 0
        self.done = 0
        self.first_arrival = float(self.arr_t[0])

        # -- telemetry (observation-only; hooks shared with the oracle) --------
        self.obs = FleetObs(recorder) if recorder is not None else None
        self.profiler = profiler
        if self.obs is not None:
            self.obs.run_start(self.first_arrival, cluster)

        # -- outcome ledgers ---------------------------------------------------
        self.comp_i: list[int] = []
        self.comp_adm: list[float] = []
        self.comp_fin: list[float] = []
        self.comp_rid: list[int] = []
        self.shed_i: list[int] = []
        self.shed_time: list[float] = []
        self.shed_reason: list[str] = []
        self.shed_rid: list[int | None] = []
        self.scale_events: list[ScaleEvent] = []
        self.lost_i: list[int] = []
        self.lost_time: list[float] = []
        self.lost_rid: list[int] = []
        self.lost_att: list[int] = []
        self.lost_reason: list[str] = []
        self.retries = 0
        # failure records as parallel columns (same layout as the oracle:
        # lost counts land at kill time, recovery time at replacement boot)
        self.fail_time: list[float] = []
        self.fail_rid: list[int] = []
        self.fail_kind: list[str] = []
        self.fail_act: list[int] = []
        self.fail_q: list[int] = []
        self.fail_rec: list[float | None] = []
        self.recovery_for: dict[int, tuple[int, float]] = {}

        # -- chaos schedule (frozen spec; mirrors the oracle's heap pushes) ----
        self.chaos = fleet.chaos
        self.retry_pol = self.chaos.retry if self.chaos is not None else None
        self.attempt_timeout = (
            self.retry_pol.attempt_timeout_s if self.retry_pol is not None else None
        )
        # per-request attempt number and current-attempt start (the oracle's
        # dict defaults: attempt 1, started at arrival)
        self.att_n = np.ones(self.total, dtype=np.int64)
        self.att_start = self.arr_t.copy()
        # pending chaos events as (time, seq, code, payload); seqs continue
        # the shared counter so ties resolve exactly like the oracle's heap
        self.pending: list[tuple[float, int, int, object]] = []

        for i in range(fleet.num_replicas):
            self._new_replica(
                i % len(regimes), _RUNNING, booted_at=self.first_arrival
            )
        self._refresh_routable()
        self.peak_routable = fleet.num_replicas

        self.autoscaler = ReactiveAutoscaler(fleet) if fleet.autoscale else None
        if self.autoscaler is not None:
            self.scale_t = self.first_arrival + fleet.autoscale_check_every_s
            self.scale_seq = self._next_seq()
        else:
            self.scale_t = _INF
            self.scale_seq = -1
        if self.chaos is not None:
            # spec order fixes the seq tie-break, matching the oracle
            for c in self.chaos.crashes:
                heapq.heappush(
                    self.pending, (c.time_s, self._next_seq(), _CH_CRASH, c.replica)
                )
            for p in self.chaos.preemptions:
                heapq.heappush(
                    self.pending, (p.time_s, self._next_seq(), _CH_PREEMPT, p)
                )

    # -- infrastructure --------------------------------------------------------

    def _next_seq(self) -> int:
        s = self.seq
        self.seq += 1
        return s

    def _refresh_routable(self) -> None:
        self.routable_ids = np.flatnonzero(self.state[: self.num_replicas] == _RUNNING)

    def _grow(self) -> None:
        old = self.cap
        cap = 2 * old

        def wide(a: np.ndarray, fill: float | int) -> np.ndarray:
            out = np.full((cap, *a.shape[1:]), fill, dtype=a.dtype)
            out[:old] = a
            return out

        self.state = wide(self.state, _STOPPED)
        self.regime_of = wide(self.regime_of, 0)
        self.booted_at = wide(self.booted_at, 0.0)
        self.billed_from = wide(self.billed_from, 0.0)
        self.stopped_at = wide(self.stopped_at, np.nan)
        self.est_step = wide(self.est_step, np.nan)
        self.busy = wide(self.busy, 0.0)
        self.weighted = wide(self.weighted, 0.0)
        self.steps = wide(self.steps, 0)
        self.served = wide(self.served, 0)
        self.replacements = wide(self.replacements, 0)
        self.mig_stall = wide(self.mig_stall, 0.0)
        self.admit_ctr = wide(self.admit_ctr, 0)
        self.queue_len = wide(self.queue_len, 0)
        self.load = wide(self.load, 0)
        self.stepping = wide(self.stepping, False)
        self.next_step_t = wide(self.next_step_t, _INF)
        self.step_seq = wide(self.step_seq, 0)
        self.step_dt = wide(self.step_dt, 0.0)
        self.boot_t = wide(self.boot_t, _INF)
        self.boot_seq = wide(self.boot_seq, 0)
        self.n_act = wide(self.n_act, 0)
        self.act_req = wide(self.act_req, 0)
        self.act_tok = wide(self.act_tok, 0)
        self.act_gen = wide(self.act_gen, 0)
        self.act_home = wide(self.act_home, 0)
        self.act_adm = wide(self.act_adm, 0.0)
        self.act_reg = wide(self.act_reg, 0)
        self.cap = cap

    def _new_replica(
        self,
        regime: int,
        state: int,
        booted_at: float,
        billed_from: float | None = None,
    ) -> int:
        rid = self.num_replicas
        if rid == self.cap:
            self._grow()
        replacer: OnlineReplacer | None = None
        if self.fleet.replace:
            # same rng draw (and position in the stream) as the oracle:
            # each replica seeds its own replacer estimator
            replacer = OnlineReplacer(
                self.model,
                self.cluster,
                policy=self.replace_policy or ReplacementPolicy(),
                halflife_tokens=self.replace_halflife,
                dtype_bytes=self.dtype_bytes,
                rng=np.random.default_rng(self.rng.integers(2**31)),
            )
        self.state[rid] = state
        self.regime_of[rid] = regime
        self.booted_at[rid] = booted_at
        self.billed_from[rid] = booted_at if billed_from is None else billed_from
        self.placements.append(self.placements_by_regime[regime])
        self.replacers.append(replacer)
        self.queues.append([ArrayQueue() for _ in range(self.num_lanes)])
        self.num_replicas = rid + 1
        if state == _BOOTING:
            self.n_booting += 1
        if self.obs is not None:
            billed = float(self.billed_from[rid])
            self.obs.replica_start(billed, rid, regime, state == _BOOTING, booted_at, billed)
        return rid

    def _kept_row(self, placement: Placement) -> np.ndarray:
        """Kept-mass of one placement under every affinity-router regime."""
        hit = self._kept_cache.get(id(placement))
        if hit is not None and hit[0] is placement:
            return hit[1]
        row = np.array(
            [model_kept_mass(placement, m) for m in self.aff_regimes],
            dtype=np.float64,
        )
        self._kept_cache[id(placement)] = (placement, row)
        return row

    def _affinity_pick(self, cands: np.ndarray, regime: int) -> int:
        """The affinity router's choice among candidate replica ids."""
        kept = np.array(
            [self._kept_row(self.placements[int(r)])[regime] for r in cands],
            dtype=np.float64,
        )
        loads = self.load[cands]
        scores = kept - (self.load_weight * loads) / self.max_batch
        return int(cands[affinity_select(scores, loads, cands)])

    def _choose_one(self, req_idx: int, cands: np.ndarray) -> int:
        """Scalar routing decision (the migration path), candidate ids given."""
        if self.policy == "round-robin":
            rt = self.router
            assert isinstance(rt, RoundRobinRouter)
            chosen = int(cands[rt._next % cands.size])
            rt._next += 1
            return chosen
        if self.policy == "jsq":
            return int(cands[jsq_select(self.load[cands])])
        if self.policy == "p2c":
            return int(cands[p2c_select(self.load[cands], cands, self.rng)])
        return self._affinity_pick(cands, int(self.reg[req_idx]))

    # -- replica transitions ---------------------------------------------------

    def _enqueue(self, req_idx: int, rid: int) -> None:
        self.queues[rid][int(self.lane[req_idx])].push(req_idx)
        self.queue_len[rid] += 1
        self.load[rid] += 1

    def _finish_if_drained(self, rid: int, t: float) -> None:
        if (
            self.state[rid] == _DRAINING
            and self.n_act[rid] == 0
            and self.queue_len[rid] == 0
        ):
            self.state[rid] = _STOPPED
            self.stopped_at[rid] = t
            if self.obs is not None:
                self.obs.stop(t, rid)

    def _start_step(self, rid: int, t: float) -> None:
        """Admit at the boundary and launch one decode step (or go idle)."""
        free = self.max_batch - int(self.n_act[rid])
        popped: np.ndarray | None = None
        if free > 0 and self.queue_len[rid] > 0:
            if self.attempt_timeout is None:
                parts = []
                for lane in self.queues[rid]:
                    if free <= 0:
                        break
                    if len(lane):
                        got = lane.pop_many(free)
                        free -= got.size
                        parts.append(got)
                popped = parts[0] if len(parts) == 1 else np.concatenate(parts)
            else:
                # scalar mirror of Replica.admit_with_timeout: expiry is
                # evaluated lazily per pop, timed-out pops consume no slot
                to = self.attempt_timeout
                adm_l: list[int] = []
                timed: list[int] = []
                for lane in self.queues[rid]:
                    while len(lane) and len(adm_l) < free:
                        i = int(lane.pop_many(1)[0])
                        if t - float(self.att_start[i]) > to:
                            timed.append(i)
                        else:
                            adm_l.append(i)
                    if len(adm_l) >= free:
                        break
                if timed:
                    self.queue_len[rid] -= len(timed)
                    self.load[rid] -= len(timed)
                    for i in timed:
                        self._fail_attempt(i, t, rid, "timeout", was_active=False)
                popped = np.array(adm_l, dtype=np.int64)
        if popped is not None and popped.size:
            m = popped.size
            base = int(self.n_act[rid])
            sl = slice(base, base + m)
            self.act_req[rid, sl] = popped
            self.act_tok[rid, sl] = self.gen_len[popped]
            self.act_gen[rid, sl] = 0
            homes = (int(self.admit_ctr[rid]) + np.arange(m, dtype=np.int64)) % self.g
            self.act_home[rid, sl] = homes
            self.act_adm[rid, sl] = t
            self.act_reg[rid, sl] = self.reg[popped]
            self.admit_ctr[rid] += m
            self.n_act[rid] = base + m
            self.queue_len[rid] -= m
            profiler = self.profiler
            _pt = perf_counter() if profiler is not None else 0.0
            adm = self.timer.admission_time(homes, self.prompt[popped])
            if profiler is not None:
                profiler.add("pricing", perf_counter() - _pt)
            if self.obs is not None:
                self.obs.admit(
                    t, rid, [self.reqs[i].req_id for i in popped.tolist()], adm
                )
            if adm > 0:
                t += adm
                self.busy[rid] += adm
                self.weighted[rid] += int(self.n_act[rid]) * adm
        n = int(self.n_act[rid])
        if n == 0:
            self.stepping[rid] = False
            self.next_step_t[rid] = _INF
            self._finish_if_drained(rid, t)
            return
        regs = self.act_reg[rid, :n]
        profiler = self.profiler
        _pt = perf_counter() if profiler is not None else 0.0
        paths = sample_paths_grouped(regs, self.regimes, self.rng, self.L)
        secondary = (
            sample_paths_grouped(regs, self.regimes, self.rng, self.L)
            if self.top2
            else None
        )
        if profiler is not None:
            profiler.add("pricing", perf_counter() - _pt)
        replacer = self.replacers[rid]
        if replacer is not None:
            replacer.observe(paths)
        home = self.act_home[rid, :n]
        ctx = self.prompt[self.act_req[rid, :n]] + self.act_gen[rid, :n]
        _pt = perf_counter() if profiler is not None else 0.0
        dt = self.timer.step_time(paths, home, ctx, self.placements[rid], secondary)
        if profiler is not None:
            profiler.add("pricing", perf_counter() - _pt)
        if self.chaos is not None and self.chaos.brownouts:
            f = brownout_factor(self.chaos.brownouts, rid, t)
            if f != 1.0:
                dt = dt * f
        if not dt > 0:
            raise ValueError(f"step_time must be positive seconds, got {dt}")
        self.stepping[rid] = True
        self.step_dt[rid] = dt
        self.next_step_t[rid] = t + dt
        self.step_seq[rid] = self._next_seq()

    def _on_step_end(self, rid: int, t: float) -> None:
        dt = float(self.step_dt[rid])
        n = int(self.n_act[rid])
        self.steps[rid] += 1
        self.busy[rid] += dt
        self.weighted[rid] += n * dt
        est = float(self.est_step[rid])
        self.est_step[rid] = dt if est != est else est + _STEP_EWMA_ALPHA * (dt - est)
        if self.obs is not None:
            self.obs.step_end(t, rid, dt, n)
        toks = self.act_tok[rid, :n]
        toks -= 1
        self.act_gen[rid, :n] += 1
        fin = toks == 0
        m = int(np.count_nonzero(fin))
        if m:
            fidx = np.flatnonzero(fin)
            self.comp_i.extend(self.act_req[rid, fidx].tolist())
            self.comp_adm.extend(self.act_adm[rid, fidx].tolist())
            self.comp_fin.extend([t] * m)
            self.comp_rid.extend([rid] * m)
            self.served[rid] += m
            self.done += m
            self.load[rid] -= m
            if self.obs is not None:
                adm_rows = self.act_adm[rid, fidx].tolist()
                for ri, adm_s in zip(
                    self.act_req[rid, fidx].tolist(), adm_rows, strict=True
                ):
                    q = self.reqs[ri]
                    self.obs.complete(t, rid, q.req_id, q.arrival_s, adm_s, q.generate_len)
            keep = np.flatnonzero(~fin)
            kn = keep.size
            if kn:
                self.act_req[rid, :kn] = self.act_req[rid, keep]
                self.act_tok[rid, :kn] = self.act_tok[rid, keep]
                self.act_gen[rid, :kn] = self.act_gen[rid, keep]
                self.act_home[rid, :kn] = self.act_home[rid, keep]
                self.act_adm[rid, :kn] = self.act_adm[rid, keep]
                self.act_reg[rid, :kn] = self.act_reg[rid, keep]
            self.n_act[rid] = kn
        t_next = t
        replacer = self.replacers[rid]
        if replacer is not None:
            result = replacer.maybe_replace(
                int(self.steps[rid]), t, self.placements[rid]
            )
            if result is not None:
                self.placements[rid], event = result
                self.replacements[rid] += 1
                self.mig_stall[rid] += event.stall_s
                t_next = t + event.stall_s
        self._start_step(rid, t_next)

    def _on_boot(self, rid: int, t: float) -> None:
        self.state[rid] = _RUNNING
        self.boot_t[rid] = _INF
        self.n_booting -= 1
        self._refresh_routable()
        self.peak_routable = max(self.peak_routable, int(self.routable_ids.size))
        if self.obs is not None:
            self.obs.boot_ready(t, rid)
        info = self.recovery_for.pop(rid, None)
        if info is not None:
            idx, cold_s = info
            self.fail_rec[idx] = t
            if self.obs is not None:
                self.obs.recover(t, rid, self.fail_rid[idx], cold_s)

    def _migrate_queued(self, victim: int, t: float) -> None:
        """Re-route a draining replica's queued requests (oracle semantics)."""
        parts = [lane.drain() for lane in self.queues[victim]]
        orphans = np.concatenate(parts)
        if orphans.size == 0:
            return
        self.queue_len[victim] = 0
        self.load[victim] -= orphans.size
        if self.obs is not None:
            self.obs.requeue(t, victim, int(orphans.size))
        cap = self.fleet.max_queue_per_replica
        for i in orphans.tolist():
            rids = self.routable_ids
            targets = rids[self.queue_len[rids] < cap]
            if targets.size == 0:
                self._enqueue(i, victim)  # nowhere with room: drain in place
                if self.obs is not None:
                    self.obs.enqueue(t, victim, self.reqs[i].req_id)
                continue
            rid = self._choose_one(i, targets)
            self._enqueue(i, rid)
            if self.obs is not None:
                self.obs.enqueue(t, rid, self.reqs[i].req_id)
            if not self.stepping[rid]:
                self._start_step(rid, t)

    # -- chaos (mirrors the oracle's handlers event for event) -----------------

    def _fail_attempt(
        self, req_idx: int, t: float, rid: int, reason: str, was_active: bool
    ) -> None:
        """One attempt of request ``req_idx`` died on ``rid``: retry or lose."""
        n = int(self.att_n[req_idx])
        pol = self.retry_pol
        q = self.reqs[req_idx]
        if pol is not None and n < pol.max_attempts:
            delay = pol.backoff_s(n)
            self.retries += 1
            heapq.heappush(
                self.pending, (t + delay, self._next_seq(), _CH_RETRY, req_idx)
            )
            if self.obs is not None:
                self.obs.retry(t, q.req_id, rid, n, delay, was_active)
        else:
            self.lost_i.append(req_idx)
            self.lost_time.append(t)
            self.lost_rid.append(rid)
            self.lost_att.append(n)
            self.lost_reason.append(reason)
            self.done += 1
            if self.obs is not None:
                self.obs.lost(t, q.req_id, rid, n, reason, was_active)

    def _open_failure(self, t: float, rid: int, kind: str) -> int:
        self.fail_time.append(t)
        self.fail_rid.append(rid)
        self.fail_kind.append(kind)
        self.fail_act.append(0)
        self.fail_q.append(0)
        self.fail_rec.append(None)
        return len(self.fail_time) - 1

    def _kill_replica(self, rid: int, t: float, kind: str, idx: int) -> None:
        """Hard-stop ``rid``: destroy the batch and queue (oracle order —
        active slots first, then lane-FCFS queue)."""
        n = int(self.n_act[rid])
        doomed_active = self.act_req[rid, :n].tolist()
        parts = [lane.drain() for lane in self.queues[rid]]
        doomed_queued = np.concatenate(parts).tolist()
        self.fail_act[idx] += n
        self.fail_q[idx] += len(doomed_queued)
        self.n_act[rid] = 0
        self.queue_len[rid] = 0
        self.load[rid] = 0
        self.state[rid] = _FAILED
        self.stopped_at[rid] = t
        self.stepping[rid] = False
        self.next_step_t[rid] = _INF
        self._refresh_routable()
        if self.obs is not None:
            self.obs.fail(t, rid, kind, n, len(doomed_queued))
        for i in doomed_active:
            self._fail_attempt(i, t, rid, kind, was_active=True)
        for i in doomed_queued:
            self._fail_attempt(i, t, rid, kind, was_active=False)

    def _order_recovery(self, victim: int, t: float, idx: int) -> None:
        """Boot a replacement for ``victim`` through the priced cold start."""
        regime = int(self.regime_of[victim])
        cold = price_cold_start(
            self.model,
            self.cluster,
            self.placements_by_regime[regime],
            self.dtype_bytes,
            self.fleet.boot_overhead_s,
        )
        rid = self._new_replica(
            regime, _BOOTING, booted_at=t + cold.total_s, billed_from=t
        )
        self.boot_t[rid] = t + cold.total_s
        self.boot_seq[rid] = self._next_seq()
        self.recovery_for[rid] = (idx, cold.total_s)

    def _on_crash(self, rid: int, t: float) -> None:
        if rid >= self.num_replicas:
            return
        st = int(self.state[rid])
        if st != _RUNNING and st != _DRAINING:
            return
        idx = self._open_failure(t, rid, "crash")
        self._kill_replica(rid, t, "crash", idx)
        if self.chaos is not None and self.chaos.recover:
            self._order_recovery(rid, t, idx)

    def _on_preempt(self, p: PreemptSpec, t: float) -> None:
        rid = p.replica
        if rid >= self.num_replicas or int(self.state[rid]) != _RUNNING:
            return
        idx = self._open_failure(t, rid, "preempt")
        self.state[rid] = _DRAINING
        self._refresh_routable()
        if self.obs is not None:
            self.obs.preempt(t, rid, p.grace_s)
        if self.fleet.migrate_on_drain:
            self._migrate_queued(rid, t)
        self._finish_if_drained(rid, t)
        heapq.heappush(
            self.pending, (t + p.grace_s, self._next_seq(), _CH_KILL, (rid, idx))
        )
        if self.chaos is not None and self.chaos.recover:
            self._order_recovery(rid, t, idx)

    def _on_kill(self, rid: int, idx: int, t: float) -> None:
        if int(self.state[rid]) != _DRAINING:
            return  # drained clean inside the grace period; lost stays 0/0
        self._kill_replica(rid, t, "preempt", idx)

    def _retry_arrival(self, i: int, t: float) -> None:
        """Scalar re-admission of a retried request (oracle's on_arrival)."""
        rids = self.routable_ids
        q = self.reqs[i]
        if rids.size == 0:
            self.shed_i.append(i)
            self.shed_time.append(t)
            self.shed_reason.append("no-capacity")
            self.shed_rid.append(None)
            self.done += 1
            if self.obs is not None:
                self.obs.shed(t, q.req_id, None, "no-capacity")
            return
        rid = self._choose_one(i, rids)
        ql = int(self.queue_len[rid])
        reason: str | None
        if ql >= self.admission.max_queue_per_replica:
            reason = "queue-full"
        else:
            # same scalar expression order as _arrivals_p2c / the oracle's
            # AdmissionController.assess, so floats agree bit for bit
            e = float(self.est_step[rid])
            gen = int(self.gen_len[i])
            deadline = (
                e == e
                and ql * gen * e / self.max_batch + gen * e
                > self.admission.shed_slack * float(self.slo[i])
            )
            reason = "deadline" if deadline else None
        if reason is not None:
            self.shed_i.append(i)
            self.shed_time.append(t)
            self.shed_reason.append(reason)
            self.shed_rid.append(rid)
            self.done += 1
            if self.obs is not None:
                self.obs.shed(t, q.req_id, rid, reason)
            return
        self._enqueue(i, rid)
        if self.obs is not None:
            self.obs.enqueue(t, rid, q.req_id)
        if not self.stepping[rid]:
            self._start_step(rid, t)

    def _on_retry(self, req_idx: int, t: float) -> None:
        self.att_n[req_idx] += 1
        self.att_start[req_idx] = t
        self._retry_arrival(req_idx, t)

    def _on_chaos(self, t: float) -> None:
        _, _, code, data = heapq.heappop(self.pending)
        if code == _CH_CRASH:
            self._on_crash(int(data), t)  # type: ignore[call-overload]
        elif code == _CH_PREEMPT:
            assert isinstance(data, PreemptSpec)
            self._on_preempt(data, t)
        elif code == _CH_KILL:
            rid, idx = data  # type: ignore[misc]
            self._on_kill(rid, idx, t)
        else:
            self._on_retry(int(data), t)  # type: ignore[call-overload]

    def _on_scale(self, t: float) -> None:
        assert self.autoscaler is not None
        n = self.num_replicas
        st = self.state[:n]
        live = self.routable_ids
        booting = self.n_booting
        draining = np.flatnonzero(st == _DRAINING)
        demand = np.concatenate([live, draining])
        decision = self.autoscaler.decide_from_depths(
            self.queue_len[demand], int(live.size), booting
        )
        per = self.autoscaler.last_queue_per_replica
        if decision == "up":
            # boot with the placement of the regime dominating queued work
            counts = np.zeros(len(self.regimes), dtype=np.int64)
            for rid in demand.tolist():
                for lane in self.queues[rid]:
                    view = lane.view()
                    if view.size:
                        counts += np.bincount(
                            self.reg[view], minlength=len(self.regimes)
                        )
            regime = int(np.argmax(counts)) if int(counts.sum()) else 0
            cold = price_cold_start(
                self.model,
                self.cluster,
                self.placements_by_regime[regime],
                self.dtype_bytes,
                self.fleet.boot_overhead_s,
            )
            rid = self._new_replica(
                regime, _BOOTING, booted_at=t + cold.total_s, billed_from=t
            )
            self.boot_t[rid] = t + cold.total_s
            self.boot_seq[rid] = self._next_seq()
            self.scale_events.append(
                ScaleEvent(t, "up", per, int(live.size) + booting,
                           int(live.size) + booting + 1, cold.total_s)
            )
            if self.obs is not None:
                self.obs.scale(t, "up", per, int(live.size) + booting,
                               int(live.size) + booting + 1, cold.total_s)
        elif decision == "down":
            victim = int(live[np.argmin(self.load[live])])
            self.state[victim] = _DRAINING
            self._refresh_routable()
            if self.obs is not None:
                self.obs.drain(t, victim)
            if self.fleet.migrate_on_drain:
                self._migrate_queued(victim, t)
            self._finish_if_drained(victim, t)
            self.scale_events.append(
                ScaleEvent(t, "down", per, int(live.size) + booting,
                           int(live.size) + booting - 1, 0.0)
            )
            if self.obs is not None:
                self.obs.scale(t, "down", per, int(live.size) + booting,
                               int(live.size) + booting - 1, 0.0)
        if self.done < self.total:
            self.scale_t = t + self.fleet.autoscale_check_every_s
            self.scale_seq = self._next_seq()
        else:
            self.scale_t = _INF

    # -- arrival windows -------------------------------------------------------

    def _record_sheds(
        self, lo: int, hi: int, chosen: np.ndarray, codes: np.ndarray
    ) -> None:
        self.shed_i.extend(range(lo, hi))
        self.shed_time.extend(self.arr_t[lo:hi].tolist())
        self.shed_rid.extend(chosen.tolist())
        self.shed_reason.extend(
            SHED_REASONS[int(c)] or "" for c in codes.tolist()
        )
        self.done += hi - lo
        if self.obs is not None:
            for i, rid, c in zip(
                range(lo, hi), chosen.tolist(), codes.tolist(), strict=True
            ):
                self.obs.shed(
                    float(self.arr_t[i]),
                    self.reqs[i].req_id,
                    int(rid),
                    SHED_REASONS[int(c)] or "",
                )

    def _arrivals_chunk(self, cur: int, hi: int) -> tuple[int, bool]:
        """One frozen-state pass for round-robin / jsq / affinity windows."""
        k = hi - cur
        rids = self.routable_ids
        profiler = self.profiler
        _pt = perf_counter() if profiler is not None else 0.0
        if self.policy == "round-robin":
            rt = self.router
            assert isinstance(rt, RoundRobinRouter)
            chosen = rids[rr_positions(rt._next, k, rids.size)]
        elif self.policy == "jsq":
            chosen = np.full(
                k, int(rids[jsq_select(self.load[rids])]), dtype=np.int64
            )
        else:
            regs = self.reg[cur:hi]
            chosen = np.empty(k, dtype=np.int64)
            for kreg in np.unique(regs):
                chosen[regs == kreg] = self._affinity_pick(rids, int(kreg))
        if profiler is not None:
            profiler.add("routing", perf_counter() - _pt)
            _pt = perf_counter()
        codes = self.admission.assess_codes(
            self.gen_len[cur:hi],
            self.slo[cur:hi],
            self.queue_len[chosen],
            self.est_step[chosen],
            self.max_batch,
        )
        if profiler is not None:
            profiler.add("admission", perf_counter() - _pt)
        admits = codes == ADMIT
        first = int(np.argmax(admits)) if admits.any() else k
        if first > 0:
            self._record_sheds(cur, cur + first, chosen[:first], codes[:first])
        consumed = first
        woke = False
        if first < k:
            rid = int(chosen[first])
            self._enqueue(cur + first, rid)
            if self.obs is not None:
                self.obs.enqueue(
                    float(self.arr_t[cur + first]), rid, self.reqs[cur + first].req_id
                )
            consumed += 1
            if not self.stepping[rid]:
                self._start_step(rid, float(self.arr_t[cur + first]))
                woke = True
        if self.policy == "round-robin":
            rt = self.router
            assert isinstance(rt, RoundRobinRouter)
            rt._next += consumed
        return cur + consumed, woke

    def _arrivals_p2c(self, cur: int, hi: int) -> tuple[int, bool]:
        """Per-arrival p2c loop: each decision consumes its own rng draws."""
        rng = self.rng
        rids = self.routable_ids
        ncand = rids.size
        load = self.load
        qlen = self.queue_len
        est = self.est_step
        mb = self.max_batch
        slack = self.admission.shed_slack
        qcap = self.admission.max_queue_per_replica
        obs = self.obs
        profiler = self.profiler
        i = cur
        while i < hi:
            _pt = perf_counter() if profiler is not None else 0.0
            if ncand == 1:
                rid = int(rids[0])
            else:
                a_, b_ = rng.choice(ncand, size=2, replace=False)
                ra, rb = int(rids[int(a_)]), int(rids[int(b_)])
                rid = rb if (load[rb], rb) < (load[ra], ra) else ra
            if profiler is not None:
                profiler.add("routing", perf_counter() - _pt)
                _pt = perf_counter()
            ql = int(qlen[rid])
            if ql >= qcap:
                if profiler is not None:
                    profiler.add("admission", perf_counter() - _pt)
                self.shed_i.append(i)
                self.shed_time.append(float(self.arr_t[i]))
                self.shed_reason.append("queue-full")
                self.shed_rid.append(rid)
                self.done += 1
                if obs is not None:
                    obs.shed(float(self.arr_t[i]), self.reqs[i].req_id, rid, "queue-full")
            else:
                e = float(est[rid])
                gen = int(self.gen_len[i])
                deadline = e == e and ql * gen * e / mb + gen * e > slack * float(self.slo[i])
                if profiler is not None:
                    profiler.add("admission", perf_counter() - _pt)
                if deadline:
                    self.shed_i.append(i)
                    self.shed_time.append(float(self.arr_t[i]))
                    self.shed_reason.append("deadline")
                    self.shed_rid.append(rid)
                    self.done += 1
                    if obs is not None:
                        obs.shed(float(self.arr_t[i]), self.reqs[i].req_id, rid, "deadline")
                else:
                    self._enqueue(i, rid)
                    if obs is not None:
                        obs.enqueue(float(self.arr_t[i]), rid, self.reqs[i].req_id)
                    if not self.stepping[rid]:
                        self._start_step(rid, float(self.arr_t[i]))
                        return i + 1, True
            i += 1
        return hi, False

    def _arrivals_until(self, bound_t: float) -> None:
        """Consume every arrival strictly before the next dynamic event."""
        hi = (
            self.total
            if bound_t == _INF
            else int(np.searchsorted(self.arr_t, bound_t, side="right"))
        )
        cur = self.cursor
        while cur < hi:
            if self.routable_ids.size == 0:
                # transient hole (every replica booting/draining): shed the
                # whole window honestly — nothing can change state before
                # the bounding event, so this is exact
                self.shed_i.extend(range(cur, hi))
                self.shed_time.extend(self.arr_t[cur:hi].tolist())
                self.shed_reason.extend(["no-capacity"] * (hi - cur))
                self.shed_rid.extend([None] * (hi - cur))
                self.done += hi - cur
                if self.obs is not None:
                    for i in range(cur, hi):
                        self.obs.shed(
                            float(self.arr_t[i]), self.reqs[i].req_id, None, "no-capacity"
                        )
                cur = hi
                break
            if self.policy == "p2c":
                cur, woke = self._arrivals_p2c(cur, hi)
            else:
                cur, woke = self._arrivals_chunk(cur, hi)
            if woke:
                # the admit woke an idle replica: its new step event may
                # land inside this window, so re-derive the bound
                break
        self.cursor = cur

    # -- main loop -------------------------------------------------------------

    def _pick_event(self) -> tuple[int, float, int]:
        """The earliest dynamic event as ``(kind, time, replica)``.

        Ties resolve by stored sequence number — exactly the oracle's
        heap order.
        """
        n = self.num_replicas
        ts = self.next_step_t[:n]
        j = int(np.argmin(ts))
        t_step = float(ts[j])
        best_kind, best_t, best_seq, best_rid = _EV_STEP, t_step, 0, j
        if t_step < _INF:
            ties = np.flatnonzero(ts == t_step)
            if ties.size > 1:
                j = int(ties[np.argmin(self.step_seq[:n][ties])])
                best_rid = j
            best_seq = int(self.step_seq[j])
        if self.n_booting:
            bt = self.boot_t[:n]
            b = int(np.argmin(bt))
            t_boot = float(bt[b])
            if t_boot < _INF:
                ties = np.flatnonzero(bt == t_boot)
                if ties.size > 1:
                    b = int(ties[np.argmin(self.boot_seq[:n][ties])])
                if best_t == _INF or (t_boot, int(self.boot_seq[b])) < (best_t, best_seq):
                    best_kind, best_t, best_seq, best_rid = (
                        _EV_BOOT, t_boot, int(self.boot_seq[b]), b,
                    )
        if self.scale_t < _INF and (
            best_t == _INF or (self.scale_t, self.scale_seq) < (best_t, best_seq)
        ):
            best_kind, best_t, best_seq, best_rid = (
                _EV_SCALE, self.scale_t, self.scale_seq, -1,
            )
        if self.pending:
            ch_t, ch_seq = self.pending[0][0], self.pending[0][1]
            if best_t == _INF or (ch_t, ch_seq) < (best_t, best_seq):
                best_kind, best_t, best_rid = _EV_CHAOS, ch_t, -1
        return best_kind, best_t, best_rid

    def run(self) -> FleetResult:
        if self.profiler is not None:
            self.profiler.run_start()
        while True:
            kind, ev_t, ev_rid = self._pick_event()
            if self.cursor < self.total and self.arr_t[self.cursor] <= ev_t:
                self._arrivals_until(ev_t)
                continue
            if ev_t == _INF:
                break
            if kind == _EV_STEP:
                self._on_step_end(ev_rid, ev_t)
            elif kind == _EV_BOOT:
                self._on_boot(ev_rid, ev_t)
            elif kind == _EV_CHAOS:
                self._on_chaos(ev_t)
            elif self.done < self.total:
                self._on_scale(ev_t)
            else:
                self.scale_t = _INF
        if self.profiler is not None:
            self.profiler.run_end()

        completed = [
            FleetCompleted(self.reqs[i], adm, fin, rid)
            for i, adm, fin, rid in zip(
                self.comp_i, self.comp_adm, self.comp_fin, self.comp_rid, strict=True
            )
        ]
        shed = [
            ShedRecord(self.reqs[i], t, reason, rid)
            for i, t, reason, rid in zip(
                self.shed_i, self.shed_time, self.shed_reason, self.shed_rid, strict=True
            )
        ]
        lost = [
            LostRecord(self.reqs[i], t, rid, att, reason)
            for i, t, rid, att, reason in zip(
                self.lost_i,
                self.lost_time,
                self.lost_rid,
                self.lost_att,
                self.lost_reason,
                strict=True,
            )
        ]
        failures = tuple(
            FailureRecord(
                self.fail_time[i],
                self.fail_rid[i],
                self.fail_kind[i],
                self.fail_act[i],
                self.fail_q[i],
                self.fail_rec[i],
            )
            for i in range(len(self.fail_time))
        )
        return finalize_fleet_result(
            completed,
            shed,
            self.first_arrival,
            self._stats_at,
            self.scale_events,
            self.admission,
            self.peak_routable,
            self.cluster,
            obs=self.obs,
            failures=failures,
            lost=lost,
            retries=self.retries,
        )

    def _stats_at(self, sim_end: float) -> tuple[ReplicaStats, ...]:
        out = []
        for rid in range(self.num_replicas):
            stop_raw = float(self.stopped_at[rid])
            stopped = None if stop_raw != stop_raw else stop_raw
            busy = float(self.busy[rid])
            end = sim_end if stopped is None else stopped
            gpu_h = max(0.0, end - float(self.billed_from[rid])) * self.g / 3600.0
            # same expression as Replica.stats, so the two engines report
            # bit-identical utilization
            life_s = end - float(self.booted_at[rid])
            out.append(
                ReplicaStats(
                    replica_id=rid,
                    regime=int(self.regime_of[rid]),
                    final_state=_STATE_VALUES[int(self.state[rid])],
                    served=int(self.served[rid]),
                    decode_steps=int(self.steps[rid]),
                    busy_s=busy,
                    mean_batch_size=float(self.weighted[rid]) / busy if busy > 0 else 0.0,
                    replacements=int(self.replacements[rid]),
                    migration_stall_s=float(self.mig_stall[rid]),
                    booted_at_s=float(self.booted_at[rid]),
                    stopped_at_s=stopped,
                    gpu_hours=gpu_h,
                    utilization=min(1.0, busy / life_s) if life_s > 0 else 0.0,
                )
            )
        return tuple(out)


def simulate_fleet_tick(
    requests: Iterable[FleetRequest],
    model: ModelConfig,
    cluster: ClusterConfig,
    regimes: Sequence[MarkovRoutingModel],
    placements_by_regime: Sequence[Placement],
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    max_batch_requests: int = 64,
    router: Router | None = None,
    admission: AdmissionController | None = None,
    timer: PlacementStepTimer | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    dtype_bytes: int = 2,
    rng: np.random.Generator | None = None,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> FleetResult:
    """Tick-engine counterpart of
    :func:`~repro.fleet.reference.simulate_fleet_reference` — same
    signature, bit-identical :class:`~repro.fleet.result.FleetResult`.

    Restrictions (both raise ``ValueError``): ``router`` and
    ``admission`` must be the built-in classes — subclasses carry scalar
    logic the array engine cannot honour; use ``engine="event"`` there.
    """
    reqs = sorted(requests, key=lambda q: (q.arrival_s, q.req_id))
    validate_fleet_inputs(
        reqs, model, regimes, placements_by_regime, fleet, max_batch_requests
    )

    rng = rng or np.random.default_rng(0)
    router = router or make_router(
        fleet.router, regimes=regimes, load_weight=fleet.affinity_load_weight
    )
    if type(router) not in (
        RoundRobinRouter, JoinShortestQueueRouter, PowerOfTwoRouter, AffinityRouter,
    ):
        raise ValueError(
            "the tick engine vectorizes the built-in router policies only; "
            'run custom routers with engine="event"'
        )
    admission = admission or AdmissionController.from_config(fleet)
    if type(admission) is not AdmissionController:
        raise ValueError(
            "the tick engine vectorizes AdmissionController only; "
            'run custom admission controllers with engine="event"'
        )
    timer = timer or PlacementStepTimer(model, cluster, mode=mode, dtype_bytes=dtype_bytes)

    empty_stats = LatencyStats.from_samples([])
    if not reqs:
        return FleetResult((), (), empty_stats, empty_stats, 0.0, (), (), {})

    sim = _TickFleet(
        reqs,
        model,
        cluster,
        regimes,
        placements_by_regime,
        fleet,
        max_batch_requests,
        router,
        admission,
        timer,
        replace_policy,
        replace_halflife_tokens,
        dtype_bytes,
        rng,
        recorder=recorder,
        profiler=profiler,
    )
    return sim.run()
