"""SLO-aware admission control: deadlines, priority classes, load shedding.

Under overload an open system has exactly two choices: queue (and blow
every deadline) or shed (and keep the admitted traffic inside SLO).  The
fleet admits per-request at routing time:

* each request belongs to a :class:`PriorityClass` with a latency SLO;
* the controller predicts the request's completion latency on the replica
  the router chose — queueing delay from the replica's current backlog
  plus service time, both priced with the replica's EWMA step-time
  estimate (so the prediction tracks the *measured* speed of that
  replica's placement under current traffic, not a static constant);
* a request whose predicted latency exceeds ``shed_slack x SLO`` is shed
  immediately (better a fast negative than a useless late answer), as is
  anything arriving at a replica whose wait queue hit the hard cap.

Priority enters twice: classes carry different SLOs (batch tolerates far
more queueing before shedding), and replicas admit strictly by class, so
interactive requests overtake queued batch work at every step boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import FleetConfig
from repro.fleet.replica import Replica
from repro.fleet.requests import FleetRequest

__all__ = [
    "PriorityClass",
    "default_priority_classes",
    "AdmissionController",
    "ADMIT",
    "SHED_QUEUE_FULL",
    "SHED_DEADLINE",
    "SHED_REASONS",
]

#: Codes returned by :meth:`AdmissionController.assess_codes`; index into
#: :data:`SHED_REASONS` for the scalar path's string reasons.
ADMIT: int = 0
SHED_QUEUE_FULL: int = 1
SHED_DEADLINE: int = 2
SHED_REASONS: tuple[None, str, str] = (None, "queue-full", "deadline")


@dataclass(frozen=True)
class PriorityClass:
    """One admission class: a name, an SLO, and its queueing rank (0 first)."""

    name: str
    slo_s: float
    rank: int

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.rank < 0:
            raise ValueError("rank must be >= 0")


def default_priority_classes(fleet: FleetConfig) -> tuple[PriorityClass, ...]:
    """The fleet's two standard classes: interactive (0) and batch (1)."""
    return (
        PriorityClass("interactive", fleet.slo_s, 0),
        PriorityClass("batch", fleet.batch_slo_s, 1),
    )


class AdmissionController:
    """Decide admit-or-shed for each routed request."""

    def __init__(
        self,
        classes: tuple[PriorityClass, ...],
        shed_slack: float = 1.0,
        max_queue_per_replica: int = 256,
    ) -> None:
        if not classes:
            raise ValueError("need at least one priority class")
        ranks = sorted(c.rank for c in classes)
        if ranks != list(range(len(classes))):
            raise ValueError("class ranks must be exactly 0..n-1")
        if shed_slack <= 0:
            raise ValueError("shed_slack must be positive")
        if max_queue_per_replica <= 0:
            raise ValueError("max_queue_per_replica must be positive")
        self.classes = tuple(sorted(classes, key=lambda c: c.rank))
        self.shed_slack = shed_slack
        self.max_queue_per_replica = max_queue_per_replica

    @classmethod
    def from_config(cls, fleet: FleetConfig) -> "AdmissionController":
        return cls(
            default_priority_classes(fleet),
            shed_slack=fleet.shed_slack,
            max_queue_per_replica=fleet.max_queue_per_replica,
        )

    def class_of(self, request: FleetRequest) -> PriorityClass:
        return self.classes[min(request.priority, len(self.classes) - 1)]

    def predicted_latency_s(
        self, replica: Replica, request: FleetRequest
    ) -> float | None:
        """Estimated completion latency if ``request`` joins ``replica`` now.

        Continuous batching frees ``max_batch`` slots every
        ``generate_len`` steps in steady state, so the backlog ahead drains
        at roughly ``max_batch / (generate_len * step_s)`` requests per
        second; service itself is ``generate_len`` steps.  Returns ``None``
        until the replica has measured at least one step (a cold replica
        admits optimistically — there is nothing to predict from).
        """
        est = replica.est_step_s
        if est is None:
            return None
        gen = request.generate_len
        wait_s = replica.queue_len * gen * est / replica.max_batch
        service_s = gen * est
        return wait_s + service_s

    def assess(
        self, request: FleetRequest, replica: Replica, now: float
    ) -> str | None:
        """Return a shed reason, or ``None`` to admit."""
        if replica.queue_len >= self.max_queue_per_replica:
            return "queue-full"
        predicted = self.predicted_latency_s(replica, request)
        if predicted is not None:
            slo = self.class_of(request).slo_s
            if predicted > self.shed_slack * slo:
                return "deadline"
        return None

    def slo_met(self, request: FleetRequest, latency_s: float) -> bool:
        return latency_s <= self.class_of(request).slo_s

    # -- whole-batch evaluation (the tick engine's path) -----------------------

    def slo_by_priority(self, priorities: np.ndarray) -> np.ndarray:
        """Per-request SLO seconds from priority labels (class-clamped)."""
        slos = np.array([c.slo_s for c in self.classes], dtype=np.float64)
        return slos[np.minimum(priorities, len(self.classes) - 1)]

    def predicted_latency_batch(
        self,
        gen_lens: np.ndarray,
        queue_lens: np.ndarray,
        est_step_s: np.ndarray,
        max_batch: np.ndarray | int,
    ) -> np.ndarray:
        """Vectorized :meth:`predicted_latency_s` over one arrival batch.

        Row ``i`` predicts request ``i`` joining its routed replica, whose
        queue depth / step estimate / batch cap arrive as parallel arrays
        (``est_step_s`` uses NaN where a replica has not measured a step
        yet — the "admit optimistically" case, since NaN propagates and
        never exceeds a deadline).  The expression mirrors the scalar
        path's operation order exactly so both engines shed identically.
        """
        return queue_lens * gen_lens * est_step_s / max_batch + gen_lens * est_step_s

    def assess_codes(
        self,
        gen_lens: np.ndarray,
        slo_s: np.ndarray,
        queue_lens: np.ndarray,
        est_step_s: np.ndarray,
        max_batch: np.ndarray | int,
    ) -> np.ndarray:
        """Vectorized :meth:`assess`: one int8 code per request.

        ``ADMIT`` (0) admits; :data:`SHED_REASONS` maps nonzero codes to
        the scalar path's shed-reason strings.  The queue-full check wins
        over the deadline check, as in the scalar path.
        """
        codes = np.zeros(gen_lens.shape[0], dtype=np.int8)
        predicted = self.predicted_latency_batch(
            gen_lens, queue_lens, est_step_s, max_batch
        )
        # NaN predictions (cold replica) fail this comparison → admit
        codes[predicted > self.shed_slack * slo_s] = SHED_DEADLINE
        codes[queue_lens >= self.max_queue_per_replica] = SHED_QUEUE_FULL
        return codes

    def assess_batch(
        self, requests: Sequence[FleetRequest], replicas: Sequence[Replica]
    ) -> list[str | None]:
        """Batch :meth:`assess`: request ``i`` against its routed replica ``i``.

        Equivalent to ``[self.assess(q, r, now) for q, r in zip(...)]`` on
        a frozen replica snapshot; the array core is
        :meth:`assess_codes`, which the tick engine calls directly.
        """
        if len(requests) != len(replicas):
            raise ValueError("need exactly one routed replica per request")
        gen = np.array([q.generate_len for q in requests], dtype=np.int64)
        pri = np.array([q.priority for q in requests], dtype=np.int64)
        qlen = np.array([r.queue_len for r in replicas], dtype=np.int64)
        ests = np.array(
            [np.nan if r.est_step_s is None else r.est_step_s for r in replicas],
            dtype=np.float64,
        )
        caps = np.array([r.max_batch for r in replicas], dtype=np.int64)
        codes = self.assess_codes(gen, self.slo_by_priority(pri), qlen, ests, caps)
        return [SHED_REASONS[int(c)] for c in codes]
