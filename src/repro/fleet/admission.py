"""SLO-aware admission control: deadlines, priority classes, load shedding.

Under overload an open system has exactly two choices: queue (and blow
every deadline) or shed (and keep the admitted traffic inside SLO).  The
fleet admits per-request at routing time:

* each request belongs to a :class:`PriorityClass` with a latency SLO;
* the controller predicts the request's completion latency on the replica
  the router chose — queueing delay from the replica's current backlog
  plus service time, both priced with the replica's EWMA step-time
  estimate (so the prediction tracks the *measured* speed of that
  replica's placement under current traffic, not a static constant);
* a request whose predicted latency exceeds ``shed_slack x SLO`` is shed
  immediately (better a fast negative than a useless late answer), as is
  anything arriving at a replica whose wait queue hit the hard cap.

Priority enters twice: classes carry different SLOs (batch tolerates far
more queueing before shedding), and replicas admit strictly by class, so
interactive requests overtake queued batch work at every step boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FleetConfig
from repro.fleet.replica import Replica
from repro.fleet.requests import FleetRequest

__all__ = ["PriorityClass", "default_priority_classes", "AdmissionController"]


@dataclass(frozen=True)
class PriorityClass:
    """One admission class: a name, an SLO, and its queueing rank (0 first)."""

    name: str
    slo_s: float
    rank: int

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.rank < 0:
            raise ValueError("rank must be >= 0")


def default_priority_classes(fleet: FleetConfig) -> tuple[PriorityClass, ...]:
    """The fleet's two standard classes: interactive (0) and batch (1)."""
    return (
        PriorityClass("interactive", fleet.slo_s, 0),
        PriorityClass("batch", fleet.batch_slo_s, 1),
    )


class AdmissionController:
    """Decide admit-or-shed for each routed request."""

    def __init__(
        self,
        classes: tuple[PriorityClass, ...],
        shed_slack: float = 1.0,
        max_queue_per_replica: int = 256,
    ) -> None:
        if not classes:
            raise ValueError("need at least one priority class")
        ranks = sorted(c.rank for c in classes)
        if ranks != list(range(len(classes))):
            raise ValueError("class ranks must be exactly 0..n-1")
        if shed_slack <= 0:
            raise ValueError("shed_slack must be positive")
        if max_queue_per_replica <= 0:
            raise ValueError("max_queue_per_replica must be positive")
        self.classes = tuple(sorted(classes, key=lambda c: c.rank))
        self.shed_slack = shed_slack
        self.max_queue_per_replica = max_queue_per_replica

    @classmethod
    def from_config(cls, fleet: FleetConfig) -> "AdmissionController":
        return cls(
            default_priority_classes(fleet),
            shed_slack=fleet.shed_slack,
            max_queue_per_replica=fleet.max_queue_per_replica,
        )

    def class_of(self, request: FleetRequest) -> PriorityClass:
        return self.classes[min(request.priority, len(self.classes) - 1)]

    def predicted_latency_s(
        self, replica: Replica, request: FleetRequest
    ) -> float | None:
        """Estimated completion latency if ``request`` joins ``replica`` now.

        Continuous batching frees ``max_batch`` slots every
        ``generate_len`` steps in steady state, so the backlog ahead drains
        at roughly ``max_batch / (generate_len * step_s)`` requests per
        second; service itself is ``generate_len`` steps.  Returns ``None``
        until the replica has measured at least one step (a cold replica
        admits optimistically — there is nothing to predict from).
        """
        est = replica.est_step_s
        if est is None:
            return None
        gen = request.generate_len
        wait_s = replica.queue_len * gen * est / replica.max_batch
        service_s = gen * est
        return wait_s + service_s

    def assess(
        self, request: FleetRequest, replica: Replica, now: float
    ) -> str | None:
        """Return a shed reason, or ``None`` to admit."""
        if replica.queue_len >= self.max_queue_per_replica:
            return "queue-full"
        predicted = self.predicted_latency_s(replica, request)
        if predicted is not None:
            slo = self.class_of(request).slo_s
            if predicted > self.shed_slack * slo:
                return "deadline"
        return None

    def slo_met(self, request: FleetRequest, latency_s: float) -> bool:
        return latency_s <= self.class_of(request).slo_s
