"""The event-heap fleet oracle: one event popped and processed at a time.

This is the original fleet simulation loop, retained verbatim as the
correctness reference for the vectorized tick engine
(:mod:`repro.fleet.engine`) — the same relationship
:mod:`repro.engine.reference` has to :mod:`repro.engine.executor`.  Each
replica runs the same continuous-batching semantics as the
single-replica online loop
(:func:`~repro.engine.serving.simulate_online_serving`): admissions happen
at step boundaries, every decode step is priced by a
:class:`~repro.engine.serving.PlacementStepTimer` from that step's sampled
routing under the replica's *current* placement, and coherent modes pay
the prompt AllGather at admission.  Above the replicas sit the router
(per-arrival placement/load decision), the admission controller
(SLO shedding at routing time) and, optionally, the reactive autoscaler
(periodic ticks that boot or drain replicas, cold starts priced through
:func:`~repro.fleet.autoscaler.price_cold_start`).

The event heap carries four event kinds — request arrival, replica step
completion, replica boot completion, autoscaler tick — with a sequence
counter as tie-break, so the simulation is deterministic given the rng.
``tests/test_fleet_equivalence.py`` holds the tick engine to this loop's
exact :class:`~repro.fleet.result.FleetResult`, field for field.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from time import perf_counter
from typing import Iterable, Sequence, cast

import numpy as np

from repro.config import ClusterConfig, ExecutionMode, FleetConfig, ModelConfig
from repro.core.online import OnlineReplacer, ReplacementPolicy
from repro.core.placement.base import Placement
from repro.engine.metrics import LatencyStats
from repro.engine.serving import PlacementStepTimer
from repro.fleet.admission import AdmissionController
from repro.fleet.autoscaler import ReactiveAutoscaler, ScaleEvent, price_cold_start
from repro.fleet.replica import ActiveEntry, Replica, ReplicaState, ReplicaStats
from repro.fleet.requests import FleetCompleted, FleetRequest, ShedRecord
from repro.fleet.result import (
    FleetObs,
    FleetResult,
    finalize_fleet_result,
    sample_paths_grouped,
    validate_fleet_inputs,
)
from repro.fleet.router import Router, make_router
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import MetricsRecorder
from repro.trace.markov import MarkovRoutingModel

__all__ = ["simulate_fleet_reference"]


def _sample_paths(
    entries: Sequence[ActiveEntry],
    regimes: Sequence[MarkovRoutingModel],
    rng: np.random.Generator,
    num_layers: int,
) -> np.ndarray:
    """Draw one path matrix for a replica's active entries."""
    regs = np.array([e.request.regime for e in entries], dtype=np.int64)
    return sample_paths_grouped(regs, regimes, rng, num_layers)


def simulate_fleet_reference(
    requests: Iterable[FleetRequest],
    model: ModelConfig,
    cluster: ClusterConfig,
    regimes: Sequence[MarkovRoutingModel],
    placements_by_regime: Sequence[Placement],
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    max_batch_requests: int = 64,
    router: Router | None = None,
    admission: AdmissionController | None = None,
    timer: PlacementStepTimer | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    dtype_bytes: int = 2,
    rng: np.random.Generator | None = None,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> FleetResult:
    """Serve ``requests`` on a fleet of replicas behind a router.

    ``placements_by_regime[k]`` is the affinity-optimized placement fit to
    ``regimes[k]``; initial replica ``i`` carries placement
    ``i % num_regimes`` (a heterogeneous fleet when ``num_regimes > 1``),
    and autoscaled replicas boot with the placement of the regime
    dominating the queued traffic at decision time.
    ``max_batch_requests`` is each replica's continuous-batching admission
    cap (the serving layer's knob, threaded through by the cluster entry
    point).  With ``fleet.replace`` on, each replica's re-placement loop
    uses ``replace_policy`` and a streaming estimator with
    ``replace_halflife_tokens`` (defaults when ``None``).

    ``recorder`` attaches observation-only telemetry (hooks driven through
    the shared :class:`~repro.fleet.result.FleetObs` adapter, so the tick
    engine reports the identical stream); ``profiler`` accumulates the
    wall-time phase split (routing / admission / pricing / bookkeeping).
    Neither perturbs the simulation.
    """
    reqs = sorted(requests, key=lambda q: (q.arrival_s, q.req_id))
    validate_fleet_inputs(
        reqs, model, regimes, placements_by_regime, fleet, max_batch_requests
    )

    rng = rng or np.random.default_rng(0)
    router = router or make_router(
        fleet.router, regimes=regimes, load_weight=fleet.affinity_load_weight
    )
    admission = admission or AdmissionController.from_config(fleet)
    timer = timer or PlacementStepTimer(model, cluster, mode=mode, dtype_bytes=dtype_bytes)
    top2 = model.gating.k == 2
    g = cluster.num_gpus
    L = model.num_moe_layers
    num_priorities = len(admission.classes)

    empty_stats = LatencyStats.from_samples([])
    if not reqs:
        return FleetResult((), (), empty_stats, empty_stats, 0.0, (), (), {})

    obs = FleetObs(recorder) if recorder is not None else None
    replicas: list[Replica] = []

    def new_replica(
        regime: int,
        state: ReplicaState,
        booted_at: float,
        billed_from: float | None = None,
    ) -> Replica:
        replacer = None
        if fleet.replace:
            # each replica gets its own replacer (and hence estimator):
            # every replica streams only its own traffic
            replacer = OnlineReplacer(
                model,
                cluster,
                policy=replace_policy or ReplacementPolicy(),
                halflife_tokens=replace_halflife_tokens,
                dtype_bytes=dtype_bytes,
                rng=np.random.default_rng(rng.integers(2**31)),
            )
        r = Replica(
            replica_id=len(replicas),
            placement=placements_by_regime[regime],
            regime=regime,
            max_batch_requests=max_batch_requests,
            num_gpus=g,
            num_priorities=num_priorities,
            state=state,
            booted_at_s=booted_at,
            replacer=replacer,
            billed_from_s=billed_from,
        )
        replicas.append(r)
        if obs is not None:
            obs.replica_start(
                billed_from if billed_from is not None else booted_at,
                r.replica_id,
                regime,
                state is ReplicaState.BOOTING,
                booted_at,
                r.billed_from_s,
            )
        return r

    first_arrival = reqs[0].arrival_s
    if obs is not None:
        obs.run_start(first_arrival, cluster)
    for i in range(fleet.num_replicas):
        new_replica(i % len(regimes), ReplicaState.ACTIVE, first_arrival)

    autoscaler = ReactiveAutoscaler(fleet) if fleet.autoscale else None

    heap: list[tuple[float, int, str, object]] = []
    seq = itertools.count()

    def push(t: float, kind: str, data: object) -> None:
        heapq.heappush(heap, (t, next(seq), kind, data))

    for q in reqs:
        push(q.arrival_s, "arrival", q)
    if autoscaler is not None:
        push(first_arrival + fleet.autoscale_check_every_s, "scale", None)

    total = len(reqs)
    done = 0
    completed: list[FleetCompleted] = []
    shed: list[ShedRecord] = []
    scale_events: list[ScaleEvent] = []
    peak_routable = fleet.num_replicas

    def routable() -> list[Replica]:
        return [r for r in replicas if r.routable]

    def finish_if_drained(r: Replica, t: float) -> None:
        if r.state is ReplicaState.DRAINING and r.drained:
            r.state = ReplicaState.STOPPED
            r.stopped_at_s = t
            if obs is not None:
                obs.stop(t, r.replica_id)

    def start_step(r: Replica, t: float) -> None:
        """Admit at the boundary and launch one decode step (or go idle)."""
        newly = r.admit_up_to_capacity(t)
        if newly:
            _pt = perf_counter() if profiler is not None else 0.0
            adm = timer.admission_time(
                np.array([e.home_gpu for e in newly], dtype=np.int64),
                np.array([e.request.prompt_len for e in newly], dtype=np.int64),
            )
            if profiler is not None:
                profiler.add("pricing", perf_counter() - _pt)
            if obs is not None:
                obs.admit(t, r.replica_id, [e.request.req_id for e in newly], adm)
            if adm > 0:
                t += adm
                r.note_admission(adm)
        if not r.active:
            r.stepping = False
            finish_if_drained(r, t)
            return
        _pt = perf_counter() if profiler is not None else 0.0
        paths = _sample_paths(r.active, regimes, rng, L)
        secondary = _sample_paths(r.active, regimes, rng, L) if top2 else None
        if profiler is not None:
            profiler.add("pricing", perf_counter() - _pt)
        if r.replacer is not None:
            r.replacer.observe(paths)
        home = np.array([e.home_gpu for e in r.active], dtype=np.int64)
        ctx = np.array(
            [e.request.prompt_len + e.generated for e in r.active], dtype=np.int64
        )
        _pt = perf_counter() if profiler is not None else 0.0
        dt = timer.step_time(paths, home, ctx, r.placement, secondary)
        if profiler is not None:
            profiler.add("pricing", perf_counter() - _pt)
        if not dt > 0:
            raise ValueError(f"step_time must be positive seconds, got {dt}")
        r.stepping = True
        push(t + dt, "step", (r, dt))

    def on_arrival(q: FleetRequest, t: float) -> None:
        nonlocal done
        cands = routable()
        if not cands:
            # transient hole (every replica booting/draining); shed honestly
            # rather than queueing on a replica that may never come up
            shed.append(ShedRecord(q, t, "no-capacity", None))
            done += 1
            if obs is not None:
                obs.shed(t, q.req_id, None, "no-capacity")
            return
        _pt = perf_counter() if profiler is not None else 0.0
        r = router.choose(q, cands, rng)
        if profiler is not None:
            profiler.add("routing", perf_counter() - _pt)
        _pt = perf_counter() if profiler is not None else 0.0
        reason = admission.assess(q, r, t)
        if profiler is not None:
            profiler.add("admission", perf_counter() - _pt)
        if reason is not None:
            shed.append(ShedRecord(q, t, reason, r.replica_id))
            done += 1
            if obs is not None:
                obs.shed(t, q.req_id, r.replica_id, reason)
            return
        r.enqueue(q)
        if obs is not None:
            obs.enqueue(t, r.replica_id, q.req_id)
        if not r.stepping:
            start_step(r, t)

    def on_step_end(r: Replica, dt: float, t: float) -> None:
        nonlocal done
        batch = len(r.active)
        r.note_step(dt, batch)
        if obs is not None:
            obs.step_end(t, r.replica_id, dt, batch)
        still: list[ActiveEntry] = []
        for e in r.active:
            e.tokens_remaining -= 1
            e.generated += 1
            if e.tokens_remaining == 0:
                completed.append(
                    FleetCompleted(e.request, e.admitted_s, t, r.replica_id)
                )
                r.served += 1
                done += 1
                if obs is not None:
                    obs.complete(
                        t,
                        r.replica_id,
                        e.request.req_id,
                        e.request.arrival_s,
                        e.admitted_s,
                        e.request.generate_len,
                    )
            else:
                still.append(e)
        r.active = still
        t_next = t
        if r.replacer is not None:
            result = r.replacer.maybe_replace(r.steps, t, r.placement)
            if result is not None:
                r.placement, event = result
                r.placement_version += 1
                r.replacements += 1
                r.migration_stall_s += event.stall_s
                t_next += event.stall_s
        start_step(r, t_next)

    def migrate_queued(victim: Replica, t: float) -> None:
        """Hand a draining replica's queued requests back to the router.

        The active decode batch finishes in place (KV state is not moved);
        queued-but-unadmitted requests are re-routed across the remaining
        routable replicas so they don't wait out the drain.  Re-routing
        skips latency-prediction shedding — these requests were already
        admitted once, and shedding them *because* the fleet is shrinking
        would be wrong — but it still honours the hard
        ``max_queue_per_replica`` cap: orphans that would overflow every
        surviving replica stay on the victim and drain normally.
        """
        orphans = victim.take_queued()
        if not orphans:
            return
        if obs is not None:
            obs.requeue(t, victim.replica_id, len(orphans))
        for q in orphans:
            # victim is already DRAINING, hence excluded from routable()
            targets = [
                r for r in routable() if r.queue_len < fleet.max_queue_per_replica
            ]
            if not targets:
                victim.enqueue(q)  # nowhere with room: drain it in place
                if obs is not None:
                    obs.enqueue(t, victim.replica_id, q.req_id)
                continue
            target = router.choose(q, targets, rng)
            target.enqueue(q)
            if obs is not None:
                obs.enqueue(t, target.replica_id, q.req_id)
            if not target.stepping:
                start_step(target, t)

    def on_scale(t: float) -> None:
        assert autoscaler is not None  # caller gates on fleet.autoscale
        live = routable()
        booting = [r for r in replicas if r.state is ReplicaState.BOOTING]
        draining = [r for r in replicas if r.state is ReplicaState.DRAINING]
        # demand counts draining replicas' stranded queues too (they are
        # real pending work), capacity counts only replicas that can absorb
        queued = sum(r.queue_len for r in live + draining)
        decision = autoscaler.decide(queued, len(live), len(booting))
        per = autoscaler.last_queue_per_replica
        if decision == "up":
            # boot with the placement of the regime dominating queued work
            counts: Counter[int] = Counter()
            for r in live + draining:
                for queue in r.queues:
                    counts.update(q.regime for q in queue)
            regime = min(counts, key=lambda k: (-counts[k], k)) if counts else 0
            cold = price_cold_start(
                model,
                cluster,
                placements_by_regime[regime],
                dtype_bytes,
                fleet.boot_overhead_s,
            )
            r = new_replica(
                regime, ReplicaState.BOOTING, t + cold.total_s, billed_from=t
            )
            push(t + cold.total_s, "boot", r)
            scale_events.append(
                ScaleEvent(t, "up", per, len(live) + len(booting),
                           len(live) + len(booting) + 1, cold.total_s)
            )
            if obs is not None:
                obs.scale(t, "up", per, len(live) + len(booting),
                          len(live) + len(booting) + 1, cold.total_s)
        elif decision == "down":
            victim = min(live, key=lambda r: (r.load, r.replica_id))
            victim.state = ReplicaState.DRAINING
            if obs is not None:
                obs.drain(t, victim.replica_id)
            if fleet.migrate_on_drain:
                migrate_queued(victim, t)
            finish_if_drained(victim, t)
            scale_events.append(
                ScaleEvent(t, "down", per, len(live) + len(booting),
                           len(live) + len(booting) - 1, 0.0)
            )
            if obs is not None:
                obs.scale(t, "down", per, len(live) + len(booting),
                          len(live) + len(booting) - 1, 0.0)
        if done < total:
            push(t + fleet.autoscale_check_every_s, "scale", None)

    if profiler is not None:
        profiler.run_start()
    while heap:
        t, _, kind, data = heapq.heappop(heap)
        if kind == "arrival":
            on_arrival(cast(FleetRequest, data), t)
        elif kind == "step":
            r, dt = cast("tuple[Replica, float]", data)
            on_step_end(r, dt, t)
        elif kind == "boot":
            r = cast(Replica, data)
            r.state = ReplicaState.ACTIVE
            peak_routable = max(peak_routable, len(routable()))
            if obs is not None:
                obs.boot_ready(t, r.replica_id)
        elif kind == "scale" and autoscaler is not None and done < total:
            on_scale(t)
    if profiler is not None:
        profiler.run_end()

    def stats_at(sim_end: float) -> tuple[ReplicaStats, ...]:
        return tuple(r.stats(sim_end) for r in replicas)

    return finalize_fleet_result(
        completed,
        shed,
        first_arrival,
        stats_at,
        scale_events,
        admission,
        peak_routable,
        cluster,
        obs=obs,
    )
