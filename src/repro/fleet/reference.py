"""The event-heap fleet oracle: one event popped and processed at a time.

This is the original fleet simulation loop, retained verbatim as the
correctness reference for the vectorized tick engine
(:mod:`repro.fleet.engine`) — the same relationship
:mod:`repro.engine.reference` has to :mod:`repro.engine.executor`.  Each
replica runs the same continuous-batching semantics as the
single-replica online loop
(:func:`~repro.engine.serving.simulate_online_serving`): admissions happen
at step boundaries, every decode step is priced by a
:class:`~repro.engine.serving.PlacementStepTimer` from that step's sampled
routing under the replica's *current* placement, and coherent modes pay
the prompt AllGather at admission.  Above the replicas sit the router
(per-arrival placement/load decision), the admission controller
(SLO shedding at routing time) and, optionally, the reactive autoscaler
(periodic ticks that boot or drain replicas, cold starts priced through
:func:`~repro.fleet.autoscaler.price_cold_start`).

The event heap carries eight event kinds — request arrival, replica step
completion, replica boot completion, autoscaler tick, and the chaos
subsystem's crash / preemption-notice / preemption-kill / request-retry
events — with a sequence counter as tie-break, so the simulation is
deterministic given the rng.  Chaos schedules come frozen in
``fleet.chaos`` (a :class:`~repro.chaos.spec.ChaosSpec`): a crash loses
the victim's in-flight batch and queue (each lost request re-enters
routing per the retry policy, or is recorded lost), a preemption notice
drains the victim for its grace period before killing what remains, and
brownouts inflate step times through the shared
:func:`~repro.chaos.schedule.brownout_factor` helper so admission's EWMA
estimate feels the slowdown.  Recovery (when enabled) orders a
replacement replica through the same priced cold-start boot path the
autoscaler uses.  ``tests/test_fleet_equivalence.py`` holds the tick
engine to this loop's exact :class:`~repro.fleet.result.FleetResult`,
field for field.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from time import perf_counter
from typing import Iterable, Sequence, cast

import numpy as np

from repro.chaos.schedule import brownout_factor
from repro.chaos.spec import PreemptSpec
from repro.config import ClusterConfig, ExecutionMode, FleetConfig, ModelConfig
from repro.core.online import OnlineReplacer, ReplacementPolicy
from repro.core.placement.base import Placement
from repro.engine.metrics import LatencyStats
from repro.engine.serving import PlacementStepTimer
from repro.fleet.admission import AdmissionController
from repro.fleet.autoscaler import ReactiveAutoscaler, ScaleEvent, price_cold_start
from repro.fleet.replica import ActiveEntry, Replica, ReplicaState, ReplicaStats
from repro.fleet.requests import (
    FailureRecord,
    FleetCompleted,
    FleetRequest,
    LostRecord,
    ShedRecord,
)
from repro.fleet.result import (
    FleetObs,
    FleetResult,
    finalize_fleet_result,
    sample_paths_grouped,
    validate_fleet_inputs,
)
from repro.fleet.router import Router, make_router
from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import MetricsRecorder
from repro.trace.markov import MarkovRoutingModel

__all__ = ["simulate_fleet_reference"]


def _sample_paths(
    entries: Sequence[ActiveEntry],
    regimes: Sequence[MarkovRoutingModel],
    rng: np.random.Generator,
    num_layers: int,
) -> np.ndarray:
    """Draw one path matrix for a replica's active entries."""
    regs = np.array([e.request.regime for e in entries], dtype=np.int64)
    return sample_paths_grouped(regs, regimes, rng, num_layers)


def simulate_fleet_reference(
    requests: Iterable[FleetRequest],
    model: ModelConfig,
    cluster: ClusterConfig,
    regimes: Sequence[MarkovRoutingModel],
    placements_by_regime: Sequence[Placement],
    fleet: FleetConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    max_batch_requests: int = 64,
    router: Router | None = None,
    admission: AdmissionController | None = None,
    timer: PlacementStepTimer | None = None,
    replace_policy: ReplacementPolicy | None = None,
    replace_halflife_tokens: float | None = None,
    dtype_bytes: int = 2,
    rng: np.random.Generator | None = None,
    recorder: MetricsRecorder | None = None,
    profiler: PhaseProfiler | None = None,
) -> FleetResult:
    """Serve ``requests`` on a fleet of replicas behind a router.

    ``placements_by_regime[k]`` is the affinity-optimized placement fit to
    ``regimes[k]``; initial replica ``i`` carries placement
    ``i % num_regimes`` (a heterogeneous fleet when ``num_regimes > 1``),
    and autoscaled replicas boot with the placement of the regime
    dominating the queued traffic at decision time.
    ``max_batch_requests`` is each replica's continuous-batching admission
    cap (the serving layer's knob, threaded through by the cluster entry
    point).  With ``fleet.replace`` on, each replica's re-placement loop
    uses ``replace_policy`` and a streaming estimator with
    ``replace_halflife_tokens`` (defaults when ``None``).

    ``recorder`` attaches observation-only telemetry (hooks driven through
    the shared :class:`~repro.fleet.result.FleetObs` adapter, so the tick
    engine reports the identical stream); ``profiler`` accumulates the
    wall-time phase split (routing / admission / pricing / bookkeeping).
    Neither perturbs the simulation.
    """
    reqs = sorted(requests, key=lambda q: (q.arrival_s, q.req_id))
    validate_fleet_inputs(
        reqs, model, regimes, placements_by_regime, fleet, max_batch_requests
    )

    rng = rng or np.random.default_rng(0)
    router = router or make_router(
        fleet.router, regimes=regimes, load_weight=fleet.affinity_load_weight
    )
    admission = admission or AdmissionController.from_config(fleet)
    timer = timer or PlacementStepTimer(model, cluster, mode=mode, dtype_bytes=dtype_bytes)
    top2 = model.gating.k == 2
    g = cluster.num_gpus
    L = model.num_moe_layers
    num_priorities = len(admission.classes)

    empty_stats = LatencyStats.from_samples([])
    if not reqs:
        return FleetResult((), (), empty_stats, empty_stats, 0.0, (), (), {})

    obs = FleetObs(recorder) if recorder is not None else None
    replicas: list[Replica] = []

    def new_replica(
        regime: int,
        state: ReplicaState,
        booted_at: float,
        billed_from: float | None = None,
    ) -> Replica:
        replacer = None
        if fleet.replace:
            # each replica gets its own replacer (and hence estimator):
            # every replica streams only its own traffic
            replacer = OnlineReplacer(
                model,
                cluster,
                policy=replace_policy or ReplacementPolicy(),
                halflife_tokens=replace_halflife_tokens,
                dtype_bytes=dtype_bytes,
                rng=np.random.default_rng(rng.integers(2**31)),
            )
        r = Replica(
            replica_id=len(replicas),
            placement=placements_by_regime[regime],
            regime=regime,
            max_batch_requests=max_batch_requests,
            num_gpus=g,
            num_priorities=num_priorities,
            state=state,
            booted_at_s=booted_at,
            replacer=replacer,
            billed_from_s=billed_from,
        )
        replicas.append(r)
        if obs is not None:
            obs.replica_start(
                billed_from if billed_from is not None else booted_at,
                r.replica_id,
                regime,
                state is ReplicaState.BOOTING,
                booted_at,
                r.billed_from_s,
            )
        return r

    first_arrival = reqs[0].arrival_s
    if obs is not None:
        obs.run_start(first_arrival, cluster)
    for i in range(fleet.num_replicas):
        new_replica(i % len(regimes), ReplicaState.RUNNING, first_arrival)

    autoscaler = ReactiveAutoscaler(fleet) if fleet.autoscale else None
    chaos = fleet.chaos
    retry_pol = chaos.retry if chaos is not None else None
    attempt_timeout = retry_pol.attempt_timeout_s if retry_pol is not None else None

    heap: list[tuple[float, int, str, object]] = []
    seq = itertools.count()

    def push(t: float, kind: str, data: object) -> None:
        heapq.heappush(heap, (t, next(seq), kind, data))

    for q in reqs:
        push(q.arrival_s, "arrival", q)
    if autoscaler is not None:
        push(first_arrival + fleet.autoscale_check_every_s, "scale", None)
    if chaos is not None:
        # spec order fixes the seq tie-break; the tick engine mirrors it
        for c in chaos.crashes:
            push(c.time_s, "crash", c.replica)
        for p in chaos.preemptions:
            push(p.time_s, "preempt", p)

    total = len(reqs)
    done = 0
    completed: list[FleetCompleted] = []
    shed: list[ShedRecord] = []
    scale_events: list[ScaleEvent] = []
    peak_routable = fleet.num_replicas
    lost: list[LostRecord] = []
    retries = 0
    attempts: dict[int, int] = {}
    attempt_started: dict[int, float] = {}
    # Failure records accumulate as parallel columns: the lost counts are
    # only known at kill time (a preemption's record opens at the notice)
    # and the recovery time only when the replacement replica boots.
    fail_time: list[float] = []
    fail_rid: list[int] = []
    fail_kind: list[str] = []
    fail_act: list[int] = []
    fail_q: list[int] = []
    fail_rec: list[float | None] = []
    recovery_for: dict[int, tuple[int, float]] = {}

    def routable() -> list[Replica]:
        return [r for r in replicas if r.routable]

    def finish_if_drained(r: Replica, t: float) -> None:
        if r.state is ReplicaState.DRAINING and r.drained:
            r.transition_to(ReplicaState.STOPPED)
            r.stopped_at_s = t
            if obs is not None:
                obs.stop(t, r.replica_id)

    def start_step(r: Replica, t: float) -> None:
        """Admit at the boundary and launch one decode step (or go idle)."""
        if attempt_timeout is None:
            newly = r.admit_up_to_capacity(t)
        else:
            newly, timed_out = r.admit_with_timeout(
                t,
                lambda q: t - attempt_started.get(q.req_id, q.arrival_s)
                > attempt_timeout,
            )
            for q in timed_out:
                fail_attempt(q, t, r.replica_id, "timeout", was_active=False)
        if newly:
            _pt = perf_counter() if profiler is not None else 0.0
            adm = timer.admission_time(
                np.array([e.home_gpu for e in newly], dtype=np.int64),
                np.array([e.request.prompt_len for e in newly], dtype=np.int64),
            )
            if profiler is not None:
                profiler.add("pricing", perf_counter() - _pt)
            if obs is not None:
                obs.admit(t, r.replica_id, [e.request.req_id for e in newly], adm)
            if adm > 0:
                t += adm
                r.note_admission(adm)
        if not r.active:
            r.stepping = False
            finish_if_drained(r, t)
            return
        _pt = perf_counter() if profiler is not None else 0.0
        paths = _sample_paths(r.active, regimes, rng, L)
        secondary = _sample_paths(r.active, regimes, rng, L) if top2 else None
        if profiler is not None:
            profiler.add("pricing", perf_counter() - _pt)
        if r.replacer is not None:
            r.replacer.observe(paths)
        home = np.array([e.home_gpu for e in r.active], dtype=np.int64)
        ctx = np.array(
            [e.request.prompt_len + e.generated for e in r.active], dtype=np.int64
        )
        _pt = perf_counter() if profiler is not None else 0.0
        dt = timer.step_time(paths, home, ctx, r.placement, secondary)
        if profiler is not None:
            profiler.add("pricing", perf_counter() - _pt)
        if chaos is not None and chaos.brownouts:
            f = brownout_factor(chaos.brownouts, r.replica_id, t)
            if f != 1.0:
                dt = dt * f
        if not dt > 0:
            raise ValueError(f"step_time must be positive seconds, got {dt}")
        r.stepping = True
        push(t + dt, "step", (r, dt, r.epoch))

    def on_arrival(q: FleetRequest, t: float) -> None:
        nonlocal done
        cands = routable()
        if not cands:
            # transient hole (every replica booting/draining); shed honestly
            # rather than queueing on a replica that may never come up
            shed.append(ShedRecord(q, t, "no-capacity", None))
            done += 1
            if obs is not None:
                obs.shed(t, q.req_id, None, "no-capacity")
            return
        _pt = perf_counter() if profiler is not None else 0.0
        r = router.choose(q, cands, rng)
        if profiler is not None:
            profiler.add("routing", perf_counter() - _pt)
        _pt = perf_counter() if profiler is not None else 0.0
        reason = admission.assess(q, r, t)
        if profiler is not None:
            profiler.add("admission", perf_counter() - _pt)
        if reason is not None:
            shed.append(ShedRecord(q, t, reason, r.replica_id))
            done += 1
            if obs is not None:
                obs.shed(t, q.req_id, r.replica_id, reason)
            return
        r.enqueue(q)
        if obs is not None:
            obs.enqueue(t, r.replica_id, q.req_id)
        if not r.stepping:
            start_step(r, t)

    def on_step_end(r: Replica, dt: float, t: float) -> None:
        nonlocal done
        batch = len(r.active)
        r.note_step(dt, batch)
        if obs is not None:
            obs.step_end(t, r.replica_id, dt, batch)
        still: list[ActiveEntry] = []
        for e in r.active:
            e.tokens_remaining -= 1
            e.generated += 1
            if e.tokens_remaining == 0:
                completed.append(
                    FleetCompleted(e.request, e.admitted_s, t, r.replica_id)
                )
                r.served += 1
                done += 1
                if obs is not None:
                    obs.complete(
                        t,
                        r.replica_id,
                        e.request.req_id,
                        e.request.arrival_s,
                        e.admitted_s,
                        e.request.generate_len,
                    )
            else:
                still.append(e)
        r.active = still
        t_next = t
        if r.replacer is not None:
            result = r.replacer.maybe_replace(r.steps, t, r.placement)
            if result is not None:
                r.placement, event = result
                r.placement_version += 1
                r.replacements += 1
                r.migration_stall_s += event.stall_s
                t_next += event.stall_s
        start_step(r, t_next)

    def migrate_queued(victim: Replica, t: float) -> None:
        """Hand a draining replica's queued requests back to the router.

        The active decode batch finishes in place (KV state is not moved);
        queued-but-unadmitted requests are re-routed across the remaining
        routable replicas so they don't wait out the drain.  Re-routing
        skips latency-prediction shedding — these requests were already
        admitted once, and shedding them *because* the fleet is shrinking
        would be wrong — but it still honours the hard
        ``max_queue_per_replica`` cap: orphans that would overflow every
        surviving replica stay on the victim and drain normally.
        """
        orphans = victim.take_queued()
        if not orphans:
            return
        if obs is not None:
            obs.requeue(t, victim.replica_id, len(orphans))
        for q in orphans:
            # victim is already DRAINING, hence excluded from routable()
            targets = [
                r for r in routable() if r.queue_len < fleet.max_queue_per_replica
            ]
            if not targets:
                victim.enqueue(q)  # nowhere with room: drain it in place
                if obs is not None:
                    obs.enqueue(t, victim.replica_id, q.req_id)
                continue
            target = router.choose(q, targets, rng)
            target.enqueue(q)
            if obs is not None:
                obs.enqueue(t, target.replica_id, q.req_id)
            if not target.stepping:
                start_step(target, t)

    def fail_attempt(
        q: FleetRequest, t: float, rid: int, reason: str, was_active: bool
    ) -> None:
        """One attempt of ``q`` just died on ``rid``: retry or record lost."""
        nonlocal done, retries
        n = attempts.get(q.req_id, 1)
        if retry_pol is not None and n < retry_pol.max_attempts:
            delay = retry_pol.backoff_s(n)
            retries += 1
            push(t + delay, "retry", q)
            if obs is not None:
                obs.retry(t, q.req_id, rid, n, delay, was_active)
        else:
            lost.append(LostRecord(q, t, rid, n, reason))
            done += 1
            if obs is not None:
                obs.lost(t, q.req_id, rid, n, reason, was_active)

    def kill_replica(r: Replica, t: float, kind: str, failure_idx: int) -> None:
        """Hard-stop ``r`` now: in-flight batch and queue are destroyed.

        Lost work re-enters routing in a canonical order — active entries
        in slot order, then the queue in lane-FCFS order — so both engines
        schedule identical retry events.  Bumping the epoch invalidates the
        in-flight step-completion event still sitting in the heap.
        """
        doomed_active = [e.request for e in r.active]
        doomed_queued = r.take_queued()
        fail_act[failure_idx] += len(doomed_active)
        fail_q[failure_idx] += len(doomed_queued)
        r.active = []
        r.transition_to(ReplicaState.FAILED)
        r.stopped_at_s = t
        r.stepping = False
        r.epoch += 1
        if obs is not None:
            obs.fail(t, r.replica_id, kind, len(doomed_active), len(doomed_queued))
        for q in doomed_active:
            fail_attempt(q, t, r.replica_id, kind, was_active=True)
        for q in doomed_queued:
            fail_attempt(q, t, r.replica_id, kind, was_active=False)

    def order_recovery(victim: Replica, t: float, failure_idx: int) -> None:
        """Boot a replacement for ``victim`` through the priced cold start."""
        cold = price_cold_start(
            model,
            cluster,
            placements_by_regime[victim.regime],
            dtype_bytes,
            fleet.boot_overhead_s,
        )
        r = new_replica(
            victim.regime, ReplicaState.BOOTING, t + cold.total_s, billed_from=t
        )
        recovery_for[r.replica_id] = (failure_idx, cold.total_s)
        push(t + cold.total_s, "boot", r)

    def open_failure(t: float, rid: int, kind: str) -> int:
        fail_time.append(t)
        fail_rid.append(rid)
        fail_kind.append(kind)
        fail_act.append(0)
        fail_q.append(0)
        fail_rec.append(None)
        return len(fail_time) - 1

    def on_crash(rid: int, t: float) -> None:
        if rid >= len(replicas):
            return
        r = replicas[rid]
        if r.state not in (ReplicaState.RUNNING, ReplicaState.DRAINING):
            return
        idx = open_failure(t, rid, "crash")
        kill_replica(r, t, "crash", idx)
        if chaos is not None and chaos.recover:
            order_recovery(r, t, idx)

    def on_preempt(p: PreemptSpec, t: float) -> None:
        if p.replica >= len(replicas):
            return
        r = replicas[p.replica]
        if r.state is not ReplicaState.RUNNING:
            return
        idx = open_failure(t, p.replica, "preempt")
        r.transition_to(ReplicaState.DRAINING)
        if obs is not None:
            obs.preempt(t, p.replica, p.grace_s)
        if fleet.migrate_on_drain:
            migrate_queued(r, t)
        finish_if_drained(r, t)
        push(t + p.grace_s, "kill", (p.replica, idx))
        if chaos is not None and chaos.recover:
            order_recovery(r, t, idx)

    def on_kill(rid: int, idx: int, t: float) -> None:
        r = replicas[rid]
        if r.state is not ReplicaState.DRAINING:
            return  # drained clean inside the grace period; lost stays 0/0
        kill_replica(r, t, "preempt", idx)

    def on_retry_pop(q: FleetRequest, t: float) -> None:
        attempts[q.req_id] = attempts.get(q.req_id, 1) + 1
        attempt_started[q.req_id] = t
        on_arrival(q, t)

    def on_scale(t: float) -> None:
        assert autoscaler is not None  # caller gates on fleet.autoscale
        live = routable()
        booting = [r for r in replicas if r.state is ReplicaState.BOOTING]
        draining = [r for r in replicas if r.state is ReplicaState.DRAINING]
        # demand counts draining replicas' stranded queues too (they are
        # real pending work), capacity counts only replicas that can absorb
        queued = sum(r.queue_len for r in live + draining)
        decision = autoscaler.decide(queued, len(live), len(booting))
        per = autoscaler.last_queue_per_replica
        if decision == "up":
            # boot with the placement of the regime dominating queued work
            counts: Counter[int] = Counter()
            for r in live + draining:
                for queue in r.queues:
                    counts.update(q.regime for q in queue)
            regime = min(counts, key=lambda k: (-counts[k], k)) if counts else 0
            cold = price_cold_start(
                model,
                cluster,
                placements_by_regime[regime],
                dtype_bytes,
                fleet.boot_overhead_s,
            )
            r = new_replica(
                regime, ReplicaState.BOOTING, t + cold.total_s, billed_from=t
            )
            push(t + cold.total_s, "boot", r)
            scale_events.append(
                ScaleEvent(t, "up", per, len(live) + len(booting),
                           len(live) + len(booting) + 1, cold.total_s)
            )
            if obs is not None:
                obs.scale(t, "up", per, len(live) + len(booting),
                          len(live) + len(booting) + 1, cold.total_s)
        elif decision == "down":
            victim = min(live, key=lambda r: (r.load, r.replica_id))
            victim.transition_to(ReplicaState.DRAINING)
            if obs is not None:
                obs.drain(t, victim.replica_id)
            if fleet.migrate_on_drain:
                migrate_queued(victim, t)
            finish_if_drained(victim, t)
            scale_events.append(
                ScaleEvent(t, "down", per, len(live) + len(booting),
                           len(live) + len(booting) - 1, 0.0)
            )
            if obs is not None:
                obs.scale(t, "down", per, len(live) + len(booting),
                          len(live) + len(booting) - 1, 0.0)
        if done < total:
            push(t + fleet.autoscale_check_every_s, "scale", None)

    if profiler is not None:
        profiler.run_start()
    while heap:
        t, _, kind, data = heapq.heappop(heap)
        if kind == "arrival":
            on_arrival(cast(FleetRequest, data), t)
        elif kind == "step":
            r, dt, epoch = cast("tuple[Replica, float, int]", data)
            if epoch != r.epoch:
                continue  # stale: the replica was killed mid-step
            on_step_end(r, dt, t)
        elif kind == "boot":
            r = cast(Replica, data)
            r.transition_to(ReplicaState.RUNNING)
            peak_routable = max(peak_routable, len(routable()))
            if obs is not None:
                obs.boot_ready(t, r.replica_id)
            rec_info = recovery_for.pop(r.replica_id, None)
            if rec_info is not None:
                idx, cold_s = rec_info
                fail_rec[idx] = t
                if obs is not None:
                    obs.recover(t, r.replica_id, fail_rid[idx], cold_s)
        elif kind == "scale" and autoscaler is not None and done < total:
            on_scale(t)
        elif kind == "crash":
            on_crash(cast(int, data), t)
        elif kind == "preempt":
            on_preempt(cast(PreemptSpec, data), t)
        elif kind == "kill":
            rid, idx = cast("tuple[int, int]", data)
            on_kill(rid, idx, t)
        elif kind == "retry":
            on_retry_pop(cast(FleetRequest, data), t)
    if profiler is not None:
        profiler.run_end()

    def stats_at(sim_end: float) -> tuple[ReplicaStats, ...]:
        return tuple(r.stats(sim_end) for r in replicas)

    failures = tuple(
        FailureRecord(
            fail_time[i], fail_rid[i], fail_kind[i], fail_act[i], fail_q[i], fail_rec[i]
        )
        for i in range(len(fail_time))
    )
    return finalize_fleet_result(
        completed,
        shed,
        first_arrival,
        stats_at,
        scale_events,
        admission,
        peak_routable,
        cluster,
        obs=obs,
        failures=failures,
        lost=lost,
        retries=retries,
    )
