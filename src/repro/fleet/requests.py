"""Fleet-level request types and traffic builders.

A fleet serves a *mixture* of workloads: requests belong to routing
regimes (which Markov affinity structure their tokens follow — the signal
affinity-aware routing exploits) and to priority classes (which SLO
admission enforces).  :class:`FleetRequest` carries both on top of the
serving layer's :class:`~repro.engine.serving.Request`.

Two traffic builders extend the arrival-process family for fleet
scenarios:

* :func:`make_fleet_requests` — decorate any arrival sequence with regime
  and priority labels (optionally with a time-varying regime mix, which is
  how traffic drift enters the fleet).
* :func:`flash_crowd_arrivals` — a piecewise-rate Poisson process whose
  rate multiplies by ``flash_factor`` inside one window: the canonical
  autoscaler stress (a product launch, a viral link).  Implemented with
  Lewis-Shedler thinning so the draw is exact and deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import FleetConfig, ServingConfig
from repro.engine.serving import Request

__all__ = [
    "FleetRequest",
    "FleetCompleted",
    "ShedRecord",
    "LostRecord",
    "FailureRecord",
    "flash_crowd_arrivals",
    "make_fleet_requests",
]


@dataclass(frozen=True)
class FleetRequest(Request):
    """A serving request labelled with its routing regime and priority.

    ``regime`` indexes the fleet's Markov regime list (which transition
    structure this request's tokens follow); ``priority`` indexes the
    admission controller's class list, 0 being the most urgent.
    """

    regime: int = 0
    priority: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.regime < 0:
            raise ValueError("regime must be >= 0")
        if self.priority < 0:
            raise ValueError("priority must be >= 0")


@dataclass(frozen=True)
class FleetCompleted:
    """A served fleet request with its scheduling timeline."""

    request: FleetRequest
    admitted_s: float
    finished_s: float
    replica_id: int

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.request.arrival_s

    @property
    def queue_s(self) -> float:
        return self.admitted_s - self.request.arrival_s


@dataclass(frozen=True)
class ShedRecord:
    """One request the admission controller refused."""

    request: FleetRequest
    time_s: float
    reason: str
    replica_id: int | None = None


@dataclass(frozen=True)
class LostRecord:
    """A request whose retry budget ran out — the chaos terminal outcome.

    Distinct from a :class:`ShedRecord`: shedding is admission *refusing*
    work it predicts will miss its SLO, loss is accepted work destroyed by
    faults (crash, preemption kill, or per-attempt timeout — ``reason``)
    after ``attempts`` tries.  ``replica_id`` is the replica on which the
    final attempt died.
    """

    request: FleetRequest
    time_s: float
    replica_id: int
    attempts: int
    reason: str


@dataclass(frozen=True)
class FailureRecord:
    """One injected replica failure and its recovery, for the fleet account.

    ``kind`` is ``"crash"`` or ``"preempt"``.  For preemptions, ``time_s``
    is the *notice* time and the lost counts are whatever the grace period
    failed to drain (both zero for a clean drain).  ``recovered_at_s`` is
    when the ordered replacement replica went routable, or ``None`` when
    recovery was disabled or never completed before the run ended.
    """

    time_s: float
    replica_id: int
    kind: str
    lost_active: int
    lost_queued: int
    recovered_at_s: float | None = None


def flash_crowd_arrivals(
    cfg: ServingConfig,
    flash_factor: float,
    flash_start_s: float,
    flash_duration_s: float,
    rng: np.random.Generator | None = None,
) -> list[Request]:
    """Poisson arrivals whose rate jumps ``flash_factor``-fold in a window.

    Outside ``[flash_start_s, flash_start_s + flash_duration_s)`` the rate
    is ``cfg.arrival_rate_rps``; inside it is multiplied by
    ``flash_factor``.  Thinning against the peak rate keeps the process
    exact across the boundary (no gap straddles two rates).
    """
    if flash_factor < 1.0:
        raise ValueError("flash_factor must be >= 1")
    if flash_duration_s <= 0 or flash_start_s < 0:
        raise ValueError("flash window must have positive duration and start >= 0")
    rng = rng or np.random.default_rng(cfg.seed)
    lam_max = cfg.arrival_rate_rps * flash_factor
    requests: list[Request] = []
    now = 0.0
    while len(requests) < cfg.num_requests:
        now += float(rng.exponential(1.0 / lam_max))
        in_flash = flash_start_s <= now < flash_start_s + flash_duration_s
        lam = lam_max if in_flash else cfg.arrival_rate_rps
        if rng.random() < lam / lam_max:
            requests.append(
                Request(len(requests), now, cfg.prompt_len, cfg.generate_len)
            )
    return requests


def make_fleet_requests(
    base: Sequence[Request],
    fleet: FleetConfig,
    rng: np.random.Generator | None = None,
    regime_weight_at: Callable[[float], Sequence[float]] | None = None,
) -> list[FleetRequest]:
    """Label an arrival sequence with regimes and priority classes.

    ``regime_weight_at(t)`` returns the regime mixture probabilities at
    arrival time ``t`` (length ``fleet.num_regimes``); omitted, the mix is
    uniform and stationary.  Priorities are Bernoulli draws at
    ``fleet.interactive_fraction`` (class 0 = interactive, 1 = batch).
    """
    rng = rng or np.random.default_rng(0)
    out: list[FleetRequest] = []
    k = fleet.num_regimes
    for q in base:
        if k == 1:
            regime = 0
        elif regime_weight_at is None:
            regime = int(rng.integers(k))
        else:
            w = np.asarray(regime_weight_at(q.arrival_s), dtype=np.float64)
            if w.shape != (k,) or w.min() < 0 or not np.isclose(w.sum(), 1.0):
                raise ValueError(
                    f"regime_weight_at must return {k} probabilities summing to 1"
                )
            regime = int(rng.choice(k, p=w))
        priority = 0 if rng.random() < fleet.interactive_fraction else 1
        out.append(
            FleetRequest(
                req_id=q.req_id,
                arrival_s=q.arrival_s,
                prompt_len=q.prompt_len,
                generate_len=q.generate_len,
                regime=regime,
                priority=priority,
            )
        )
    return out
