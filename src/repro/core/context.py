"""Token context coherence (paper Section IV-A, Fig 4).

Vanilla expert parallelism keeps each request's context on one GPU (data
parallelism), forcing every token back to its home GPU after each MoE layer.
ExFlow instead replicates all contexts everywhere:

* **before inference** — one AllGather of every GPU's prompt contexts;
* **after each iteration** — one AllGather of the newly generated tokens.

A :class:`ContextStore` book-keeps each GPU's view of every request's
context length, exposes the AllGather payload sizes the engine charges, and
asserts the coherence invariant that justifies dropping the combine
Alltoall: a token may attend on *any* GPU only if that GPU's view of its
request is complete.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ContextStore", "CoherenceError"]


class CoherenceError(RuntimeError):
    """Raised when an operation requires context the holding GPU lacks."""


class ContextStore:
    """Per-GPU view of every request's context length.

    Parameters
    ----------
    num_gpus:
        Expert-parallel group size.
    requests_per_gpu:
        Requests homed on each GPU (data-parallel shard sizes; the paper's
        ``g_i`` may differ per GPU — pass an array for that).

    Notes
    -----
    State is a (num_gpus, num_requests) matrix ``view_len`` where entry
    ``(g, r)`` is how many tokens of request ``r``'s context GPU ``g``
    holds, plus the true length per request.  Vanilla mode never gathers,
    so off-home entries stay at zero.
    """

    def __init__(self, num_gpus: int, requests_per_gpu: int | np.ndarray) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        per_gpu = np.broadcast_to(
            np.asarray(requests_per_gpu, dtype=np.int64), (num_gpus,)
        ).copy()
        if (per_gpu < 0).any():
            raise ValueError("requests_per_gpu must be non-negative")
        self.num_gpus = num_gpus
        self.requests_per_gpu = per_gpu
        self.num_requests = int(per_gpu.sum())
        self.home_gpu = np.repeat(np.arange(num_gpus), per_gpu)
        self.true_len = np.zeros(self.num_requests, dtype=np.int64)
        self.view_len = np.zeros((num_gpus, self.num_requests), dtype=np.int64)

    # -- lifecycle ----------------------------------------------------------

    def ingest_prompts(self, prompt_len: int | np.ndarray) -> None:
        """Place each request's prompt on its home GPU only."""
        lens = np.broadcast_to(
            np.asarray(prompt_len, dtype=np.int64), (self.num_requests,)
        )
        if (lens <= 0).any():
            raise ValueError("prompt lengths must be positive")
        self.true_len = lens.copy()
        self.view_len[:] = 0
        self.view_len[self.home_gpu, np.arange(self.num_requests)] = lens

    def allgather_contexts(self) -> np.ndarray:
        """Replicate all contexts everywhere; returns per-GPU gathered tokens.

        Return value is the (num_gpus,) count of context tokens each GPU
        *contributed* (its own requests' un-shared tokens) — the AllGather
        payload unit the engine converts to bytes.
        """
        contributed = np.zeros(self.num_gpus, dtype=np.int64)
        own = self.view_len[self.home_gpu, np.arange(self.num_requests)]
        np.add.at(contributed, self.home_gpu, own)
        self.view_len[:] = self.true_len[None, :]
        return contributed

    def append_generated(self, tokens_per_request: int | np.ndarray = 1) -> None:
        """Each request generates tokens on its home GPU (pre-gather state)."""
        new = np.broadcast_to(
            np.asarray(tokens_per_request, dtype=np.int64), (self.num_requests,)
        )
        if (new < 0).any():
            raise ValueError("token counts must be non-negative")
        self.true_len = self.true_len + new
        self.view_len[self.home_gpu, np.arange(self.num_requests)] += new

    def allgather_step(self) -> np.ndarray:
        """Post-iteration AllGather of newly generated tokens.

        Returns the (num_gpus,) newly contributed token counts — with one
        token per request per iteration this is ``requests_per_gpu``.
        """
        missing = self.true_len[None, :] - self.view_len
        if (missing < 0).any():
            raise AssertionError("view exceeded true context length")
        contributed = np.zeros(self.num_gpus, dtype=np.int64)
        own_missing_elsewhere = self.true_len - np.min(self.view_len, axis=0)
        # contribution = tokens of own requests not yet visible everywhere
        np.add.at(contributed, self.home_gpu, own_missing_elsewhere)
        self.view_len[:] = self.true_len[None, :]
        return contributed

    # -- invariants ----------------------------------------------------------

    def is_coherent(self) -> bool:
        """True iff every GPU sees every request's full context."""
        return bool((self.view_len == self.true_len[None, :]).all())

    def can_attend(self, gpu: int, request: int) -> bool:
        """May ``request``'s token attend on ``gpu`` right now?"""
        return bool(self.view_len[gpu, request] == self.true_len[request])

    def require_attend(self, gpu: int, request: int) -> None:
        """Raise :class:`CoherenceError` unless attention is legal on ``gpu``.

        This is the check vanilla expert parallelism fails on foreign GPUs —
        the reason it needs the combine Alltoall.
        """
        if not self.can_attend(gpu, request):
            raise CoherenceError(
                f"GPU {gpu} holds {self.view_len[gpu, request]} of request "
                f"{request}'s {self.true_len[request]} context tokens; "
                "attention requires the full context"
            )
