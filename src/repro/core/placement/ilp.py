"""Integer-programming placement (the paper's formulas 8-12).

The paper minimises total token re-routing ``sum_k sum_j R_{k,j}`` subject
to load balance (9), exclusive ownership (10) and the crossing indicators
(11)/(12).  Aggregating identical tokens, the objective depends only on the
transition-count matrices ``W_j[i, p]`` = tokens moving expert ``i`` (layer
j) -> expert ``p`` (layer j+1), so the token-level ILP collapses to an
expert-level quadratic assignment, which we solve two ways:

* :func:`joint_ilp_placement` — the faithful joint formulation via
  ``scipy.optimize.milp`` (HiGHS) with the standard linearisation of the
  same-GPU product terms.  Exact, but the variable count grows as
  ``L * E^2 * G`` — intended for small instances and for validating the
  scalable solver below.
* :func:`ilp_placement` — layer-chained exact assignments: given layer
  ``j``'s placement, the optimal layer ``j+1`` assignment under capacity
  constraints is a transportation problem, solved *exactly* by expanding
  each GPU into ``C`` slots and running the Hungarian algorithm
  (``scipy.optimize.linear_sum_assignment``).  Coordinate-descent sweeps
  (re-solving each layer against both fixed neighbours) then recover most
  of the gap to the joint optimum; the ablation bench quantifies it.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import LinearConstraint, linear_sum_assignment, milp
from scipy.optimize import Bounds

from repro.core.placement.base import Placement
from repro.trace.events import RoutingTrace

__all__ = ["assignment_solve", "ilp_placement", "joint_ilp_placement", "chain_objective"]


def assignment_solve(benefit: np.ndarray, num_groups: int) -> np.ndarray:
    """Optimal capacity-constrained assignment of experts to groups.

    ``benefit[i, p]`` is the affinity mass gained by putting expert ``i``
    on group (GPU or node) ``p``; every group must take exactly
    ``E / num_groups`` experts.  Solved exactly by slot expansion + the
    Hungarian algorithm.  Returns (E,) group index per expert.
    """
    benefit = np.asarray(benefit, dtype=np.float64)
    e, p = benefit.shape
    if p != num_groups:
        raise ValueError(f"benefit has {p} columns, expected {num_groups}")
    if e % num_groups != 0:
        raise ValueError(f"{e} experts not divisible into {num_groups} groups")
    cap = e // num_groups
    # expand each group into `cap` identical slots -> square assignment
    expanded = np.repeat(benefit, cap, axis=1)  # (E, E)
    rows, cols = linear_sum_assignment(expanded, maximize=True)
    groups = cols // cap
    out = np.empty(e, dtype=np.int64)
    out[rows] = groups
    return out


def chain_objective(gpu_of: np.ndarray, weights: list[np.ndarray]) -> float:
    """Total non-crossing mass of a placement (higher is better).

    ``weights[j]`` is the (E, E) transition-count matrix between layers j
    and j+1; the objective sums ``W_j[i, p]`` over pairs placed on the same
    group.  Minimising crossings (formula 8) == maximising this.
    """
    total = 0.0
    for j, w in enumerate(weights):
        same = gpu_of[j][:, None] == gpu_of[j + 1][None, :]
        total += float(w[same].sum())
    return total


def _transition_weights(trace: RoutingTrace) -> list[np.ndarray]:
    return [
        trace.transition_counts(j).astype(np.float64)
        for j in range(trace.num_layers - 1)
    ]


def ilp_placement(
    trace: RoutingTrace,
    num_gpus: int,
    sweeps: int = 3,
    groups: int | None = None,
) -> Placement:
    """Scalable near-optimal placement by chained exact assignments.

    Parameters
    ----------
    trace:
        Profiled routing trace (defines layer count, expert count and the
        transition weights).
    num_gpus:
        Expert-parallel group size G.
    sweeps:
        Coordinate-descent passes after the initial forward chain.  Each
        pass re-solves every layer's assignment against both fixed
        neighbours; 0 disables refinement.
    groups:
        Internal override of the group count (used by the staged solver to
        run the same machinery at node granularity).
    """
    g = groups or num_gpus
    e, L = trace.num_experts, trace.num_layers
    if e % g != 0:
        raise ValueError(f"{e} experts not divisible across {g} groups")
    weights = _transition_weights(trace)

    gpu_of = np.empty((L, e), dtype=np.int64)
    # layer 0 seeds the chain: group experts that share successors using the
    # symmetrised co-successor similarity of W_0 via a greedy round-robin on
    # total outgoing mass (cheap, refined by the sweeps below).
    gpu_of[0] = np.arange(e) % g if L == 1 else _seed_layer(weights[0], g)

    for j in range(1, L):
        w = weights[j - 1]
        benefit = _incoming_benefit(w, gpu_of[j - 1], g)
        gpu_of[j] = assignment_solve(benefit, g)

    for _ in range(max(sweeps, 0)):
        improved = False
        before = chain_objective(gpu_of, weights)
        for j in range(L):
            benefit = np.zeros((e, g))
            if j > 0:
                benefit += _incoming_benefit(weights[j - 1], gpu_of[j - 1], g)
            if j < L - 1:
                benefit += _outgoing_benefit(weights[j], gpu_of[j + 1], g)
            if j == 0 and L == 1:
                break
            gpu_of[j] = assignment_solve(benefit, g)
        improved = chain_objective(gpu_of, weights) > before + 1e-9
        if not improved:
            break

    return Placement(gpu_of, g, strategy="ilp-chain")


def _seed_layer(w0: np.ndarray, g: int) -> np.ndarray:
    """Initial layer-0 grouping: cluster experts with similar successor rows.

    Experts whose W_0 rows point at the same successors should share a GPU
    so the next layer's assignment can capture both.  We use a greedy
    balanced agglomeration on row cosine similarity — exactness is not
    needed here because the sweeps re-solve layer 0 afterwards.
    """
    e = w0.shape[0]
    cap = e // g
    norms = np.linalg.norm(w0, axis=1, keepdims=True)
    rows = w0 / np.where(norms > 0, norms, 1.0)
    sim = rows @ rows.T
    np.fill_diagonal(sim, -np.inf)

    unassigned = set(range(e))
    groups = np.full(e, -1, dtype=np.int64)
    for p in range(g):
        # seed with the heaviest remaining expert
        seed = max(unassigned, key=lambda i: w0[i].sum())
        members = [seed]
        unassigned.remove(seed)
        while len(members) < cap:
            score = sim[:, members].sum(axis=1)
            best = max(unassigned, key=score.__getitem__)
            members.append(best)
            unassigned.remove(best)
        groups[members] = p
    return groups


def _incoming_benefit(w: np.ndarray, prev_groups: np.ndarray, g: int) -> np.ndarray:
    """benefit[i', p] = mass flowing into expert i' from experts on group p."""
    e = w.shape[1]
    benefit = np.zeros((e, g))
    np.add.at(benefit.T, prev_groups, w)  # benefit.T[p] += sum of w rows on p
    return benefit


def _outgoing_benefit(w: np.ndarray, next_groups: np.ndarray, g: int) -> np.ndarray:
    """benefit[i, p] = mass flowing from expert i to experts on group p."""
    e = w.shape[0]
    benefit = np.zeros((e, g))
    np.add.at(benefit.T, next_groups, w.T)
    return benefit


def joint_ilp_placement(
    trace: RoutingTrace,
    num_gpus: int,
    time_limit_s: float = 30.0,
) -> Placement:
    """Exact joint ILP over all layers (formulas 8-12 via HiGHS).

    Variables: binary ``x[j, i, p]`` (expert i of layer j on GPU p) and
    continuous ``y[j, i, i', p]`` in [0, 1] linearising the same-GPU product
    ``x[j, i, p] * x[j+1, i', p]``; the objective maximises kept mass
    ``sum w_j[i, i'] * y`` (equivalent to minimising formula 8's crossing
    count).  Only pairs with non-zero weight get y variables, which keeps
    realistic instances small (affinity makes W sparse).

    Raises ``RuntimeError`` if HiGHS fails to produce a feasible solution
    within the time limit.
    """
    e, L, g = trace.num_experts, trace.num_layers, num_gpus
    if e % g != 0:
        raise ValueError(f"{e} experts not divisible across {g} GPUs")
    cap = e // g
    weights = _transition_weights(trace)

    num_x = L * e * g

    def xid(j: int, i: int, p: int) -> int:
        return (j * e + i) * g + p

    # enumerate y variables only for observed transitions
    y_index: dict[tuple[int, int, int, int], int] = {}
    y_weight: list[float] = []
    for j, w in enumerate(weights):
        src, dst = np.nonzero(w)
        for i, ip in zip(src.tolist(), dst.tolist(), strict=True):
            for p in range(g):
                y_index[(j, i, ip, p)] = num_x + len(y_weight)
                y_weight.append(float(w[i, ip]))

    n_vars = num_x + len(y_weight)
    c = np.zeros(n_vars)
    for idx in y_index.values():
        c[idx] = -y_weight[idx - num_x]  # milp minimises; negate to maximise

    rows_a: list[int] = []
    cols_a: list[int] = []
    vals_a: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    def add_entry(r: int, col: int, val: float) -> None:
        rows_a.append(r)
        cols_a.append(col)
        vals_a.append(val)

    # (10) each expert on exactly one GPU
    for j in range(L):
        for i in range(e):
            for p in range(g):
                add_entry(row, xid(j, i, p), 1.0)
            lb.append(1.0)
            ub.append(1.0)
            row += 1

    # (9) load balance: each GPU holds exactly cap experts per layer
    for j in range(L):
        for p in range(g):
            for i in range(e):
                add_entry(row, xid(j, i, p), 1.0)
            lb.append(float(cap))
            ub.append(float(cap))
            row += 1

    # linearisation: y <= x_src, y <= x_dst
    for (j, i, ip, p), idx in y_index.items():
        add_entry(row, idx, 1.0)
        add_entry(row, xid(j, i, p), -1.0)
        lb.append(-np.inf)
        ub.append(0.0)
        row += 1
        add_entry(row, idx, 1.0)
        add_entry(row, xid(j + 1, ip, p), -1.0)
        lb.append(-np.inf)
        ub.append(0.0)
        row += 1

    from scipy.sparse import csr_matrix

    a = csr_matrix((vals_a, (rows_a, cols_a)), shape=(row, n_vars))
    constraint = LinearConstraint(a, np.asarray(lb), np.asarray(ub))
    integrality = np.zeros(n_vars)
    integrality[:num_x] = 1  # x binary; y continuous (integral at optimum)
    bounds = Bounds(np.zeros(n_vars), np.ones(n_vars))

    res = milp(
        c=c,
        constraints=constraint,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": time_limit_s, "presolve": True},
    )
    if res.x is None:
        raise RuntimeError(f"joint ILP failed: {res.message}")

    x = res.x[:num_x].reshape(L, e, g)
    gpu_of = x.argmax(axis=2).astype(np.int64)
    return Placement(gpu_of, g, strategy="ilp-joint")
