"""Solver registry: name -> placement strategy.

Lets benchmarks, examples and the :class:`~repro.core.exflow.ExFlowOptimizer`
select a strategy by string, with uniform signature handling (some solvers
need the cluster hierarchy, some only the GPU count).
"""

from __future__ import annotations

from repro.config import ClusterConfig
from repro.core.placement.base import Placement
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.ilp import ilp_placement, joint_ilp_placement
from repro.core.placement.local_search import local_search_placement
from repro.core.placement.staged import staged_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.trace.events import RoutingTrace

__all__ = ["solve_placement", "SOLVERS"]

SOLVERS: tuple[str, ...] = (
    "vanilla",
    "greedy",
    "ilp",
    "ilp-joint",
    "staged",
    "local-search",
)


def solve_placement(
    strategy: str,
    trace: RoutingTrace,
    cluster: ClusterConfig,
    **kwargs: object,
) -> Placement:
    """Build a placement for ``cluster`` from ``trace`` with ``strategy``.

    ``vanilla`` ignores the trace (affinity-blind baseline); ``staged`` uses
    the cluster's node hierarchy; the rest operate at GPU granularity.
    Extra ``kwargs`` are forwarded to the underlying solver (e.g.
    ``sweeps`` for the chained ILP, ``time_limit_s`` for the joint ILP).
    """
    g = cluster.num_gpus
    if strategy == "vanilla":
        return vanilla_placement(trace.num_layers, trace.num_experts, g)
    if strategy == "greedy":
        return greedy_placement(trace, g, **kwargs)
    if strategy == "ilp":
        return ilp_placement(trace, g, **kwargs)
    if strategy == "ilp-joint":
        return joint_ilp_placement(trace, g, **kwargs)
    if strategy == "staged":
        return staged_placement(trace, cluster, **kwargs)
    if strategy == "local-search":
        return local_search_placement(trace, g, **kwargs)
    raise ValueError(f"unknown placement strategy {strategy!r}; choose from {SOLVERS}")
