"""Staged (topology-aware) placement — the paper's Section IV-C/D.

Inter-node links are an order of magnitude slower than NVLink, so crossings
are not all equal.  The paper optimises top-down with the *same* objective
at two granularities:

* **Stage 1** — treat each *node* as the placement unit (capacity C2 =
  experts per node) and minimise inter-node crossings.
* **Stage 2** — within each node, assign its stage-1 experts to the node's
  GPUs (capacity C1) minimising intra-node cross-GPU crossings, counting
  only transitions that stage 1 already kept inside the node.

Both stages reuse the chained-assignment machinery from
:mod:`repro.core.placement.ilp`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import ClusterConfig
from repro.core.placement.base import Placement
from repro.core.placement.ilp import assignment_solve, ilp_placement
from repro.trace.events import RoutingTrace

__all__ = ["staged_placement"]


def staged_placement(
    trace: RoutingTrace,
    cluster: ClusterConfig,
    sweeps: int = 3,
) -> Placement:
    """Two-stage node-then-GPU placement on ``cluster``'s hierarchy.

    Falls back to single-stage GPU placement when the cluster has one node
    (no inter-node tier to protect) or one GPU per node (stage 2 trivial).
    """
    e, L = trace.num_experts, trace.num_layers
    g = cluster.num_gpus
    if e % g != 0:
        raise ValueError(f"{e} experts not divisible across {g} GPUs")

    if cluster.num_nodes == 1 or cluster.gpus_per_node == 1:
        # relabel the provenance only: dataclasses.replace keeps every other
        # Placement field (num_gpus, gpu_of, and anything added later)
        # intact, where a hand-rebuilt Placement(...) would silently drop
        # new metadata fields on this fallback path
        flat = ilp_placement(trace, g, sweeps=sweeps)
        return dataclasses.replace(flat, strategy="staged")

    # -- stage 1: experts -> nodes (capacity C2 per layer) -------------------
    node_level = ilp_placement(trace, g, sweeps=sweeps, groups=cluster.num_nodes)
    node_of = node_level.gpu_of  # (L, E) node ids

    # -- stage 2: within each node, experts -> that node's GPUs --------------
    gpn = cluster.gpus_per_node
    cap1 = e // g
    weights = [trace.transition_counts(j).astype(np.float64) for j in range(L - 1)]
    gpu_of = np.empty((L, e), dtype=np.int64)

    for node in range(cluster.num_nodes):
        # chained assignment restricted to this node's experts per layer
        prev_local: np.ndarray | None = None  # local gpu of node's layer-j experts
        prev_members: np.ndarray | None = None
        for j in range(L):
            members = np.flatnonzero(node_of[j] == node)  # expert ids on this node
            if members.size != cap1 * gpn:
                raise AssertionError("stage-1 placement violated node capacity")
            if j == 0 or prev_members is None or prev_local is None:
                local = np.arange(members.size) // cap1
            else:
                w = weights[j - 1]
                sub = w[np.ix_(prev_members, members)]  # kept-in-node transitions
                benefit = np.zeros((members.size, gpn))
                np.add.at(benefit.T, prev_local, sub)
                local = assignment_solve(benefit, gpn)
            gpu_of[j, members] = node * gpn + local
            prev_local, prev_members = local, members

    return Placement(gpu_of, g, strategy="staged")
