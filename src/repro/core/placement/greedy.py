"""Greedy affinity placement (the local heuristic the paper improves on).

Mirrors the strategy of formula (2) / Lina-style expert popularity: walk the
layers in order; for each expert of layer ``j+1``, greedily hand it to the
GPU whose layer-``j`` experts send it the most tokens, first-come
first-served by descending mass, respecting capacity.  No backtracking, no
global view — the reference point that motivates the ILP ("this only
guarantees a local optima", Section VI).
"""

from __future__ import annotations

import numpy as np

from repro.core.placement.base import Placement
from repro.trace.events import RoutingTrace

__all__ = ["greedy_placement"]


def greedy_placement(trace: RoutingTrace, num_gpus: int) -> Placement:
    """Chained greedy assignment by descending transition mass."""
    e, L = trace.num_experts, trace.num_layers
    if e % num_gpus != 0:
        raise ValueError(f"{e} experts not divisible across {num_gpus} GPUs")
    cap = e // num_gpus

    gpu_of = np.empty((L, e), dtype=np.int64)
    gpu_of[0] = np.arange(e) // cap  # contiguous seed, like the baseline

    for j in range(1, L):
        w = trace.transition_counts(j - 1).astype(np.float64)  # (E, E)
        benefit = np.zeros((e, num_gpus))
        np.add.at(benefit.T, gpu_of[j - 1], w)  # mass into expert i' from GPU p
        remaining = np.full(num_gpus, cap, dtype=np.int64)
        assigned = np.full(e, -1, dtype=np.int64)

        # visit (expert, gpu) pairs by descending benefit; the stable sort
        # pins tie order to ascending flat (expert, gpu) index — the default
        # introsort breaks equal-benefit ties differently across numpy
        # versions, which made tied placements non-reproducible
        order = np.argsort(-benefit, axis=None, kind="stable")
        for flat in order:
            i, p = divmod(int(flat), num_gpus)
            if assigned[i] >= 0 or remaining[p] == 0:
                continue
            assigned[i] = p
            remaining[p] -= 1

        # any experts with zero observed traffic: fill remaining capacity
        for i in np.flatnonzero(assigned < 0):
            p = int(np.argmax(remaining))
            assigned[i] = p
            remaining[p] -= 1
        gpu_of[j] = assigned

    return Placement(gpu_of, num_gpus, strategy="greedy")
