"""The DeepSpeed-MoE baseline placement: rank-contiguous, affinity-blind.

DeepSpeed's expert parallelism shards each layer's experts contiguously by
global rank: GPU ``g`` holds experts ``[g*C, (g+1)*C)`` at *every* layer
("the baseline Deepspeed framework does not have any optimization on the
placement of inter-layer experts", Section V-C).  Tokens therefore cross
GPUs with probability ``1 - C/E`` per layer under memoryless routing — the
quantity ExFlow's placement attacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement.base import Placement

__all__ = ["vanilla_placement"]


def vanilla_placement(num_layers: int, num_experts: int, num_gpus: int) -> Placement:
    """Rank-contiguous layout, identical at every layer.

    Note that identical per-layer layouts *do* make a transition local
    whenever consecutive experts share a contiguous block — the paper
    observes baseline locality is non-zero for exactly this reason ("tokens
    might find their experts on local GPUs even though these experts are
    not loaded in a topology-aware manner").
    """
    if num_experts % num_gpus != 0:
        raise ValueError(f"{num_experts} experts not divisible by {num_gpus} GPUs")
    per_gpu = num_experts // num_gpus
    row = np.arange(num_experts) // per_gpu
    return Placement(
        np.tile(row, (num_layers, 1)), num_gpus, strategy="vanilla"
    )
