"""Swap-based local search refinement of a placement.

An ablation reference: starting from any feasible placement, repeatedly
swap two experts of the same layer between GPUs whenever the swap increases
kept transition mass.  Feasibility (formulas 9/10) is preserved by
construction — swaps never change per-GPU counts.  First-improvement with
random swap order; stops after a full pass without improvement or when the
evaluation budget runs out.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement.base import Placement
from repro.core.placement.ilp import chain_objective
from repro.trace.events import RoutingTrace

__all__ = ["local_search_placement"]


def _swap_delta(
    gpu_of: np.ndarray,
    weights: list[np.ndarray],
    layer: int,
    a: int,
    b: int,
) -> float:
    """Objective change from swapping experts ``a`` and ``b`` at ``layer``.

    Only transitions incident to the two experts change, so the delta is
    computed from four matrix slices rather than a full re-evaluation.
    """
    ga, gb = gpu_of[layer, a], gpu_of[layer, b]
    if ga == gb:
        return 0.0
    delta = 0.0
    if layer > 0:
        w = weights[layer - 1]
        prev = gpu_of[layer - 1]
        # mass into a / b from each predecessor group
        delta += w[prev == gb, a].sum() - w[prev == ga, a].sum()
        delta += w[prev == ga, b].sum() - w[prev == gb, b].sum()
    if layer < gpu_of.shape[0] - 1:
        w = weights[layer]
        nxt = gpu_of[layer + 1]
        delta += w[a, nxt == gb].sum() - w[a, nxt == ga].sum()
        delta += w[b, nxt == ga].sum() - w[b, nxt == gb].sum()
    return float(delta)


def local_search_placement(
    trace: RoutingTrace,
    num_gpus: int,
    start: Placement | None = None,
    max_passes: int = 20,
    rng: np.random.Generator | None = None,
) -> Placement:
    """First-improvement swap search from ``start`` (default: contiguous)."""
    e, L = trace.num_experts, trace.num_layers
    if start is None:
        from repro.core.placement.vanilla import vanilla_placement

        start = vanilla_placement(L, e, num_gpus)
    if (start.num_layers, start.num_experts) != (L, e):
        raise ValueError("start placement does not match trace shape")

    rng = rng or np.random.default_rng(0)
    weights = [trace.transition_counts(j).astype(np.float64) for j in range(L - 1)]
    gpu_of = start.gpu_of.copy()

    pairs = [(a, b) for a in range(e) for b in range(a + 1, e)]
    for _ in range(max_passes):
        improved = False
        for layer in range(L):
            order = rng.permutation(len(pairs))
            for idx in order:
                a, b = pairs[idx]
                if gpu_of[layer, a] == gpu_of[layer, b]:
                    continue
                if _swap_delta(gpu_of, weights, layer, a, b) > 1e-12:
                    gpu_of[layer, a], gpu_of[layer, b] = (
                        gpu_of[layer, b],
                        gpu_of[layer, a],
                    )
                    improved = True
        if not improved:
            break

    result = Placement(gpu_of, num_gpus, strategy="local-search")
    # sanity: local search must never be worse than its starting point
    assert chain_objective(result.gpu_of, weights) >= chain_objective(
        start.gpu_of, weights
    ) - 1e-9
    return result
