"""Popularity-based expert replication (the Lina-style baseline).

The paper's Related Work contrasts ExFlow with Jiamin Li et al.'s approach:
compute each layer's most *popular* experts and place replicas of them on
every GPU, trading memory for locality ("they use extra memory to
accommodate these popular experts locally...  In our design, we do not need
such explicit replicas").  This module implements that baseline so the
trade-off can be measured: locality gained per replica of memory spent.

A :class:`ReplicatedPlacement` wraps a base :class:`Placement` with
per-layer replica sets; a token's transition is local if its next expert is
available on its current GPU either as the owned copy or as a replica.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, ModelConfig
from repro.core.placement.base import LocalityStats, Placement
from repro.core.placement.vanilla import vanilla_placement
from repro.trace.events import RoutingTrace

__all__ = [
    "ReplicatedPlacement",
    "popularity_replication",
    "replicated_locality",
    "validate_replication_memory",
]


@dataclass(frozen=True)
class ReplicatedPlacement:
    """A base placement plus universally replicated experts per layer.

    Attributes
    ----------
    base:
        The owning placement (one authoritative GPU per expert).
    replicated:
        ``replicated[j]`` is the array of expert ids of layer ``j`` that
        every GPU holds a local replica of (Lina replicates the globally
        popular experts on all ranks).
    """

    base: Placement
    replicated: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if len(self.replicated) != self.base.num_layers:
            raise ValueError("one replica set per layer required")
        cleaned = []
        for j, ids in enumerate(self.replicated):
            ids = np.unique(np.asarray(ids, dtype=np.int64))
            if ids.size and (ids.min() < 0 or ids.max() >= self.base.num_experts):
                raise ValueError(f"layer {j}: replica expert id out of range")
            cleaned.append(ids)
        object.__setattr__(self, "replicated", tuple(cleaned))

    @property
    def replicas_per_gpu_per_layer(self) -> float:
        """Average extra experts each GPU must store per layer."""
        return float(np.mean([ids.size for ids in self.replicated]))

    def memory_overhead_fraction(self) -> float:
        """Replica storage relative to the owned expert shard."""
        owned = self.base.experts_per_gpu
        return self.replicas_per_gpu_per_layer / owned

    def is_local(self, layer: int, expert: int, gpu: int) -> bool:
        """Is ``expert`` of ``layer`` servable on ``gpu`` without a hop?"""
        if self.base.gpu_of[layer, expert] == gpu:
            return True
        return bool(np.isin(expert, self.replicated[layer]))

    def memory_bytes_per_gpu(self, model: ModelConfig, dtype_bytes: int = 2) -> int:
        """Worst-case expert weight bytes any one GPU must hold.

        Every GPU stores its owned shard (``experts_per_gpu`` per layer —
        formula 9 makes that uniform) plus a copy of each layer's replica
        set *minus the replicas it already owns* (owning GPU and replica
        share one resident copy).  The worst case is the GPU whose owned
        experts overlap the replica sets least.
        """
        if (model.num_moe_layers, model.num_experts) != (
            self.base.num_layers,
            self.base.num_experts,
        ):
            raise ValueError("model architecture does not match placement shape")
        g = self.base.num_gpus
        overlap = np.zeros(g, dtype=np.int64)  # per GPU: replicas it owns anyway
        total = 0
        for j, ids in enumerate(self.replicated):
            total += self.base.experts_per_gpu + ids.size
            if ids.size:
                overlap += np.bincount(self.base.gpu_of[j][ids], minlength=g)
        resident = total - int(overlap.min())
        return resident * model.expert_bytes(dtype_bytes)


def validate_replication_memory(
    rep: ReplicatedPlacement,
    model: ModelConfig,
    cluster: ClusterConfig,
    dtype_bytes: int = 2,
) -> None:
    """Raise if the replica sets overflow a GPU's memory budget.

    Replication trades memory for locality; this is the guard that keeps
    the trade honest — a replica plan must still fit
    ``cluster.gpu_memory_bytes`` once the owned shard and every layer's
    replicated experts are resident.
    """
    if cluster.num_gpus != rep.base.num_gpus:
        raise ValueError(
            f"placement built for {rep.base.num_gpus} GPUs, cluster has "
            f"{cluster.num_gpus}"
        )
    need = rep.memory_bytes_per_gpu(model, dtype_bytes)
    if need > cluster.gpu_memory_bytes:
        raise ValueError(
            f"replicated expert shard needs {need / 2**30:.2f} GiB per GPU "
            f"({rep.replicas_per_gpu_per_layer:.1f} replicas/layer on top of "
            f"{rep.base.experts_per_gpu} owned experts) but the GPU has "
            f"{cluster.gpu_memory_bytes / 2**30:.2f} GiB"
        )


def popularity_replication(
    trace: RoutingTrace,
    num_gpus: int,
    replicas_per_layer: int,
    base: Placement | None = None,
) -> ReplicatedPlacement:
    """Replicate each layer's ``replicas_per_layer`` most popular experts.

    Popularity is the token count each expert receives in the profiling
    trace — exactly the statistic Lina's planner uses.  The base placement
    defaults to the DeepSpeed contiguous layout (replication papers keep
    the owning layout unchanged and add copies).
    """
    if replicas_per_layer < 0:
        raise ValueError("replicas_per_layer must be >= 0")
    if replicas_per_layer > trace.num_experts:
        raise ValueError("cannot replicate more experts than exist")
    base = base or vanilla_placement(trace.num_layers, trace.num_experts, num_gpus)
    if (base.num_layers, base.num_experts) != (trace.num_layers, trace.num_experts):
        raise ValueError("base placement does not match trace shape")

    replicated = []
    for j in range(trace.num_layers):
        hist = trace.layer_histogram(j)
        hot = np.argsort(-hist)[:replicas_per_layer]
        replicated.append(hot)
    return ReplicatedPlacement(base=base, replicated=tuple(replicated))


def replicated_locality(rep: ReplicatedPlacement, trace: RoutingTrace) -> LocalityStats:
    """Replay a trace under a replicated placement.

    A token served by a replica *stays on its current GPU*; otherwise it
    moves to the expert's owning GPU.  Vectorised: per layer, membership in
    the replica set is a table lookup.
    """
    base = rep.base
    if trace.num_layers != base.num_layers or trace.num_experts != base.num_experts:
        raise ValueError("trace does not match placement shape")
    n, L = trace.num_tokens, trace.num_layers
    if n == 0 or L < 2:
        return LocalityStats(1.0, 1.0, 0.0, 0.0, 0)

    replica_mask = np.zeros((L, base.num_experts), dtype=bool)
    for j, ids in enumerate(rep.replicated):
        replica_mask[j, ids] = True

    # walk layers: current GPU evolves; replicas absorb moves
    cur = base.gpu_of[0][trace.paths[:, 0]]  # layer-0 dispatch fixes location
    stays = 0
    total = 0
    for j in range(1, L):
        experts = trace.paths[:, j]
        local = replica_mask[j, experts] | (base.gpu_of[j][experts] == cur)
        stays += int(local.sum())
        total += n
        cur = np.where(local, cur, base.gpu_of[j][experts])

    stay_fraction = stays / total
    return LocalityStats(
        gpu_stay_fraction=stay_fraction,
        node_stay_fraction=stay_fraction,  # node stats need a cluster; GPU bound suffices
        crossings_per_token=(total - stays) / n,
        inter_node_crossings_per_token=0.0,
        transitions=total,
    )
