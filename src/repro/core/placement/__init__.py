"""Expert-to-GPU placement strategies.

A placement assigns every ``(layer, expert)`` pair to a GPU rank under the
load-balance constraint of formula (9): each GPU holds exactly ``E / G``
experts per layer.  Strategies:

* :func:`vanilla_placement` — DeepSpeed-MoE's rank-contiguous layout (the
  baseline in every figure).
* :func:`greedy_placement` — chained per-layer greedy grouping.
* :func:`ilp_placement` — per-layer-pair optimal assignment via integer
  programming / Hungarian expansion (the paper's formulas 8-12), chained
  across layers; plus an exact joint formulation for small instances.
* :func:`staged_placement` — the paper's two-stage topology-aware variant:
  stage 1 minimises inter-node crossings, stage 2 minimises intra-node
  crossings given stage 1 (Section IV-C/D).
* :func:`local_search_placement` — swap-based refinement used as an
  ablation reference.
"""

from repro.core.placement.base import Placement, placement_locality
from repro.core.placement.vanilla import vanilla_placement
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.ilp import ilp_placement, joint_ilp_placement, assignment_solve
from repro.core.placement.staged import staged_placement
from repro.core.placement.local_search import local_search_placement
from repro.core.placement.replication import (
    ReplicatedPlacement,
    popularity_replication,
    replicated_locality,
    validate_replication_memory,
)
from repro.core.placement.registry import solve_placement, SOLVERS

__all__ = [
    "Placement",
    "placement_locality",
    "vanilla_placement",
    "greedy_placement",
    "ilp_placement",
    "joint_ilp_placement",
    "assignment_solve",
    "staged_placement",
    "local_search_placement",
    "ReplicatedPlacement",
    "popularity_replication",
    "replicated_locality",
    "validate_replication_memory",
    "solve_placement",
    "SOLVERS",
]
