"""Placement representation, validation and locality metrics.

A :class:`Placement` is the solved ``x^p_{i,j}`` of the paper's ILP
(formulas 8-12), stored densely as an (L, E) integer matrix mapping each
(layer, expert) to a GPU rank.  Validity means exactly the ILP's
constraints: every expert owned by exactly one GPU (formula 10 — implicit
in the dense encoding) and every GPU holding exactly ``E / G`` experts per
layer (formula 9).

:func:`placement_locality` replays a routing trace under a placement and
reports the token-locality statistics behind Figs 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import ClusterConfig
from repro.trace.events import RoutingTrace

__all__ = ["Placement", "placement_locality", "LocalityStats"]


@dataclass(frozen=True)
class Placement:
    """Expert-to-GPU assignment for every MoE layer.

    Attributes
    ----------
    gpu_of:
        (L, E) int array; ``gpu_of[j, i]`` is the GPU rank holding expert
        ``i`` of layer ``j``.
    num_gpus:
        Expert-parallel group size G.
    strategy:
        Label of the solver that produced this placement.
    """

    gpu_of: np.ndarray
    num_gpus: int
    strategy: str = ""

    def __post_init__(self) -> None:
        gpu_of = np.asarray(self.gpu_of, dtype=np.int64)
        if gpu_of.ndim != 2:
            raise ValueError(f"gpu_of must be (layers, experts), got {gpu_of.shape}")
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        L, E = gpu_of.shape
        if E % self.num_gpus != 0:
            raise ValueError(f"{E} experts not divisible across {self.num_gpus} GPUs")
        if gpu_of.size and (gpu_of.min() < 0 or gpu_of.max() >= self.num_gpus):
            raise ValueError("GPU rank out of range")
        cap = E // self.num_gpus
        counts = np.stack([np.bincount(row, minlength=self.num_gpus) for row in gpu_of])
        if not (counts == cap).all():
            bad = np.argwhere(counts != cap)[0]
            raise ValueError(
                f"load-balance violated: layer {bad[0]} GPU {bad[1]} holds "
                f"{counts[bad[0], bad[1]]} experts, expected {cap} (formula 9)"
            )
        object.__setattr__(self, "gpu_of", gpu_of)

    # -- shape -----------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return self.gpu_of.shape[0]

    @property
    def num_experts(self) -> int:
        return self.gpu_of.shape[1]

    @property
    def experts_per_gpu(self) -> int:
        return self.num_experts // self.num_gpus

    # -- queries ------------------------------------------------------------------

    def experts_on_gpu(self, layer: int, gpu: int) -> np.ndarray:
        """Expert ids held by ``gpu`` at ``layer``."""
        return np.flatnonzero(self.gpu_of[layer] == gpu)

    def node_of(self, cluster: ClusterConfig) -> np.ndarray:
        """(L, E) node index of each expert under ``cluster``'s layout."""
        if cluster.num_gpus != self.num_gpus:
            raise ValueError(
                f"placement built for {self.num_gpus} GPUs, cluster has {cluster.num_gpus}"
            )
        return self.gpu_of // cluster.gpus_per_node

    def assignment_matrix(self, layer: int) -> np.ndarray:
        """The ILP's binary ``x^p_{i,j}`` for one layer as (G, E)."""
        x = np.zeros((self.num_gpus, self.num_experts), dtype=np.int8)
        x[self.gpu_of[layer], np.arange(self.num_experts)] = 1
        return x

    def relabel_layer(self, layer: int, new_gpus: np.ndarray) -> "Placement":
        """Return a copy with one layer's assignment replaced."""
        gpu_of = self.gpu_of.copy()
        gpu_of[layer] = new_gpus
        return Placement(gpu_of, self.num_gpus, self.strategy)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            Path(path),
            gpu_of=self.gpu_of,
            num_gpus=np.int64(self.num_gpus),
            strategy=np.bytes_(self.strategy.encode()),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Placement":
        with np.load(Path(path)) as data:
            return cls(
                gpu_of=data["gpu_of"],
                num_gpus=int(data["num_gpus"]),
                strategy=bytes(data["strategy"]).decode(),
            )


@dataclass(frozen=True)
class LocalityStats:
    """Token-locality outcome of replaying a trace under a placement.

    ``gpu_stay_fraction`` — fraction of layer transitions where the token's
    next expert lives on its *current* GPU (the bars of Fig 7).
    ``node_stay_fraction`` — same at node granularity (Fig 8).
    ``crossings_per_token`` — mean cross-GPU moves per token across the
    whole model (the quantity formula 8 minimises).
    """

    gpu_stay_fraction: float
    node_stay_fraction: float
    crossings_per_token: float
    inter_node_crossings_per_token: float
    transitions: int


def placement_locality(
    placement: Placement,
    trace: RoutingTrace,
    cluster: ClusterConfig | None = None,
) -> LocalityStats:
    """Replay ``trace`` under ``placement`` and measure locality.

    For every token and layer pair (j, j+1), the token sits on the GPU of
    its layer-j expert; the transition is local iff its layer-(j+1) expert
    is on the same GPU (same node for the node statistic).  Fully
    vectorised over the whole (N, L) path matrix.
    """
    if trace.num_layers != placement.num_layers:
        raise ValueError(
            f"trace has {trace.num_layers} layers, placement {placement.num_layers}"
        )
    if trace.num_experts != placement.num_experts:
        raise ValueError("trace/placement disagree on expert count")
    if trace.num_layers < 2 or trace.num_tokens == 0:
        return LocalityStats(1.0, 1.0, 0.0, 0.0, 0)

    layers = np.arange(trace.num_layers)
    gpu_path = placement.gpu_of[layers[None, :], trace.paths]  # (N, L)
    same_gpu = gpu_path[:, 1:] == gpu_path[:, :-1]
    transitions = same_gpu.size

    if cluster is not None:
        node_path = gpu_path // cluster.gpus_per_node
        same_node = node_path[:, 1:] == node_path[:, :-1]
    else:
        same_node = same_gpu

    n_tokens = trace.num_tokens
    return LocalityStats(
        gpu_stay_fraction=float(same_gpu.mean()),
        node_stay_fraction=float(same_node.mean()),
        crossings_per_token=float((~same_gpu).sum() / n_tokens),
        inter_node_crossings_per_token=float((~same_node).sum() / n_tokens),
        transitions=int(transitions),
    )
