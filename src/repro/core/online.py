"""Online drift-aware re-placement: monitor, trigger, re-solve, migrate.

The paper solves expert placement once, offline, from a static profiling
trace.  Under live traffic the affinity structure drifts (the paper's own
Fig 12 shows it evolving across training, and Tab 3 shows it shifting
across corpora), so a placement that was optimal at deploy time slowly
stops keeping tokens local.  This module closes the loop:

* :func:`kept_mass_fraction` — the monitored quantity: the fraction of
  (decayed, streaming) transition mass a placement keeps on-GPU.  This is
  exactly the placement objective (formula 8's complement) evaluated on the
  estimator's current window instead of the offline profile.
* :class:`ReplacementPolicy` — when to act: a relative kept-mass
  degradation threshold versus the post-solve baseline, an effective-sample
  floor before the estimate is trusted, a cooldown between migrations, and
  an optional forced periodic cadence (``repro serve --replace-every``).
* :class:`OnlineReplacer` — the actor: warm-starts
  :func:`~repro.core.placement.local_search.local_search_placement` from the
  *current* placement (swap search converges in a few passes when the drift
  is incremental), accepts the new placement only if it actually improves
  kept mass, and prices the expert-weight migration with
  :func:`plan_migration` so the serving timeline pays for the move.

The migration cost model is explicit: every expert whose GPU changes ships
``ModelConfig.expert_bytes()`` over the :class:`~repro.config.LinkSpec`
between old and new rank (alpha-beta transfer time); transfers serialize at
their endpoints, so the serving stall is the busiest GPU's total transfer
time.  Charging this against the latency timeline is what makes "replace
more often" a real trade-off instead of a free win.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, ModelConfig
from repro.core.affinity import StreamingAffinityEstimator
from repro.core.placement.base import Placement
from repro.core.placement.local_search import local_search_placement
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "kept_mass_fraction",
    "model_kept_mass",
    "MigrationPlan",
    "plan_migration",
    "ReplacementPolicy",
    "ReplacementEvent",
    "OnlineReplacer",
]


def kept_mass_fraction(placement: Placement, counts: np.ndarray) -> float:
    """Fraction of transition mass ``placement`` keeps on one GPU.

    ``counts`` is an (L-1, E, E) transition-count stack (decayed streaming
    counts or offline profile counts).  Returns 1.0 for zero total mass —
    an empty window cannot witness any crossing.
    """
    counts = np.asarray(counts, dtype=np.float64)
    L = placement.num_layers
    if counts.shape != (L - 1, placement.num_experts, placement.num_experts):
        raise ValueError(
            f"counts shape {counts.shape} does not match placement "
            f"({L - 1}, {placement.num_experts}, {placement.num_experts})"
        )
    total = float(counts.sum())
    if total <= 0:
        return 1.0
    kept = 0.0
    for j in range(L - 1):
        same = placement.gpu_of[j][:, None] == placement.gpu_of[j + 1][None, :]
        kept += float(counts[j][same].sum())
    return kept / total


def model_kept_mass(placement: Placement, routing: MarkovRoutingModel) -> float:
    """Ground-truth kept-transition mass of ``placement`` under ``routing``.

    The analytic counterpart of :func:`kept_mass_fraction`: transition mass
    between layers j and j+1 is the model's transition matrix weighted by
    its layer-j marginal, so the result is the exact expected on-GPU
    fraction — what the streaming estimate converges to under stationary
    traffic.  Benchmarks use this to score placements against the *true*
    instantaneous regime, independent of estimator lag.
    """
    if routing.num_layers != placement.num_layers:
        raise ValueError(
            f"routing has {routing.num_layers} layers, placement {placement.num_layers}"
        )
    if routing.num_experts != placement.num_experts:
        raise ValueError("routing/placement disagree on expert count")
    kept = 0.0
    dist = (
        routing.prior
        if routing.prior is not None
        else np.full(routing.num_experts, 1.0 / routing.num_experts)
    )
    for j in range(placement.num_layers - 1):
        mass = dist[:, None] * routing.transitions[j]
        same = placement.gpu_of[j][:, None] == placement.gpu_of[j + 1][None, :]
        kept += float(mass[same].sum())
        dist = dist @ routing.transitions[j]
    return kept / (placement.num_layers - 1)


@dataclass(frozen=True)
class MigrationPlan:
    """Cost account of moving expert weights between two placements."""

    moved_experts: int
    moved_bytes: int
    stall_s: float

    @property
    def is_noop(self) -> bool:
        return self.moved_experts == 0


def plan_migration(
    old: Placement,
    new: Placement,
    cluster: ClusterConfig,
    model: ModelConfig,
    dtype_bytes: int = 2,
) -> MigrationPlan:
    """Price the weight movement from ``old`` to ``new``.

    Every (layer, expert) whose GPU rank changes ships one expert FFN
    (``model.expert_bytes(dtype_bytes)``) from the old rank to the new one
    over the link tier between them.  Bytes on one directed GPU pair share
    a single alpha-beta transfer (one message, contiguous payload);
    transfers serialize at their endpoint GPUs (each GPU's NIC/copy engine
    handles one transfer at a time, sends and receives alike), so the
    serving stall is the busiest endpoint's summed transfer time — disjoint
    pairs move in parallel.
    """
    if old.gpu_of.shape != new.gpu_of.shape:
        raise ValueError("placements must cover the same (layers, experts) grid")
    if old.num_gpus != new.num_gpus or old.num_gpus != cluster.num_gpus:
        raise ValueError("placements/cluster disagree on GPU count")
    if old.num_experts != model.num_experts or old.num_layers != model.num_moe_layers:
        raise ValueError("placement shape does not match model architecture")

    moved = old.gpu_of != new.gpu_of
    n_moved = int(moved.sum())
    expert_bytes = model.expert_bytes(dtype_bytes)
    if n_moved == 0:
        return MigrationPlan(0, 0, 0.0)

    src = old.gpu_of[moved]
    dst = new.gpu_of[moved]
    g = cluster.num_gpus
    pair_counts = np.bincount(src * g + dst, minlength=g * g).reshape(g, g)

    busy = np.zeros(g, dtype=np.float64)
    for a, b in zip(*np.nonzero(pair_counts), strict=True):
        nbytes = int(pair_counts[a, b]) * expert_bytes
        t = cluster.link_between(int(a), int(b)).transfer_time(nbytes)
        busy[a] += t
        busy[b] += t
    return MigrationPlan(n_moved, n_moved * expert_bytes, float(busy.max()))


@dataclass(frozen=True)
class ReplacementPolicy:
    """When the online loop is allowed (or forced) to re-solve.

    Parameters
    ----------
    check_every_steps:
        Monitor cadence: kept mass is evaluated every this many decode
        steps (the evaluation is O(L·E²) — cheap, but not per-token cheap).
    kept_mass_drop:
        Relative degradation triggering a re-solve: act when the current
        kept mass falls below ``baseline * (1 - kept_mass_drop)``, where
        the baseline is the kept mass measured right after the last solve
        (and ratcheted up if traffic later matches the placement better).
    min_effective_tokens:
        Floor on the estimator's decayed sample size before its estimate —
        and any re-solve from it — is trusted.
    cooldown_steps:
        Minimum decode steps between migrations (hysteresis: without it, a
        noisy estimate near the threshold would thrash placements and pay
        migration stalls for nothing).
    replace_every_steps:
        Optional forced cadence: re-solve every N steps regardless of the
        degradation trigger (the ``--replace-every`` CLI surface).  Forced
        solves still respect ``min_effective_tokens`` and still skip the
        migration when the re-solve finds nothing better.
    solver_passes:
        ``max_passes`` for the warm-started swap search.  Small values keep
        the online solve fast; warm-starting is what makes that enough.
    """

    check_every_steps: int = 8
    kept_mass_drop: float = 0.15
    min_effective_tokens: float = 256.0
    cooldown_steps: int = 32
    replace_every_steps: int | None = None
    solver_passes: int = 4

    def __post_init__(self) -> None:
        if self.check_every_steps < 1:
            raise ValueError("check_every_steps must be >= 1")
        if not 0.0 < self.kept_mass_drop < 1.0:
            raise ValueError("kept_mass_drop must be in (0, 1)")
        if self.min_effective_tokens < 0:
            raise ValueError("min_effective_tokens must be >= 0")
        if self.cooldown_steps < 0:
            raise ValueError("cooldown_steps must be >= 0")
        if self.replace_every_steps is not None and self.replace_every_steps < 1:
            raise ValueError("replace_every_steps must be >= 1 when set")
        if self.solver_passes < 1:
            raise ValueError("solver_passes must be >= 1")


@dataclass(frozen=True)
class ReplacementEvent:
    """One executed re-placement on the serving timeline."""

    step: int
    time_s: float
    kept_before: float
    kept_after: float
    moved_experts: int
    moved_bytes: int
    stall_s: float
    forced: bool


class OnlineReplacer:
    """Streaming estimator + policy + warm-started solver, as one actor.

    The serving loop calls :meth:`observe` with every decode step's routing
    decisions and :meth:`maybe_replace` at step boundaries; the replacer
    owns all re-placement state (kept-mass baseline, cooldown bookkeeping)
    and returns a (new placement, event) pair only when it actually
    migrated.
    """

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterConfig,
        policy: ReplacementPolicy | None = None,
        estimator: StreamingAffinityEstimator | None = None,
        halflife_tokens: float | None = None,
        dtype_bytes: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.policy = policy or ReplacementPolicy()
        if estimator is not None and halflife_tokens is not None:
            raise ValueError("pass either estimator or halflife_tokens, not both")
        if estimator is None:
            # the replacer owns estimator construction so every caller
            # (single-replica online loop, fleet replicas) shares one spelling
            estimator = (
                StreamingAffinityEstimator(
                    model.num_experts, model.num_moe_layers, halflife_tokens
                )
                if halflife_tokens is not None
                else StreamingAffinityEstimator(
                    model.num_experts, model.num_moe_layers
                )
            )
        self.estimator = estimator
        if (
            self.estimator.num_experts != model.num_experts
            or self.estimator.num_layers != model.num_moe_layers
        ):
            raise ValueError("estimator shape does not match model architecture")
        self.dtype_bytes = dtype_bytes
        self._rng = rng or np.random.default_rng(0)
        self._baseline_kept: float | None = None
        self._last_replace_step: int | None = None
        self.events: list[ReplacementEvent] = []

    # -- streaming observation -------------------------------------------------

    def observe(self, paths: np.ndarray) -> None:
        """Fold one decode step's (batch, layers) routing into the window."""
        self.estimator.update(paths)

    def current_kept_mass(self, placement: Placement) -> float:
        """Kept mass of ``placement`` under the estimator's current window."""
        return kept_mass_fraction(placement, self.estimator.counts_stack())

    # -- the trigger/solve/migrate step ---------------------------------------

    def maybe_replace(
        self, step: int, now_s: float, placement: Placement
    ) -> tuple[Placement, ReplacementEvent] | None:
        """Run one policy check; return (new placement, event) iff migrated.

        A check that triggers but whose re-solve cannot beat the current
        placement's kept mass migrates nothing (and pays nothing) — the
        placement simply wasn't the bottleneck.
        """
        pol = self.policy
        forced = (
            pol.replace_every_steps is not None
            and step > 0
            and step % pol.replace_every_steps == 0
        )
        # the forced cadence fires on its own schedule — it must not be
        # gated by the cheaper monitoring cadence, or "every N steps" would
        # silently become "every lcm(N, check_every_steps) steps"
        if not forced and step % pol.check_every_steps != 0:
            return None
        if self.estimator.effective_tokens < pol.min_effective_tokens:
            return None

        current = self.current_kept_mass(placement)
        if self._baseline_kept is None:
            # first trusted measurement anchors the degradation reference
            self._baseline_kept = current
        elif current > self._baseline_kept:
            self._baseline_kept = current  # ratchet: traffic re-matched

        degraded = current < self._baseline_kept * (1.0 - pol.kept_mass_drop)
        if not (forced or degraded):
            return None
        if (
            self._last_replace_step is not None
            and step - self._last_replace_step < pol.cooldown_steps
        ):
            return None

        trace = self.estimator.as_trace()
        refined = local_search_placement(
            trace,
            placement.num_gpus,
            start=placement,
            max_passes=pol.solver_passes,
            rng=self._rng,
        )
        kept_after = kept_mass_fraction(refined, self.estimator.counts_stack())
        self._last_replace_step = step  # solve attempts count toward cooldown
        if kept_after <= current + 1e-12:
            self._baseline_kept = current  # accept reality; stop re-triggering
            return None

        new_placement = dataclasses.replace(refined, strategy="online")
        migration = plan_migration(
            placement, new_placement, self.cluster, self.model, self.dtype_bytes
        )
        event = ReplacementEvent(
            step=step,
            time_s=now_s,
            kept_before=current,
            kept_after=kept_after,
            moved_experts=migration.moved_experts,
            moved_bytes=migration.moved_bytes,
            stall_s=migration.stall_s,
            forced=forced and not degraded,
        )
        self._baseline_kept = kept_after
        self.events.append(event)
        return new_placement, event
