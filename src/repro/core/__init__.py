"""ExFlow core: affinity modelling, expert placement, context coherence.

This package implements the paper's primary contribution:

* :mod:`repro.core.affinity` — inter-layer expert affinity statistics
  (formulas 1–6): conditional-probability matrices, multi-hop variants,
  combined GPU-set affinity and the scalar affinity metric tracked during
  training.
* :mod:`repro.core.placement` — expert-to-GPU placement strategies, from
  the DeepSpeed round-robin baseline to the integer-programming solution of
  formulas 8–12 and its staged (node-first) variant.
* :mod:`repro.core.context` — token context coherence management (the
  design that removes the second Alltoall of every MoE layer).
* :mod:`repro.core.online` — online drift-aware re-placement: streaming
  kept-mass monitoring, the replacement trigger policy, warm-started
  re-solves and the explicit expert-migration cost model.
* :mod:`repro.core.exflow` — the :class:`ExFlowOptimizer` facade tying it
  all together: trace in, placement + engine configuration out.
"""

from repro.core.affinity import (
    affinity_matrix,
    multi_hop_affinity,
    set_affinity,
    staged_set_affinity,
    scaled_affinity,
    affinity_concentration,
    StreamingAffinityEstimator,
)
from repro.core.placement import (
    Placement,
    ReplicatedPlacement,
    vanilla_placement,
    greedy_placement,
    ilp_placement,
    staged_placement,
    local_search_placement,
    popularity_replication,
    replicated_locality,
    solve_placement,
    validate_replication_memory,
    SOLVERS,
)
from repro.core.context import ContextStore
from repro.core.online import (
    OnlineReplacer,
    ReplacementEvent,
    ReplacementPolicy,
    kept_mass_fraction,
    model_kept_mass,
    plan_migration,
)
from repro.core.exflow import ExFlowOptimizer, ExFlowPlan

__all__ = [
    "affinity_matrix",
    "multi_hop_affinity",
    "set_affinity",
    "staged_set_affinity",
    "scaled_affinity",
    "affinity_concentration",
    "StreamingAffinityEstimator",
    "Placement",
    "ReplicatedPlacement",
    "vanilla_placement",
    "greedy_placement",
    "ilp_placement",
    "staged_placement",
    "local_search_placement",
    "popularity_replication",
    "replicated_locality",
    "solve_placement",
    "validate_replication_memory",
    "SOLVERS",
    "ContextStore",
    "OnlineReplacer",
    "ReplacementEvent",
    "ReplacementPolicy",
    "kept_mass_fraction",
    "model_kept_mass",
    "plan_migration",
    "ExFlowOptimizer",
    "ExFlowPlan",
]
