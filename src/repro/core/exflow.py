"""The ExFlow facade: profile -> place -> serve.

:class:`ExFlowOptimizer` is the library's main entry point, packaging the
paper's offline pipeline (Section IV): collect a routing trace from the
pre-trained model, estimate inter-layer affinity, solve the placement
integer program, and hand the engine a ready-to-run plan.

Typical use::

    opt = ExFlowOptimizer(model_cfg, cluster)
    plan = opt.fit(profiling_trace)            # offline, once per cluster
    result = opt.run(plan, workload, infer)    # simulated serving
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


from repro.config import ClusterConfig, ExecutionMode, InferenceConfig, ModelConfig
from repro.core.affinity import scaled_affinity
from repro.core.placement.base import LocalityStats, Placement, placement_locality
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.executor import simulate_inference
from repro.engine.metrics import RunResult
from repro.engine.workload import DecodeWorkload
from repro.trace.events import RoutingTrace

__all__ = ["ExFlowPlan", "ExFlowOptimizer"]


@dataclass(frozen=True)
class ExFlowPlan:
    """A solved deployment: placement + profiling provenance.

    Attributes
    ----------
    placement:
        The affinity-optimised expert-to-GPU mapping.
    profile_tokens:
        How many tokens informed the placement (Fig 13's x-axis).
    profile_affinity:
        Scaled affinity of the profiling trace — a cheap a-priori indicator
        of how much placement can help.
    expected_locality:
        Locality of the *profiling* trace replayed under the placement
        (in-sample estimate; out-of-sample evaluation uses fresh traffic).
    """

    placement: Placement
    profile_tokens: int
    profile_affinity: float
    expected_locality: LocalityStats

    @property
    def strategy(self) -> str:
        return self.placement.strategy


class ExFlowOptimizer:
    """End-to-end ExFlow pipeline over a model/cluster pairing.

    Parameters
    ----------
    model / cluster:
        Deployment target.  The expert count must divide evenly across the
        cluster's GPUs (the ILP's load-balance constraint).
    strategy:
        Placement solver (default: the paper's staged node-then-GPU ILP).
    """

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterConfig,
        strategy: str = "staged",
    ):
        cluster.experts_per_gpu(model.num_experts)  # validates divisibility
        self.model = model
        self.cluster = cluster
        self.strategy = strategy

    def fit(self, trace: RoutingTrace, **solver_kwargs: object) -> ExFlowPlan:
        """Solve the placement from a profiling trace."""
        if trace.num_experts != self.model.num_experts:
            raise ValueError("trace expert count differs from model")
        if trace.num_layers != self.model.num_moe_layers:
            raise ValueError("trace layer count differs from model")
        placement = solve_placement(self.strategy, trace, self.cluster, **solver_kwargs)
        return ExFlowPlan(
            placement=placement,
            profile_tokens=trace.num_tokens,
            profile_affinity=scaled_affinity(trace),
            expected_locality=placement_locality(placement, trace, self.cluster),
        )

    def baseline_placement(self) -> Placement:
        """The DeepSpeed-style placement used in every baseline run."""
        return vanilla_placement(
            self.model.num_moe_layers, self.model.num_experts, self.cluster.num_gpus
        )

    def evaluate_locality(
        self, plan: ExFlowPlan, eval_trace: RoutingTrace
    ) -> LocalityStats:
        """Out-of-sample locality: replay fresh traffic under the plan."""
        return placement_locality(plan.placement, eval_trace, self.cluster)

    def run(
        self,
        plan: ExFlowPlan,
        workload: DecodeWorkload,
        infer: InferenceConfig,
        mode: ExecutionMode = ExecutionMode.EXFLOW,
    ) -> RunResult:
        """Simulate serving ``workload`` under the plan."""
        cfg = dataclasses.replace(infer, mode=mode)
        placement = (
            plan.placement if mode.uses_affinity_placement else self.baseline_placement()
        )
        return simulate_inference(self.model, self.cluster, cfg, placement, workload)
