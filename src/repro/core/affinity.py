"""Inter-layer expert affinity statistics (paper Section IV-B, formulas 1-6).

*Affinity* is the conditional probability that a token routed to expert
``i`` at MoE layer ``j`` selects expert ``p`` at layer ``j+1``:

    ``A_j[i, p] = P(E_{p, j+1} | E_{i, j})``            (formula 1)

All functions here are estimators over a :class:`~repro.trace.RoutingTrace`.
They feed two consumers: the placement solvers (which need the *combined*
affinity of expert sets, formulas 5-6) and the training-dynamics experiments
(which track the scalar :func:`scaled_affinity` across checkpoints, Fig 12).
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import CountTrace, RoutingTrace

__all__ = [
    "affinity_matrix",
    "multi_hop_affinity",
    "set_affinity",
    "staged_set_affinity",
    "scaled_affinity",
    "affinity_concentration",
    "most_affiliated",
    "StreamingAffinityEstimator",
]


def affinity_matrix(trace: RoutingTrace, layer: int) -> np.ndarray:
    """Formula (1): (E, E) conditional matrix between ``layer`` and the next.

    Row ``i`` = distribution over layer ``layer+1`` experts conditioned on
    having used expert ``i`` at ``layer``.  This is exactly what each panel
    of Fig 2 visualises.
    """
    return trace.conditional_matrix(layer)


def multi_hop_affinity(trace: RoutingTrace, layer: int, target_layer: int) -> np.ndarray:
    """Affinity between non-consecutive layers (Figs 14-16).

    ``P(E_{p, target} | E_{i, layer})`` estimated directly from token paths
    (not by chaining one-hop matrices, so higher-order dependence is kept).
    """
    if target_layer <= layer:
        raise ValueError("target_layer must be after layer")
    return trace.conditional_matrix(layer, target_layer)


def most_affiliated(trace: RoutingTrace, layer: int) -> np.ndarray:
    """Formula (2): for each expert at ``layer``, its most likely successor.

    Returns (E,) argmax over each affinity row.  The paper notes this local
    rule collides (several experts may share a best successor), which is why
    global optimisation is needed — but it remains a useful diagnostic.
    """
    return affinity_matrix(trace, layer).argmax(axis=1)


def set_affinity(
    trace: RoutingTrace,
    layer: int,
    src_experts: np.ndarray,
    dst_experts: np.ndarray,
) -> float:
    """Formula (5): combined affinity of expert sets across a layer pair.

    The probability mass of tokens that used any ``src_experts`` at
    ``layer`` and moved to any ``dst_experts`` at ``layer+1``, normalised by
    the mass entering ``src_experts``.  When both sets are one GPU's experts
    this is the probability a token on that GPU *stays* on it.
    """
    src = np.asarray(src_experts, dtype=np.int64)
    dst = np.asarray(dst_experts, dtype=np.int64)
    counts = trace.transition_counts(layer)
    src_mass = counts[src].sum()
    if src_mass == 0:
        return 0.0
    return float(counts[np.ix_(src, dst)].sum() / src_mass)


def staged_set_affinity(
    trace: RoutingTrace,
    layer: int,
    gpu_experts: np.ndarray,
    node_experts: np.ndarray,
) -> float:
    """Formula (6): GPU-level affinity plus second-degree node-level term.

    ``gpu_experts`` are one GPU's experts (both layers use the same id set
    interpretation as :func:`set_affinity`); ``node_experts`` are the
    remaining experts held by *other GPUs of the same node*.  The sum is the
    probability a token on the GPU stays within its node.
    """
    gpu_term = set_affinity(trace, layer, gpu_experts, gpu_experts)
    node_term = set_affinity(trace, layer, gpu_experts, node_experts)
    return gpu_term + node_term


def affinity_concentration(trace: RoutingTrace, layer: int, top: int = 2) -> float:
    """Mass captured by each row's ``top`` hottest successors, averaged.

    Quantifies Fig 2's visual claim ("for each row ... only a few columns
    are red"): a value near 1 with small ``top`` means strong affinity; a
    memoryless router gives ``top / E``.  Rows are weighted by their token
    mass so rarely used experts don't dominate.
    """
    counts = trace.transition_counts(layer).astype(np.float64)
    row_mass = counts.sum(axis=1)
    total = row_mass.sum()
    if total == 0:
        return 0.0
    probs = counts / np.where(row_mass[:, None] > 0, row_mass[:, None], 1.0)
    top_mass = np.sort(probs, axis=1)[:, -top:].sum(axis=1)
    return float((top_mass * row_mass).sum() / total)


def scaled_affinity(trace: RoutingTrace, top: int = 2) -> float:
    """The scalar affinity metric tracked during training (Fig 12).

    Average of :func:`affinity_concentration` over all consecutive layer
    pairs, rescaled so that a memoryless uniform router scores 0 and a
    deterministic router scores 1:

        ``scaled = (raw - top/E) / (1 - top/E)``

    The paper scales its affinity "for better visualisation"; this rescaling
    makes runs with different expert counts comparable on one axis, exactly
    what Fig 12 plots.
    """
    if trace.num_layers < 2:
        raise ValueError("need at least 2 layers to measure affinity")
    raw = float(
        np.mean([affinity_concentration(trace, j, top) for j in range(trace.num_layers - 1)])
    )
    floor = min(top, trace.num_experts) / trace.num_experts
    if floor >= 1.0:
        return 1.0
    return max(0.0, (raw - floor) / (1.0 - floor))


class StreamingAffinityEstimator:
    """Exponentially-decayed transition counts updated per serving step.

    The paper estimates affinity once, from an offline profiling trace; a
    live serving system instead sees routing decisions *streaming* past and
    must keep the estimate current as the workload drifts.  This estimator
    maintains, for every consecutive layer pair, a transition-count matrix
    where each observed transition is weighted ``0.5 ** (age_tokens /
    halflife_tokens)`` — recent traffic dominates, a regime switch fades the
    stale counts away within a few halflives, and a stationary workload
    converges to (a scaled copy of) its true transition matrix.

    Decay is applied per :meth:`update` batch (all tokens of one decode step
    share one timestamp), which keeps the hot path to one scale + one
    batched ``bincount`` per call.

    ``effective_tokens`` is the decayed token mass currently in the window —
    the "sample size" behind the estimate; consumers should not trust the
    estimate (nor re-solve placements from it) before it clears a floor.
    """

    def __init__(
        self,
        num_experts: int,
        num_layers: int,
        halflife_tokens: float = 2048.0,
    ) -> None:
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if num_layers < 2:
            raise ValueError("need at least 2 layers to track transitions")
        if halflife_tokens <= 0:
            raise ValueError("halflife_tokens must be positive")
        self.num_experts = int(num_experts)
        self.num_layers = int(num_layers)
        self.halflife_tokens = float(halflife_tokens)
        self._decay_per_token = 0.5 ** (1.0 / self.halflife_tokens)
        self._counts = np.zeros(
            (self.num_layers - 1, self.num_experts, self.num_experts), dtype=np.float64
        )
        self._effective_tokens = 0.0
        self._total_tokens = 0

    # -- observation ---------------------------------------------------------

    def update(self, paths: np.ndarray) -> None:
        """Fold one batch of token paths into the decayed counts.

        ``paths`` is (N, L) expert ids — e.g. one decode step's routing
        decisions for the whole active batch.  Existing counts are decayed
        by ``N`` tokens' worth of age, then the batch's transitions are
        added at full weight.
        """
        paths = np.asarray(paths, dtype=np.int64)
        if paths.ndim != 2 or paths.shape[1] != self.num_layers:
            raise ValueError(
                f"paths must be (tokens, {self.num_layers}), got {paths.shape}"
            )
        n = paths.shape[0]
        if n == 0:
            return
        if paths.min() < 0 or paths.max() >= self.num_experts:
            raise ValueError(f"expert ids must be in [0, {self.num_experts})")

        decay = self._decay_per_token**n
        self._counts *= decay
        self._effective_tokens *= decay

        e = self.num_experts
        pairs = self.num_layers - 1
        # one flattened bincount over the (layer-pair, src, dst) key space
        offsets = np.arange(pairs, dtype=np.int64) * (e * e)
        keys = offsets[None, :] + paths[:, :-1] * e + paths[:, 1:]
        batch = np.bincount(keys.ravel(), minlength=pairs * e * e)
        self._counts += batch.reshape(pairs, e, e)
        self._effective_tokens += n
        self._total_tokens += n

    # -- estimates -----------------------------------------------------------

    @property
    def effective_tokens(self) -> float:
        """Decayed token mass in the current window (estimate sample size)."""
        return self._effective_tokens

    @property
    def total_tokens(self) -> int:
        """Undecayed count of all tokens ever observed."""
        return self._total_tokens

    def transition_counts(self, layer: int) -> np.ndarray:
        """(E, E) decayed counts between ``layer`` and ``layer + 1``."""
        if not 0 <= layer < self.num_layers - 1:
            raise IndexError(f"layer {layer} out of range [0, {self.num_layers - 1})")
        return self._counts[layer].copy()

    def counts_stack(self) -> np.ndarray:
        """(L-1, E, E) copy of the full decayed count stack."""
        return self._counts.copy()

    def conditional_matrix(self, layer: int) -> np.ndarray:
        """Formula (1) over the decayed window; unobserved rows are uniform.

        Delegates to :class:`CountTrace` so the streaming and snapshot
        views of the same counts can never disagree on the normalisation.
        """
        return CountTrace(self._counts).conditional_matrix(layer)

    def as_trace(self) -> CountTrace:
        """Snapshot the decayed counts as a solver-consumable trace.

        The returned :class:`~repro.trace.events.CountTrace` presents the
        exact interface the placement solver family reads from a profiled
        :class:`~repro.trace.events.RoutingTrace`, so an online re-solve is
        ``solve(estimator.as_trace(), ...)`` — no synthetic path sampling.
        """
        return CountTrace(
            self._counts.copy(),
            source=f"streaming(h={self.halflife_tokens:g},n={self._effective_tokens:.0f})",
        )

    def reset(self) -> None:
        """Drop all accumulated counts (e.g. after a known workload change)."""
        self._counts[:] = 0.0
        self._effective_tokens = 0.0
