"""repro — reproduction of ExFlow (IPDPS 2024).

"Exploiting Inter-Layer Expert Affinity for Accelerating Mixture-of-Experts
Model Inference" (Yao et al.), rebuilt as a self-contained simulation stack:

* :mod:`repro.config` — model / cluster / workload configuration.
* :mod:`repro.cluster` — topology + collective cost models (the hardware).
* :mod:`repro.model` — numpy GPT MoE decoder (the checkpoint substrate).
* :mod:`repro.trace` — routing traces, synthetic corpora, Markov generators.
* :mod:`repro.core` — the paper's contribution: affinity estimation,
  ILP-based expert placement, context coherence, the ExFlow facade.
* :mod:`repro.engine` — distributed inference simulation + comparisons.
* :mod:`repro.fleet` — multi-replica serving: router, admission, autoscaler.
* :mod:`repro.obs` — observability: metric timelines, Chrome-trace export,
  simulator self-profiling (attach via ``Scenario.telemetry``).
* :mod:`repro.training` — affinity/balance dynamics during training.
* :mod:`repro.analysis` — heatmaps, Table I formulas, report formatting.
* :mod:`repro.scenarios` — the front door: declarative :class:`Scenario`
  specs, the :func:`run` facade, and the named-preset registry.

Quickstart — everything runs through ``run()``::

    from repro import run, list_scenarios, get_scenario, run_sweep

    # enumerate the registered presets (paper figures, drift, flash crowds)
    print(list_scenarios())

    # one call per experiment, one report schema for every kind
    report = run("fig16-flash-autoscale-smoke")
    print(report.latency_p95_s, report.shed_fraction, report.cost_usd)

    # declare your own: a spec is just a frozen dataclass
    import dataclasses
    base = get_scenario("serve-bursty")
    grid = [
        dataclasses.replace(
            base,
            name=f"bursty-rate{rate}",
            serving=dataclasses.replace(base.serving, arrival_rate_rps=rate),
        )
        for rate in (100.0, 300.0, 900.0)
    ]
    for rep in run_sweep(grid):          # multiprocessing over the grid
        print(rep.scenario, rep.latency_p95_s)

Scenarios serialize (``Scenario.to_dict`` / ``from_dict`` / ``save`` /
``load``), so ``repro run --scenario file.json`` reproduces any run.  The
older ``simulate_*`` entry points still work but are deprecated shims
over this facade's implementations.

Static analysis — the simulator's invariants are machine-checked::

    PYTHONPATH=src python -m repro lint src benchmarks examples
    PYTHONPATH=src python -m repro lint --list-rules   # what each RPL rule means
    PYTHONPATH=src mypy --strict src/repro             # typing gate (mypy.ini)

``repro lint`` (:mod:`repro.lint`) enforces the determinism, unit-safety
and spec-hygiene rules described in DESIGN.md ("Static analysis &
invariants"); suppress a deliberate violation inline with
``# repro-lint: disable=RPL001``.  CI runs both gates on every push.
"""

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    GatingKind,
    InferenceConfig,
    LinkSpec,
    ModelConfig,
    PAPER_MODELS,
    ServingConfig,
    paper_model,
    scaled_proxy,
    wilkes3,
)
from repro.cluster import Topology, Tier, TrafficLedger
from repro.core import (
    ExFlowOptimizer,
    ExFlowPlan,
    OnlineReplacer,
    Placement,
    ReplacementPolicy,
    ReplicatedPlacement,
    SOLVERS,
    StreamingAffinityEstimator,
    affinity_matrix,
    multi_hop_affinity,
    popularity_replication,
    replicated_locality,
    scaled_affinity,
    solve_placement,
    staged_placement,
    validate_replication_memory,
    vanilla_placement,
)
from repro.engine import (
    CostModel,
    DecodeWorkload,
    LatencyStats,
    OnlineServingResult,
    RunResult,
    ServingResult,
    compare_modes,
    make_arrivals,
    make_decode_workload,
    make_drift_scenario,
    simulate_cluster_serving,
    simulate_inference,
    simulate_inference_reference,
    simulate_online_cluster_serving,
    simulate_serving,
)
from repro.fleet import (
    FleetRequest,
    FleetResult,
    flash_crowd_arrivals,
    make_router,
    simulate_fleet_cluster_serving,
    simulate_fleet_serving,
)
from repro.model import MoETransformer, generate
from repro.obs import (
    NullRecorder,
    PhaseProfiler,
    SignalDetector,
    SloSpec,
    TimelineRecorder,
    openmetrics_text,
    parse_openmetrics,
    score_against_chaos,
    validate_chrome_trace,
)
from repro.scenarios import (
    DriftSpec,
    FlashCrowdSpec,
    ReplacementSpec,
    Scenario,
    SimReport,
    TelemetrySpec,
    get_scenario,
    list_scenarios,
    make_recorder,
    register_scenario,
    run,
    run_sweep,
)
from repro.trace import (
    MarkovRoutingModel,
    RoutingTrace,
    TopicCorpus,
    collect_trace,
    make_corpus,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "ClusterConfig",
    "ExecutionMode",
    "FleetConfig",
    "GatingKind",
    "InferenceConfig",
    "LinkSpec",
    "ModelConfig",
    "PAPER_MODELS",
    "ServingConfig",
    "paper_model",
    "scaled_proxy",
    "wilkes3",
    # cluster
    "Topology",
    "Tier",
    "TrafficLedger",
    # core
    "ExFlowOptimizer",
    "ExFlowPlan",
    "OnlineReplacer",
    "Placement",
    "ReplacementPolicy",
    "ReplicatedPlacement",
    "SOLVERS",
    "StreamingAffinityEstimator",
    "affinity_matrix",
    "multi_hop_affinity",
    "popularity_replication",
    "replicated_locality",
    "scaled_affinity",
    "solve_placement",
    "staged_placement",
    "validate_replication_memory",
    "vanilla_placement",
    # engine
    "CostModel",
    "DecodeWorkload",
    "LatencyStats",
    "OnlineServingResult",
    "RunResult",
    "ServingResult",
    "compare_modes",
    "make_arrivals",
    "make_decode_workload",
    "make_drift_scenario",
    "simulate_cluster_serving",
    "simulate_inference",
    "simulate_inference_reference",
    "simulate_online_cluster_serving",
    "simulate_serving",
    # fleet
    "FleetRequest",
    "FleetResult",
    "flash_crowd_arrivals",
    "make_router",
    "simulate_fleet_cluster_serving",
    "simulate_fleet_serving",
    # model
    "MoETransformer",
    "generate",
    # obs (telemetry + SLO monitoring)
    "NullRecorder",
    "PhaseProfiler",
    "SignalDetector",
    "SloSpec",
    "TimelineRecorder",
    "openmetrics_text",
    "parse_openmetrics",
    "score_against_chaos",
    "validate_chrome_trace",
    # scenarios (the run() facade)
    "Scenario",
    "DriftSpec",
    "ReplacementSpec",
    "FlashCrowdSpec",
    "TelemetrySpec",
    "SimReport",
    "make_recorder",
    "run",
    "run_sweep",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    # trace
    "MarkovRoutingModel",
    "RoutingTrace",
    "TopicCorpus",
    "collect_trace",
    "make_corpus",
]
