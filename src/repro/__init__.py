"""repro — reproduction of ExFlow (IPDPS 2024).

"Exploiting Inter-Layer Expert Affinity for Accelerating Mixture-of-Experts
Model Inference" (Yao et al.), rebuilt as a self-contained simulation stack:

* :mod:`repro.config` — model / cluster / workload configuration.
* :mod:`repro.cluster` — topology + collective cost models (the hardware).
* :mod:`repro.model` — numpy GPT MoE decoder (the checkpoint substrate).
* :mod:`repro.trace` — routing traces, synthetic corpora, Markov generators.
* :mod:`repro.core` — the paper's contribution: affinity estimation,
  ILP-based expert placement, context coherence, the ExFlow facade.
* :mod:`repro.engine` — distributed inference simulation + comparisons.
* :mod:`repro.training` — affinity/balance dynamics during training.
* :mod:`repro.analysis` — heatmaps, Table I formulas, report formatting.

Quickstart::

    import numpy as np
    from repro import (
        ExFlowOptimizer, InferenceConfig, paper_model, wilkes3,
        MarkovRoutingModel, make_decode_workload,
    )

    model = paper_model("gpt-m-350m-e32")
    cluster = wilkes3(num_nodes=4)
    routing = MarkovRoutingModel.with_affinity(32, model.num_moe_layers, 0.85)
    trace = routing.sample(3000, np.random.default_rng(0))

    opt = ExFlowOptimizer(model, cluster)
    plan = opt.fit(trace)
    print(plan.expected_locality)
"""

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    GatingKind,
    InferenceConfig,
    LinkSpec,
    ModelConfig,
    PAPER_MODELS,
    ServingConfig,
    paper_model,
    scaled_proxy,
    wilkes3,
)
from repro.cluster import Topology, Tier, TrafficLedger
from repro.core import (
    ExFlowOptimizer,
    ExFlowPlan,
    OnlineReplacer,
    Placement,
    ReplacementPolicy,
    ReplicatedPlacement,
    SOLVERS,
    StreamingAffinityEstimator,
    affinity_matrix,
    multi_hop_affinity,
    popularity_replication,
    replicated_locality,
    scaled_affinity,
    solve_placement,
    staged_placement,
    validate_replication_memory,
    vanilla_placement,
)
from repro.engine import (
    CostModel,
    DecodeWorkload,
    LatencyStats,
    OnlineServingResult,
    RunResult,
    ServingResult,
    compare_modes,
    make_arrivals,
    make_decode_workload,
    make_drift_scenario,
    simulate_cluster_serving,
    simulate_inference,
    simulate_inference_reference,
    simulate_online_cluster_serving,
    simulate_serving,
)
from repro.fleet import (
    FleetRequest,
    FleetResult,
    flash_crowd_arrivals,
    make_router,
    simulate_fleet_cluster_serving,
    simulate_fleet_serving,
)
from repro.model import MoETransformer, generate
from repro.trace import (
    MarkovRoutingModel,
    RoutingTrace,
    TopicCorpus,
    collect_trace,
    make_corpus,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "ClusterConfig",
    "ExecutionMode",
    "FleetConfig",
    "GatingKind",
    "InferenceConfig",
    "LinkSpec",
    "ModelConfig",
    "PAPER_MODELS",
    "ServingConfig",
    "paper_model",
    "scaled_proxy",
    "wilkes3",
    # cluster
    "Topology",
    "Tier",
    "TrafficLedger",
    # core
    "ExFlowOptimizer",
    "ExFlowPlan",
    "OnlineReplacer",
    "Placement",
    "ReplacementPolicy",
    "ReplicatedPlacement",
    "SOLVERS",
    "StreamingAffinityEstimator",
    "affinity_matrix",
    "multi_hop_affinity",
    "popularity_replication",
    "replicated_locality",
    "scaled_affinity",
    "solve_placement",
    "staged_placement",
    "validate_replication_memory",
    "vanilla_placement",
    # engine
    "CostModel",
    "DecodeWorkload",
    "LatencyStats",
    "OnlineServingResult",
    "RunResult",
    "ServingResult",
    "compare_modes",
    "make_arrivals",
    "make_decode_workload",
    "make_drift_scenario",
    "simulate_cluster_serving",
    "simulate_inference",
    "simulate_inference_reference",
    "simulate_online_cluster_serving",
    "simulate_serving",
    # fleet
    "FleetRequest",
    "FleetResult",
    "flash_crowd_arrivals",
    "make_router",
    "simulate_fleet_cluster_serving",
    "simulate_fleet_serving",
    # model
    "MoETransformer",
    "generate",
    # trace
    "MarkovRoutingModel",
    "RoutingTrace",
    "TopicCorpus",
    "collect_trace",
    "make_corpus",
]
