"""OpenMetrics text exposition for scenario reports, plus a validator.

:func:`openmetrics_text` renders one :class:`~repro.scenarios.report.SimReport`
document (the :meth:`to_dict` form — plain JSON types, so it also works on
a report loaded back from disk) as an OpenMetrics text exposition: typed
metric families with ``# TYPE``/``# HELP``/``# UNIT`` metadata, ``_total``
counters, and a ``repro_request_latency_seconds`` histogram whose
``_bucket`` lines are the cumulative form of the fixed-edge log-bucket
:data:`~repro.engine.metrics.LATENCY_HIST_EDGES_S` histogram every report
already carries — so ``le="+Inf"`` equals ``_count`` equals the completed
request count by construction, and scrape output from different runs and
engines is directly comparable.

:func:`parse_openmetrics` is the matching strict parser: CI exports an
artifact from a smoke scenario and round-trips it through here, which
rejects undeclared families, malformed sample lines, non-cumulative
buckets, and a missing ``# EOF`` terminator.
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Sequence

__all__ = ["openmetrics_text", "parse_openmetrics"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(doc: Mapping[str, object], key: str) -> float:
    v = doc.get(key, 0)
    return float(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else 0.0


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str, unit: str | None = None) -> None:
        self.lines.append(f"# TYPE {name} {kind}")
        if unit is not None:
            self.lines.append(f"# UNIT {name} {unit}")
        self.lines.append(f"# HELP {name} {help_text}")

    def sample(self, name: str, labels: Mapping[str, str], value: float) -> None:
        if labels:
            inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels.items())
            self.lines.append(f"{name}{{{inner}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")


def openmetrics_text(report: Mapping[str, object]) -> str:
    """Render a report dict (``SimReport.to_dict()``) as OpenMetrics text."""
    from repro.engine.metrics import LATENCY_HIST_EDGES_S

    w = _Writer()
    scenario = report.get("scenario")
    kind = report.get("kind")
    w.family("repro_scenario", "gauge", "Scenario identity (always 1).")
    w.sample(
        "repro_scenario",
        {
            "scenario": scenario if isinstance(scenario, str) else "unknown",
            "kind": kind if isinstance(kind, str) else "unknown",
        },
        1.0,
    )

    counters = (
        ("repro_requests_completed", "completed", "Requests completed."),
        ("repro_requests_shed", "shed", "Requests shed at admission."),
        ("repro_requests_lost", "lost", "Requests terminally lost to faults."),
        ("repro_request_retries", "retries", "Failed request attempts retried."),
        ("repro_replica_failures", "failures", "Hard replica failures."),
        ("repro_generated_tokens", "generated_tokens", "Tokens generated."),
    )
    for name, key, help_text in counters:
        w.family(name, "counter", help_text)
        w.sample(f"{name}_total", {}, _num(report, key))

    gauges = (
        ("repro_availability_ratio", "availability", "Served fraction of offered requests.", None),
        ("repro_goodput_requests_per_second", "goodput_rps", "SLO-met completions per second.", None),
        ("repro_throughput_requests_per_second", "throughput_rps", "Completions per second.", None),
        ("repro_makespan_seconds", "makespan_s", "Simulated run duration.", "seconds"),
        ("repro_shed_ratio", "shed_fraction", "Shed fraction of offered requests.", None),
        ("repro_cost_usd", "cost_usd", "GPU spend for the run.", None),
        ("repro_peak_replicas", "peak_replicas", "Peak replica count.", None),
    )
    for name, key, help_text, unit in gauges:
        w.family(name, "gauge", help_text, unit)
        w.sample(name, {}, _num(report, key))

    attainment = report.get("slo_attainment")
    if isinstance(attainment, Mapping) and attainment:
        w.family("repro_slo_attainment_ratio", "gauge", "Per-class SLO attainment.")
        for cls in sorted(attainment):
            v = attainment[cls]
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                w.sample("repro_slo_attainment_ratio", {"class": str(cls)}, float(v))

    compliance = report.get("slo")
    if isinstance(compliance, Mapping) and compliance:
        ok = compliance.get("ok")
        w.family("repro_slo_ok", "gauge", "1 when the run met every SLO target.")
        w.sample("repro_slo_ok", {}, 1.0 if bool(ok) else 0.0)

    alerts = report.get("alerts")
    if isinstance(alerts, Sequence) and not isinstance(alerts, (str, bytes)):
        counts: dict[tuple[str, str], int] = {}
        for a in alerts:
            if isinstance(a, Mapping):
                sev = str(a.get("severity", "unknown"))
                sig = str(a.get("signal", "unknown"))
                counts[(sev, sig)] = counts.get((sev, sig), 0) + 1
        if counts:
            w.family("repro_alerts", "counter", "Burn-rate alert spans raised.")
            for (sev, sig), n in sorted(counts.items()):
                w.sample("repro_alerts_total", {"severity": sev, "signal": sig}, float(n))

    hist = report.get("latency_hist")
    if isinstance(hist, Mapping) and hist:
        labels = [f"<{edge:g}s" for edge in LATENCY_HIST_EDGES_S] + ["+inf"]
        bucket_counts: list[float] = []
        for label in labels:
            v = hist.get(label, 0)
            bucket_counts.append(
                float(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else 0.0
            )
        w.family(
            "repro_request_latency_seconds",
            "histogram",
            "Request latency over the fixed log-bucket edges.",
            "seconds",
        )
        cumulative = 0.0
        for edge, count in zip(LATENCY_HIST_EDGES_S, bucket_counts[:-1], strict=True):
            cumulative += count
            w.sample("repro_request_latency_seconds_bucket", {"le": f"{edge:g}"}, cumulative)
        cumulative += bucket_counts[-1]
        w.sample("repro_request_latency_seconds_bucket", {"le": "+Inf"}, cumulative)
        w.sample("repro_request_latency_seconds_count", {}, cumulative)
        w.sample(
            "repro_request_latency_seconds_sum",
            {},
            _num(report, "latency_mean_s") * _num(report, "completed"),
        )

    w.lines.append("# EOF")
    return "\n".join(w.lines) + "\n"


_SUFFIXES: dict[str, tuple[str, ...]] = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum"),
}


def parse_openmetrics(text: str) -> dict[str, dict[str, object]]:
    """Parse + validate an OpenMetrics exposition produced by this module.

    Enforces the invariants CI relies on: every sample belongs to a family
    declared by a preceding ``# TYPE`` line with a suffix legal for its
    type, values are finite, histogram buckets are cumulative with a
    ``+Inf`` bucket equal to ``_count``, and the exposition ends with
    ``# EOF``.  Returns ``{family: {"type": ..., "samples": [(name,
    labels, value), ...]}}``.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: dict[str, dict[str, object]] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("TYPE", "HELP", "UNIT"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            _, keyword, name = parts[0], parts[1], parts[2]
            if not _NAME_RE.fullmatch(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            if keyword == "TYPE":
                if len(parts) != 4 or parts[3] not in _SUFFIXES:
                    raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
                if name in families:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
                families[name] = {"type": parts[3], "samples": []}
            elif name not in families:
                raise ValueError(f"line {lineno}: {keyword} before TYPE for {name}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name, label_text, value_text = m.group(1), m.group(2), m.group(3)
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {value_text!r}") from None
        if not math.isfinite(value):
            raise ValueError(f"line {lineno}: non-finite value in {line!r}")
        labels: dict[str, str] = {}
        if label_text:
            pos = 0
            while pos < len(label_text):
                lm = _LABEL_RE.match(label_text, pos)
                if lm is None:
                    raise ValueError(f"line {lineno}: malformed labels {label_text!r}")
                labels[lm.group(1)] = lm.group(2)
                pos = lm.end()
                if pos < len(label_text):
                    if label_text[pos] != ",":
                        raise ValueError(f"line {lineno}: malformed labels {label_text!r}")
                    pos += 1
        family = None
        for fam_name, fam in families.items():
            fam_type = fam["type"]
            assert isinstance(fam_type, str)
            for suffix in _SUFFIXES[fam_type]:
                if sample_name == fam_name + suffix:
                    family = fam
                    break
            if family is not None:
                break
        if family is None:
            raise ValueError(f"line {lineno}: sample {sample_name!r} has no TYPE declaration")
        samples = family["samples"]
        assert isinstance(samples, list)
        samples.append((sample_name, labels, value))

    for fam_name, fam in families.items():
        if fam["type"] != "histogram":
            continue
        samples = fam["samples"]
        assert isinstance(samples, list)
        buckets = [(lbl, v) for name, lbl, v in samples if name == f"{fam_name}_bucket"]
        counts = [v for name, _, v in samples if name == f"{fam_name}_count"]
        sums = [v for name, _, v in samples if name == f"{fam_name}_sum"]
        if not buckets or len(counts) != 1 or len(sums) != 1:
            raise ValueError(f"{fam_name}: histogram needs _bucket lines, one _count, one _sum")
        prev = 0.0
        inf_count: float | None = None
        for lbl, v in buckets:
            if "le" not in lbl:
                raise ValueError(f"{fam_name}: bucket without le label")
            if v < prev:
                raise ValueError(f"{fam_name}: bucket counts must be cumulative")
            prev = v
            if lbl["le"] == "+Inf":
                if inf_count is not None:
                    raise ValueError(f"{fam_name}: duplicate +Inf bucket")
                inf_count = v
        if inf_count is None:
            raise ValueError(f"{fam_name}: missing +Inf bucket")
        if inf_count != counts[0]:
            raise ValueError(
                f"{fam_name}: +Inf bucket {inf_count} != _count {counts[0]}"
            )
    return families
