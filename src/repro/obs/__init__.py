"""Observation-only telemetry for the simulators.

Six pieces, all optional and all zero-cost when absent:

* :mod:`repro.obs.recorder` — the :class:`MetricsRecorder` hook protocol,
  the no-op :class:`NullRecorder`, :class:`TimelineRecorder`, which turns
  the engines' event hooks into per-window metric time-series and
  request/replica lifecycle spans, and :class:`TeeRecorder`, which fans
  one hook stream out to several recorders.
* :mod:`repro.obs.slo` — :class:`SloSpec` service objectives and the
  multi-window burn-rate evaluator that folds a timeline into typed
  :class:`AlertSpan`\\ s.
* :mod:`repro.obs.detect` — :class:`SignalDetector`, an online
  outage/brownout detector over the benign hook stream, scored against
  chaos ground truth by :func:`score_against_chaos`.
* :mod:`repro.obs.export` — OpenMetrics text exposition of a report plus
  the strict parser CI round-trips artifacts through.
* :mod:`repro.obs.trace` — Chrome-trace (``chrome://tracing`` /
  Perfetto) JSON export plus a structural validator used by tests & CI.
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`, wall-clock phase
  timers (routing vs admission vs step pricing vs bookkeeping) for the
  fleet engines; published as ``BENCH_profile.json``.

The oracle-safety contract: recording is *observation only*.  Hooks may
read simulated state but never draw rng samples, never change float
evaluation order, and never feed anything back into the simulation — so
the bit-identical event/tick fleet contract survives with telemetry
attached (``tests/test_fleet_equivalence.py`` enforces this).
"""

from repro.obs.detect import (
    ObservedBrownout,
    ObservedOutage,
    SignalDetector,
    score_against_chaos,
)
from repro.obs.export import openmetrics_text, parse_openmetrics
from repro.obs.profile import MEASURED_PHASES, PROFILE_PHASES, PhaseProfile, PhaseProfiler
from repro.obs.recorder import MetricsRecorder, NullRecorder, TeeRecorder, TimelineRecorder
from repro.obs.slo import (
    ALERT_SEVERITIES,
    ALERT_SIGNALS,
    DEFAULT_BURN_WINDOWS,
    AlertSpan,
    BurnWindowSpec,
    SloClassOverride,
    SloSpec,
    compliance_summary,
    evaluate_burn_alerts,
)
from repro.obs.trace import chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "MetricsRecorder",
    "NullRecorder",
    "TeeRecorder",
    "TimelineRecorder",
    "PhaseProfiler",
    "PhaseProfile",
    "MEASURED_PHASES",
    "PROFILE_PHASES",
    "ALERT_SEVERITIES",
    "ALERT_SIGNALS",
    "DEFAULT_BURN_WINDOWS",
    "AlertSpan",
    "BurnWindowSpec",
    "SloClassOverride",
    "SloSpec",
    "compliance_summary",
    "evaluate_burn_alerts",
    "ObservedBrownout",
    "ObservedOutage",
    "SignalDetector",
    "score_against_chaos",
    "openmetrics_text",
    "parse_openmetrics",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
