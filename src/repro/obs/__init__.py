"""Observation-only telemetry for the simulators.

Three pieces, all optional and all zero-cost when absent:

* :mod:`repro.obs.recorder` — the :class:`MetricsRecorder` hook protocol,
  the no-op :class:`NullRecorder`, and :class:`TimelineRecorder`, which
  turns the engines' event hooks into per-window metric time-series and
  request/replica lifecycle spans.
* :mod:`repro.obs.trace` — Chrome-trace (``chrome://tracing`` /
  Perfetto) JSON export plus a structural validator used by tests & CI.
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`, wall-clock phase
  timers (routing vs admission vs step pricing vs bookkeeping) for the
  fleet engines; published as ``BENCH_profile.json``.

The oracle-safety contract: recording is *observation only*.  Hooks may
read simulated state but never draw rng samples, never change float
evaluation order, and never feed anything back into the simulation — so
the bit-identical event/tick fleet contract survives with telemetry
attached (``tests/test_fleet_equivalence.py`` enforces this).
"""

from repro.obs.profile import MEASURED_PHASES, PROFILE_PHASES, PhaseProfile, PhaseProfiler
from repro.obs.recorder import MetricsRecorder, NullRecorder, TimelineRecorder
from repro.obs.trace import chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "MetricsRecorder",
    "NullRecorder",
    "TimelineRecorder",
    "PhaseProfiler",
    "PhaseProfile",
    "MEASURED_PHASES",
    "PROFILE_PHASES",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
