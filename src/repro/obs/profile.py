"""Simulator self-profiling: wall-time split across engine phases.

:class:`PhaseProfiler` is the one sanctioned wall-clock user inside the
simulator packages (RPL002 allows ``time.perf_counter`` exactly because
measuring the simulator's own wall time can never feed back into
simulated results).  Both fleet engines accept an optional profiler and
bracket their hot phases with it:

* ``routing`` — router ``choose``/``choose_batch`` calls,
* ``admission`` — SLO admission ``assess``/``assess_batch`` calls,
* ``pricing`` — ``PlacementStepTimer`` step/admission pricing plus the
  per-step expert-path sampling that feeds it,
* ``bookkeeping`` — everything else (the remainder of the run loop).

``bookkeeping`` is derived (total minus measured), so the four phase
fractions sum to exactly 1.0 whenever any time was recorded — CI asserts
this on the published ``BENCH_profile.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Mapping

__all__ = ["MEASURED_PHASES", "PROFILE_PHASES", "PhaseProfile", "PhaseProfiler"]

#: Phases the engines measure directly with perf_counter brackets.
MEASURED_PHASES: tuple[str, ...] = ("routing", "admission", "pricing")

#: All reported phases; ``bookkeeping`` is the unmeasured remainder.
PROFILE_PHASES: tuple[str, ...] = (*MEASURED_PHASES, "bookkeeping")


@dataclass(frozen=True)
class PhaseProfile:
    """One finished wall-time breakdown (seconds per phase + fractions)."""

    total_s: float
    phase_s: Mapping[str, float]

    @property
    def fractions(self) -> dict[str, float]:
        """Phase shares of ``total_s``; sum to 1.0 when total_s > 0."""
        if self.total_s <= 0.0:
            return {phase: 0.0 for phase in self.phase_s}
        return {phase: v / self.total_s for phase, v in self.phase_s.items()}

    def as_dict(self) -> dict[str, object]:
        return {
            "total_s": self.total_s,
            "phase_s": dict(self.phase_s),
            "fractions": self.fractions,
        }


class PhaseProfiler:
    """Accumulates per-phase wall time across one or more engine runs.

    Engines call :meth:`run_start`/:meth:`run_end` around their main loop
    and :meth:`add` with already-measured phase durations; the profiler
    itself never touches simulated time, only host wall time.
    """

    __slots__ = ("_measured_s", "_total_s", "_open_t", "runs")

    def __init__(self) -> None:
        self._measured_s: dict[str, float] = {phase: 0.0 for phase in MEASURED_PHASES}
        self._total_s = 0.0
        self._open_t: float | None = None
        self.runs = 0

    def run_start(self) -> None:
        if self._open_t is not None:
            raise RuntimeError("PhaseProfiler.run_start called twice without run_end")
        self._open_t = perf_counter()

    def run_end(self) -> None:
        if self._open_t is None:
            raise RuntimeError("PhaseProfiler.run_end called without run_start")
        self._total_s += perf_counter() - self._open_t
        self._open_t = None
        self.runs += 1

    def add(self, phase: str, seconds: float) -> None:
        """Credit ``seconds`` of wall time to a measured phase."""
        if phase not in self._measured_s:
            raise KeyError(f"unknown profile phase {phase!r}; expected one of {MEASURED_PHASES}")
        self._measured_s[phase] += seconds

    def profile(self) -> PhaseProfile:
        """Snapshot the accumulated breakdown as a :class:`PhaseProfile`."""
        measured_s = sum(self._measured_s.values())
        # clock granularity can make the measured sum exceed the bracketed
        # total on very short runs; clamp so bookkeeping is never negative
        total_s = max(self._total_s, measured_s)
        phase_s = dict(self._measured_s)
        phase_s["bookkeeping"] = total_s - measured_s
        return PhaseProfile(total_s=total_s, phase_s=phase_s)
