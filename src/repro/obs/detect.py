"""Signal-driven fault detection from the recorder hook stream alone.

:class:`SignalDetector` is a :class:`~repro.obs.recorder.MetricsRecorder`
that plays the role of a monitoring frontend: it watches the *benign*
half of the hook stream — enqueue/admit/step/complete, replica lifecycle,
scaling — and infers outages and brownouts the way a real operator would,
without ever reading the chaos channel.  The ground-truth hooks
(``on_preempt``, ``on_fail``, ``on_retry``, ``on_lost``, ``on_recover``)
are deliberately no-ops here: a routed request stays *believed at* its
replica until an observed completion, which is exactly what makes a dead
replica visible (its believed census never drains while the fleet moves
on).

Signals:

* **Completion-gap / queue-stall watchdogs** (outages).  Per replica, an
  EWMA of raw step time sets the expectation of progress; a replica with
  believed work that has produced no admit/step/complete for
  ``gap_factor`` expected steps is declared down — ``completion-gap``
  when it holds an active batch, ``queue-stall`` when work is queued but
  nothing was ever admitted.  The watchdog sweeps on a fleet-wide EWMA
  step cadence, so detection cost is O(replicas) per expected step, not
  per hook.
* **EWMA step-time z-scores** (brownouts).  Per replica, step time is
  normalized by the replica's batch ratio (``max(1, batch/ewma_batch)``,
  so flash-crowd batch growth is not mistaken for slowness), then scored
  against an EWMA mean/variance with a relative floor (the simulator is
  near-deterministic, so raw variance can be ~0).  A run of consecutive
  high-z steps opens an observed brownout; the baselines freeze while one
  is open so the anomaly cannot poison its own reference, and a run of
  near-baseline steps closes it.

Everything is observation-only and deterministic: identical hook streams
produce identical detections in both fleet engines.

:func:`score_against_chaos` grades the detector against the injected
ground truth: per-event detection latency (observed MTTD), precision,
recall, and observed-vs-true MTTR.  A fault that destroyed no in-flight
work is excluded from the observable-event set — it is invisible to
request-level signals by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Mapping, Protocol, Sequence

from repro.chaos.spec import ChaosSpec

__all__ = [
    "ObservedBrownout",
    "ObservedOutage",
    "SignalDetector",
    "score_against_chaos",
]


@dataclass(frozen=True)
class ObservedOutage:
    """One replica-down interval as inferred from the benign hook stream.

    ``resolution``: ``replaced`` (a replica boot restored capacity),
    ``resumed`` (the replica produced progress again — the alarm was
    premature or the stall transient), or ``run-end`` (never recovered).
    """

    replica: int
    signal: str
    detected_s: float
    closed_s: float
    resolution: str
    last_progress_s: float

    def to_dict(self) -> dict[str, object]:
        return {
            "replica": self.replica,
            "signal": self.signal,
            "detected_s": self.detected_s,
            "closed_s": self.closed_s,
            "resolution": self.resolution,
            "last_progress_s": self.last_progress_s,
        }


@dataclass(frozen=True)
class ObservedBrownout:
    """One slow-replica interval inferred from step-time z-scores."""

    replica: int
    detected_s: float
    closed_s: float
    resolution: str
    peak_z: float

    def to_dict(self) -> dict[str, object]:
        return {
            "replica": self.replica,
            "detected_s": self.detected_s,
            "closed_s": self.closed_s,
            "resolution": self.resolution,
            "peak_z": self.peak_z,
        }


class _Watch:
    """Per-replica believed state, mirrored from benign hooks only."""

    __slots__ = (
        "rid",
        "state",
        "queue",
        "active",
        "last_progress_s",
        "steps",
        "ewma_raw_s",
        "norm_mean",
        "norm_var",
        "ewma_batch",
        "slow_streak",
        "calm_streak",
        "brownout_open_s",
        "brownout_peak_z",
        "outage_open",
    )

    def __init__(self, rid: int, state: str, t_s: float) -> None:
        self.rid = rid
        self.state = state
        self.queue = 0
        self.active = 0
        self.last_progress_s = t_s
        self.steps = 0
        self.ewma_raw_s: float | None = None
        self.norm_mean: float | None = None
        self.norm_var = 0.0
        self.ewma_batch: float | None = None
        self.slow_streak = 0
        self.calm_streak = 0
        self.brownout_open_s: float | None = None
        self.brownout_peak_z = 0.0
        self.outage_open: tuple[str, float, float] | None = None  # signal, detected_s, last_progress


class SignalDetector:
    """Online outage/brownout detector over the benign hook stream.

    Defaults are tuned to page on a bad day and stay silent on a clean
    one (the Hypothesis false-positive guard holds them to that); every
    threshold is a constructor knob so benchmarks can probe sensitivity.
    ``rel_open=2.5`` sits between the largest legitimate normalized step
    ratio observed on steady traffic (~2.3x baseline, a prefill-heavy
    step) and the mildest injected brownout the chaos presets use (3x).
    """

    def __init__(
        self,
        *,
        ewma_alpha: float = 0.3,
        gap_factor: float = 12.0,
        outage_min_steps: int = 2,
        z_open: float = 6.0,
        rel_open: float = 2.5,
        rel_close: float = 1.25,
        z_floor_frac: float = 0.05,
        brownout_open_streak: int = 3,
        brownout_close_streak: int = 3,
        brownout_min_steps: int = 8,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not gap_factor > 1.0:
            raise ValueError(f"gap_factor must be > 1, got {gap_factor}")
        if outage_min_steps < 1 or brownout_min_steps < 1:
            raise ValueError("min step counts must be >= 1")
        if brownout_open_streak < 1 or brownout_close_streak < 1:
            raise ValueError("streak lengths must be >= 1")
        if not z_open > 0.0 or not rel_open > 1.0 or not rel_close >= 1.0:
            raise ValueError("z_open must be > 0, rel_open > 1, rel_close >= 1")
        if not z_floor_frac > 0.0:
            raise ValueError(f"z_floor_frac must be > 0, got {z_floor_frac}")
        self._alpha = ewma_alpha
        self._gap_factor = gap_factor
        self._outage_min_steps = outage_min_steps
        self._z_open = z_open
        self._rel_open = rel_open
        self._rel_close = rel_close
        self._z_floor_frac = z_floor_frac
        self._open_streak = brownout_open_streak
        self._close_streak = brownout_close_streak
        self._brownout_min_steps = brownout_min_steps

        self._watches: list[_Watch] = []
        self._now = 0.0
        self._fleet_step_ewma: float | None = None
        self._next_sweep_s: float | None = None
        self._outages: list[ObservedOutage] = []
        self._brownouts: list[ObservedBrownout] = []

    # -- results -----------------------------------------------------------

    @property
    def outages(self) -> tuple[ObservedOutage, ...]:
        return tuple(sorted(self._outages, key=lambda o: (o.detected_s, o.replica)))

    @property
    def brownouts(self) -> tuple[ObservedBrownout, ...]:
        return tuple(sorted(self._brownouts, key=lambda b: (b.detected_s, b.replica)))

    def summary(self) -> dict[str, object]:
        """Observed-side aggregates (JSON-ready, no ground truth needed)."""
        recovered = [o for o in self._outages if o.resolution != "run-end"]
        mttr = [o.closed_s - o.detected_s for o in recovered]
        return {
            "outages": [o.to_dict() for o in self.outages],
            "brownouts": [b.to_dict() for b in self.brownouts],
            "observed_mttr_s": sum(mttr) / len(mttr) if mttr else 0.0,
        }

    # -- internal mechanics ------------------------------------------------

    def _close_outage(self, w: _Watch, t_s: float, resolution: str) -> None:
        if w.outage_open is None:
            return
        signal, detected_s, last_progress_s = w.outage_open
        w.outage_open = None
        self._outages.append(
            ObservedOutage(
                replica=w.rid,
                signal=signal,
                detected_s=detected_s,
                closed_s=max(t_s, detected_s),
                resolution=resolution,
                last_progress_s=last_progress_s,
            )
        )

    def _close_brownout(self, w: _Watch, t_s: float, resolution: str) -> None:
        if w.brownout_open_s is None:
            return
        self._brownouts.append(
            ObservedBrownout(
                replica=w.rid,
                detected_s=w.brownout_open_s,
                closed_s=max(t_s, w.brownout_open_s),
                resolution=resolution,
                peak_z=w.brownout_peak_z,
            )
        )
        w.brownout_open_s = None
        w.brownout_peak_z = 0.0

    def _progress(self, w: _Watch, t_s: float) -> None:
        w.last_progress_s = t_s
        if w.state == "written-off":
            # a replica we had given up on is demonstrably alive again
            w.state = "running"
        if w.outage_open is not None:
            self._close_outage(w, t_s, "resumed")

    def _sweep(self, t_s: float) -> None:
        for w in self._watches:
            if w.state not in ("running", "draining"):
                continue
            if w.outage_open is not None or w.steps < self._outage_min_steps:
                continue
            expect_s = w.ewma_raw_s
            if expect_s is None or not expect_s > 0.0:
                continue
            if w.active <= 0 and w.queue <= 0:
                continue
            if t_s - w.last_progress_s > self._gap_factor * expect_s:
                signal = "completion-gap" if w.active > 0 else "queue-stall"
                w.outage_open = (signal, t_s, w.last_progress_s)

    def _tick(self, t_s: float) -> None:
        """Advance the detector's clock; sweep on the fleet step cadence."""
        if t_s > self._now:
            self._now = t_s
        step_s = self._fleet_step_ewma
        if step_s is None or not step_s > 0.0:
            return
        if self._next_sweep_s is None:
            self._next_sweep_s = t_s + step_s
        elif t_s >= self._next_sweep_s:
            self._sweep(t_s)
            self._next_sweep_s = t_s + step_s

    # -- MetricsRecorder hooks (benign channel) ----------------------------

    def on_run_start(self, t_s: float, meta: Mapping[str, float]) -> None:
        self._now = t_s

    def on_replica_start(
        self, t_s: float, rid: int, regime: int, booting: bool, ready_s: float, billed_from_s: float
    ) -> None:
        self._tick(t_s)
        if rid != len(self._watches):
            raise ValueError(f"replica ids must arrive densely; got {rid}, expected {len(self._watches)}")
        self._watches.append(_Watch(rid, "booting" if booting else "running", max(t_s, ready_s)))

    def on_boot_ready(self, t_s: float, rid: int) -> None:
        self._tick(t_s)
        w = self._watches[rid]
        w.state = "running"
        w.last_progress_s = t_s
        # one replica's worth of capacity came back: the oldest believed
        # outage is considered replaced
        open_watches = [x for x in self._watches if x.outage_open is not None]
        if open_watches:
            oldest = min(open_watches, key=lambda x: (x.outage_open or ("", 0.0, 0.0))[1])
            self._close_outage(oldest, t_s, "replaced")
            # write the replaced replica off: its believed census still
            # holds the work that died with it, and re-alarming on that
            # phantom forever would page repeatedly for one incident.  Any
            # observed progress revives the watch (see ``_progress``).
            oldest.state = "written-off"

    def on_drain(self, t_s: float, rid: int) -> None:
        self._tick(t_s)
        self._watches[rid].state = "draining"

    def on_stop(self, t_s: float, rid: int) -> None:
        self._tick(t_s)
        w = self._watches[rid]
        w.state = "stopped"
        self._close_outage(w, t_s, "resumed")
        self._close_brownout(w, t_s, "cleared")

    def on_enqueue(self, t_s: float, rid: int, req_id: int) -> None:
        self._tick(t_s)
        self._watches[rid].queue += 1

    def on_requeue(self, t_s: float, rid: int, count: int) -> None:
        self._tick(t_s)
        self._watches[rid].queue -= count

    def on_shed(self, t_s: float, req_id: int, rid: int | None, reason: str) -> None:
        self._tick(t_s)

    def on_admit(self, t_s: float, rid: int, req_ids: Sequence[int], admission_s: float) -> None:
        self._tick(t_s)
        w = self._watches[rid]
        n = len(req_ids)
        w.queue -= n
        w.active += n
        self._progress(w, t_s)

    def on_step_end(self, t_s: float, rid: int, step_s: float, batch: int) -> None:
        self._tick(t_s)
        w = self._watches[rid]
        w.steps += 1
        self._progress(w, t_s)
        a = self._alpha
        self._fleet_step_ewma = (
            step_s
            if self._fleet_step_ewma is None
            else (1.0 - a) * self._fleet_step_ewma + a * step_s
        )
        if w.ewma_raw_s is None:
            w.ewma_raw_s = step_s
        elif w.brownout_open_s is None:
            w.ewma_raw_s = (1.0 - a) * w.ewma_raw_s + a * step_s
        # normalized step cost: batch growth is expected to slow steps,
        # batch shrink is not expected to speed them past the baseline
        if w.ewma_batch is None or not w.ewma_batch > 0.0:
            scale = 1.0
        else:
            scale = max(1.0, float(batch) / w.ewma_batch)
        x = step_s / scale
        if w.norm_mean is None:
            w.norm_mean = x
            w.norm_var = 0.0
            w.ewma_batch = float(batch)
            return
        mean = w.norm_mean
        floor = self._z_floor_frac * mean
        z = (x - mean) / math.sqrt(w.norm_var + floor * floor) if mean > 0.0 else 0.0
        slow = w.steps > self._brownout_min_steps and x > self._rel_open * mean and z > self._z_open
        calm = x <= self._rel_close * mean
        if w.brownout_open_s is None:
            if slow:
                # anomalous step: keep it out of the baselines so the
                # anomaly cannot normalize itself away mid-streak
                w.slow_streak += 1
                if w.slow_streak >= self._open_streak:
                    w.brownout_open_s = t_s
                    w.brownout_peak_z = z
                    w.slow_streak = 0
                    w.calm_streak = 0
            else:
                w.slow_streak = 0
                delta = x - mean
                w.norm_mean = mean + a * delta
                w.norm_var = (1.0 - a) * (w.norm_var + a * delta * delta)
                w.ewma_batch = (1.0 - a) * w.ewma_batch + a * float(batch)
        else:
            w.brownout_peak_z = max(w.brownout_peak_z, z)
            w.calm_streak = w.calm_streak + 1 if calm else 0
            if w.calm_streak >= self._close_streak:
                self._close_brownout(w, t_s, "cleared")
                w.calm_streak = 0

    def on_complete(
        self, t_s: float, rid: int, req_id: int, arrival_s: float, admitted_s: float, tokens: int
    ) -> None:
        self._tick(t_s)
        w = self._watches[rid]
        w.active -= 1
        self._progress(w, t_s)

    def on_scale(
        self,
        t_s: float,
        direction: str,
        queue_per_replica: float,
        replicas_before: int,
        replicas_after: int,
        cold_start_s: float,
    ) -> None:
        self._tick(t_s)

    # -- chaos-channel hooks: deliberately blind ---------------------------
    # The detector must infer faults from request-level signals; reading
    # any of these would be telling it the answer.

    def on_preempt(self, t_s: float, rid: int, grace_s: float) -> None:
        pass

    def on_fail(
        self, t_s: float, rid: int, kind: str, lost_active: int, lost_queued: int
    ) -> None:
        pass

    def on_retry(
        self, t_s: float, req_id: int, rid: int, attempt: int, delay_s: float, was_active: bool
    ) -> None:
        pass

    def on_lost(
        self, t_s: float, req_id: int, rid: int, attempts: int, reason: str, was_active: bool
    ) -> None:
        pass

    def on_recover(self, t_s: float, rid: int, for_rid: int, cold_start_s: float) -> None:
        pass

    def on_run_end(self, t_s: float) -> None:
        self._tick(t_s)
        for w in self._watches:
            self._close_outage(w, t_s, "run-end")
            self._close_brownout(w, t_s, "run-end")


class FailureLike(Protocol):
    """The ground-truth failure fields the scorer reads (duck-typed so
    :mod:`repro.obs` never imports :mod:`repro.fleet`)."""

    @property
    def time_s(self) -> float: ...

    @property
    def replica_id(self) -> int: ...

    @property
    def kind(self) -> str: ...

    @property
    def lost_active(self) -> int: ...

    @property
    def lost_queued(self) -> int: ...

    @property
    def recovered_at_s(self) -> float | None: ...


def _latency_stats(latencies: Sequence[float]) -> dict[str, float]:
    if not latencies:
        return {"median_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
    return {
        "median_s": float(median(latencies)),
        "mean_s": sum(latencies) / len(latencies),
        "max_s": max(latencies),
    }


def score_against_chaos(
    *,
    outages: Sequence[ObservedOutage],
    brownouts: Sequence[ObservedBrownout],
    failures: Sequence[FailureLike],
    chaos: ChaosSpec | None,
) -> dict[str, object]:
    """Grade observed detections against the injected ground truth.

    Outages: an injected failure is *observable* when it destroyed work
    (``lost_active + lost_queued > 0``); it counts as detected when an
    observed outage on the same replica opens at or after the fault time,
    each detection matching at most one fault.  Brownouts match on
    replica + interval overlap with the injected window.  Precision uses
    all observed events; recall uses observable ground-truth events.
    """
    observable = [f for f in failures if f.lost_active + f.lost_queued > 0]
    detections = sorted(outages, key=lambda o: (o.detected_s, o.replica))
    used = [False] * len(detections)
    latencies: list[float] = []
    matched = 0
    for f in sorted(observable, key=lambda f: (f.time_s, f.replica_id)):
        for i, o in enumerate(detections):
            if used[i] or o.replica != f.replica_id or o.detected_s < f.time_s:
                continue
            used[i] = True
            matched += 1
            latencies.append(o.detected_s - f.time_s)
            break

    true_windows = list(chaos.brownouts) if chaos is not None else []
    b_used = [False] * len(brownouts)
    b_latencies: list[float] = []
    b_matched = 0
    for spec in sorted(true_windows, key=lambda b: (b.start_s, b.replica)):
        end_s = spec.start_s + spec.duration_s
        for i, b in enumerate(brownouts):
            if b_used[i] or b.replica != spec.replica:
                continue
            if b.detected_s < end_s and b.closed_s > spec.start_s:
                b_used[i] = True
                b_matched += 1
                b_latencies.append(max(0.0, b.detected_s - spec.start_s))
                break

    recovered = [f for f in observable if f.recovered_at_s is not None]
    true_mttr = [float(f.recovered_at_s or 0.0) - f.time_s for f in recovered]
    obs_recovered = [o for o in outages if o.resolution != "run-end"]
    obs_mttr = [o.closed_s - o.detected_s for o in obs_recovered]
    return {
        "outages": {
            "true_events": len(failures),
            "observable_events": len(observable),
            "detected": matched,
            "observed_events": len(outages),
            "false_alarms": len(detections) - matched,
            "recall": matched / len(observable) if observable else 1.0,
            "precision": matched / len(detections) if detections else 1.0,
            "detection_latency": _latency_stats(latencies),
            "observed_mttr_s": sum(obs_mttr) / len(obs_mttr) if obs_mttr else 0.0,
            "true_mttr_s": sum(true_mttr) / len(true_mttr) if true_mttr else 0.0,
        },
        "brownouts": {
            "true_events": len(true_windows),
            "detected": b_matched,
            "observed_events": len(brownouts),
            "false_alarms": len(brownouts) - b_matched,
            "recall": b_matched / len(true_windows) if true_windows else 1.0,
            "precision": b_matched / len(brownouts) if brownouts else 1.0,
            "detection_latency": _latency_stats(b_latencies),
        },
    }
