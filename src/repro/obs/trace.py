"""Chrome-trace (Perfetto) JSON export for recorded span logs.

The output follows the Trace Event Format accepted by ``chrome://tracing``
and https://ui.perfetto.dev — a ``{"traceEvents": [...]}`` document whose
timestamps are microseconds relative to the run's first arrival:

* decode steps, replica boots and drains are complete-spans (``ph: "X"``)
  on ``pid 0`` ("fleet"), one thread track per replica;
* request lifecycles are async spans (``ph: "b"`` / ``"e"``, keyed by
  ``cat: "request"`` + the request id) on ``pid 1`` ("requests"): a
  ``queue`` span from enqueue to admission, then a ``decode`` span from
  admission to completion;
* sheds and autoscale decisions are instants (``ph: "i"``), as are the
  chaos subsystem's preempt notices, replica failures, request retries
  and terminal losses; a failed replica's outage (failure → replacement
  routable, or run end if it never recovered) is a complete-span;
* the per-window timeline is mirrored as counter tracks (``ph: "C"``)
  so queue depth / active batch / replica census plot natively.

:func:`validate_chrome_trace` is the structural check used by the test
suite and CI on exported artefacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:
    from repro.obs.recorder import TimelineRecorder

__all__ = ["chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

_FLEET_PID = 0
_REQUESTS_PID = 1

#: Event phases this exporter emits (and the validator accepts).
_KNOWN_PHASES = frozenset({"X", "b", "e", "i", "M", "C"})


def _meta(name: str, pid: int, tid: int, value: str) -> dict[str, object]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "ts": 0, "args": {"name": value}}


def chrome_trace(
    rec: TimelineRecorder,
    *,
    alerts: Sequence[Mapping[str, object]] | None = None,
    detections: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Build the trace document from a (finished) :class:`TimelineRecorder`.

    ``alerts`` (``SimReport.alerts``: burn-rate :class:`AlertSpan` dicts)
    and ``detections`` (``SimReport.detection``: the observed
    outage/brownout record) add ``cat: "alert"`` complete-spans next to
    the ground-truth ``cat: "chaos"`` spans, so detection latency is
    visible as the horizontal gap between the two tracks.
    """
    t0_s = rec.t0_s

    def us(t_s: float) -> float:
        return round((t_s - t0_s) * 1e6, 3)

    evs: list[dict[str, object]] = [
        _meta("process_name", _FLEET_PID, 0, "fleet"),
        _meta("process_name", _REQUESTS_PID, 0, "requests"),
    ]
    for row in rec.replica_rows():
        rid = int(row["replica"])  # type: ignore[call-overload]
        evs.append(
            _meta("thread_name", _FLEET_PID, rid, f"replica {rid} (regime {row['regime']})")
        )

    for rid, start_s, dur_s, batch in rec._span_steps:
        evs.append(
            {
                "name": "step",
                "cat": "replica",
                "ph": "X",
                "pid": _FLEET_PID,
                "tid": rid,
                "ts": us(start_s),
                "dur": round(max(0.0, dur_s) * 1e6, 3),
                "args": {"batch": batch},
            }
        )
    for name, spans in (("boot", rec._span_boots), ("drain", rec._span_drains)):
        for rid, start_s, dur_s in spans:
            evs.append(
                {
                    "name": name,
                    "cat": "replica",
                    "ph": "X",
                    "pid": _FLEET_PID,
                    "tid": rid,
                    "ts": us(start_s),
                    "dur": round(max(0.0, dur_s) * 1e6, 3),
                    "args": {},
                }
            )

    for name, req_spans in (("queue", rec._span_queue), ("decode", rec._span_decode)):
        for req_id, rid, start_s, dur_s in req_spans:
            common = {
                "name": name,
                "cat": "request",
                "id": str(req_id),
                "pid": _REQUESTS_PID,
                "tid": rid,
                "args": {"req": req_id, "replica": rid},
            }
            evs.append({**common, "ph": "b", "ts": us(start_s)})
            evs.append({**common, "ph": "e", "ts": us(start_s + max(0.0, dur_s))})

    for t_s, req_id, rid, reason in rec._span_sheds:
        evs.append(
            {
                "name": "shed",
                "cat": "admission",
                "ph": "i",
                "s": "g",
                "pid": _FLEET_PID,
                "tid": max(0, rid),
                "ts": us(t_s),
                "args": {"req": req_id, "reason": reason},
            }
        )
    for rid, start_s, dur_s in rec._span_outages:
        evs.append(
            {
                "name": "outage",
                "cat": "chaos",
                "ph": "X",
                "pid": _FLEET_PID,
                "tid": rid,
                "ts": us(start_s),
                "dur": round(max(0.0, dur_s) * 1e6, 3),
                "args": {},
            }
        )
    for t_s, rid, grace_s in rec._span_preempts:
        evs.append(
            {
                "name": "preempt",
                "cat": "chaos",
                "ph": "i",
                "s": "g",
                "pid": _FLEET_PID,
                "tid": rid,
                "ts": us(t_s),
                "args": {"grace_s": grace_s},
            }
        )
    for t_s, rid, kind, lost_active, lost_queued in rec._span_fails:
        evs.append(
            {
                "name": "fail",
                "cat": "chaos",
                "ph": "i",
                "s": "g",
                "pid": _FLEET_PID,
                "tid": rid,
                "ts": us(t_s),
                "args": {"kind": kind, "lost_active": lost_active, "lost_queued": lost_queued},
            }
        )
    for t_s, req_id, rid, attempt, delay_s in rec._span_retries:
        evs.append(
            {
                "name": "retry",
                "cat": "chaos",
                "ph": "i",
                "s": "g",
                "pid": _FLEET_PID,
                "tid": rid,
                "ts": us(t_s),
                "args": {"req": req_id, "attempt": attempt, "delay_s": delay_s},
            }
        )
    for t_s, req_id, rid, attempts, reason in rec._span_losts:
        evs.append(
            {
                "name": "lost",
                "cat": "chaos",
                "ph": "i",
                "s": "g",
                "pid": _FLEET_PID,
                "tid": rid,
                "ts": us(t_s),
                "args": {"req": req_id, "attempts": attempts, "reason": reason},
            }
        )
    for t_s, direction, queue_per_replica, before, after, cold_start_s in rec._scale_events:
        evs.append(
            {
                "name": f"scale-{direction}",
                "cat": "autoscaler",
                "ph": "i",
                "s": "g",
                "pid": _FLEET_PID,
                "tid": 0,
                "ts": us(t_s),
                "args": {
                    "queue_per_replica": queue_per_replica,
                    "replicas_before": before,
                    "replicas_after": after,
                    "cold_start_s": cold_start_s,
                },
            }
        )

    for span in alerts or ():
        evs.append(
            {
                "name": f"{span.get('severity', 'alert')}:{span.get('signal', '?')}",
                "cat": "alert",
                "ph": "X",
                "pid": _FLEET_PID,
                "tid": 0,
                "ts": us(float(span.get("open_s", t0_s))),  # type: ignore[arg-type]
                "dur": round(
                    max(0.0, float(span.get("close_s", 0.0)) - float(span.get("open_s", 0.0)))  # type: ignore[arg-type]
                    * 1e6,
                    3,
                ),
                "args": {
                    "burn_at_open": span.get("burn_at_open"),
                    "peak_burn": span.get("peak_burn"),
                    "windows": span.get("windows"),
                },
            }
        )
    if detections is not None:
        observed = (
            ("observed-outage", detections.get("outages")),
            ("observed-brownout", detections.get("brownouts")),
        )
        for name, rows in observed:
            if not isinstance(rows, Sequence):
                continue
            for row in rows:
                if not isinstance(row, Mapping):
                    continue
                open_s = float(row.get("detected_s", 0.0))  # type: ignore[arg-type]
                close_s = float(row.get("closed_s", open_s))  # type: ignore[arg-type]
                args = {k: v for k, v in row.items() if k not in ("detected_s", "closed_s")}
                evs.append(
                    {
                        "name": name,
                        "cat": "alert",
                        "ph": "X",
                        "pid": _FLEET_PID,
                        "tid": int(row.get("replica", 0)),  # type: ignore[call-overload]
                        "ts": us(open_s),
                        "dur": round(max(0.0, close_s - open_s) * 1e6, 3),
                        "args": args,
                    }
                )

    timeline = rec.timeline()
    time_rel = timeline["time_s"]
    windows = timeline["windows"]
    assert isinstance(time_rel, list) and isinstance(windows, dict)
    for counter, column in (
        ("queued", windows["queue_total"]),
        ("active", windows["active_total"]),
        ("replicas_routable", windows["routable"]),
    ):
        for rel_s, value in zip(time_rel, column, strict=True):
            evs.append(
                {
                    "name": counter,
                    "ph": "C",
                    "pid": _FLEET_PID,
                    "tid": 0,
                    "ts": round(rel_s * 1e6, 3),
                    "args": {counter: value},
                }
            )

    return {
        "traceEvents": evs,
        "displayTimeUnit": "ms",
        "otherData": {
            "t0_s": t0_s,
            "t_end_s": rec.t_end_s,
            "num_replicas": rec.num_replicas,
            "dropped_span_events": rec.dropped_span_events,
        },
    }


def validate_chrome_trace(doc: object) -> int:
    """Structurally validate a trace document; return the event count.

    Raises :class:`ValueError` on the first problem found.  This is the
    check CI runs on exported artefacts, so keep it strict enough to
    catch real export bugs (unknown phases, negative durations,
    unbalanced async begin/end pairs) but agnostic to event ordering.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"trace must be a JSON object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace must carry a non-empty 'traceEvents' list")
    async_balance: dict[tuple[str, str, str], int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"{where}: {key} must be an int")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                raise ValueError(f"{where}: 'X' event needs a non-negative dur, got {dur!r}")
        elif ph in ("b", "e"):
            cat, ev_id = ev.get("cat"), ev.get("id")
            if not isinstance(cat, str) or not isinstance(ev_id, str):
                raise ValueError(f"{where}: async event needs string 'cat' and 'id'")
            key_async = (cat, ev_id, name)
            async_balance[key_async] = async_balance.get(key_async, 0) + (1 if ph == "b" else -1)
        elif ph == "i":
            if ev.get("s") not in ("g", "p", "t"):
                raise ValueError(f"{where}: instant needs scope 's' in g/p/t")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where}: counter event needs non-empty args")
    unbalanced = {k: v for k, v in async_balance.items() if v != 0}
    if unbalanced:
        raise ValueError(f"unbalanced async begin/end pairs: {sorted(unbalanced)[:5]}")
    return len(events)


def write_chrome_trace(doc: dict[str, object], path: str | Path) -> Path:
    """Validate and write a trace document; return the written path."""
    validate_chrome_trace(doc)
    out = Path(path)
    out.write_text(json.dumps(doc) + "\n")
    return out
