"""Metric recorders: the engine hook protocol and the timeline sampler.

The simulators expose a small set of lifecycle hooks (arrival shed,
enqueue, admit, step end, completion, replica boot/drain/stop, autoscale
decisions).  A :class:`MetricsRecorder` receives those hooks; the engines
only ever *call* it — recording is observation-only by contract, so a
recorder must never draw rng samples or alter float evaluation order
(see ``DESIGN.md`` "Observability").  Both fleet engines drive their
hooks through the shared :class:`repro.fleet.result.FleetObs` adapter,
which is what makes the recorded streams — and therefore the timelines —
bit-identical between the event-heap oracle and the vectorized tick
engine.

:class:`NullRecorder` is the zero-overhead default (engines skip hook
dispatch entirely when no recorder is attached; NullRecorder exists for
call sites that want an always-valid recorder object).

:class:`TimelineRecorder` folds the hook stream into:

* per-window time-series (queue depth, active batch, busy time, shed /
  admit / completion counts, rolling latency, replica census, cumulative
  cost) with a deterministic auto-sizing window: it starts tiny and
  doubles — pair-merging closed windows — whenever the horizon outgrows
  ``2 * max_windows`` windows, so memory is bounded without knowing the
  horizon up front and identical hook streams always produce identical
  timelines;
* bounded span logs (decode steps, replica boot/drain, request
  queue/decode lifecycles, shed instants, scale events) that
  :mod:`repro.obs.trace` turns into Chrome-trace JSON.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Protocol, Sequence

__all__ = ["MetricsRecorder", "NullRecorder", "TeeRecorder", "TimelineRecorder"]

#: Initial auto window width (seconds).  Tiny on purpose: the recorder
#: doubles it as the simulated horizon grows, so the final width is
#: always within 2x of ``horizon / max_windows`` regardless of scale.
_AUTO_WINDOW0_S = 2.0**-20


class MetricsRecorder(Protocol):
    """Hook surface the simulators drive.  All times are simulated seconds."""

    def on_run_start(self, t_s: float, meta: Mapping[str, float]) -> None:
        """Run begins at ``t_s`` (first arrival).  ``meta`` carries cost
        constants (``num_gpus`` per replica, ``gpu_hour_usd``) when known."""
        ...

    def on_replica_start(
        self, t_s: float, rid: int, regime: int, booting: bool, ready_s: float, billed_from_s: float
    ) -> None:
        """Replica ``rid`` exists from ``t_s``; routable at ``ready_s``."""
        ...

    def on_boot_ready(self, t_s: float, rid: int) -> None: ...

    def on_drain(self, t_s: float, rid: int) -> None: ...

    def on_stop(self, t_s: float, rid: int) -> None: ...

    def on_enqueue(self, t_s: float, rid: int, req_id: int) -> None: ...

    def on_requeue(self, t_s: float, rid: int, count: int) -> None:
        """``count`` queued requests left replica ``rid`` (migration)."""
        ...

    def on_shed(self, t_s: float, req_id: int, rid: int | None, reason: str) -> None: ...

    def on_admit(
        self, t_s: float, rid: int, req_ids: Sequence[int], admission_s: float
    ) -> None: ...

    def on_step_end(self, t_s: float, rid: int, step_s: float, batch: int) -> None: ...

    def on_complete(
        self, t_s: float, rid: int, req_id: int, arrival_s: float, admitted_s: float, tokens: int
    ) -> None: ...

    def on_scale(
        self,
        t_s: float,
        direction: str,
        queue_per_replica: float,
        replicas_before: int,
        replicas_after: int,
        cold_start_s: float,
    ) -> None: ...

    def on_preempt(self, t_s: float, rid: int, grace_s: float) -> None:
        """Replica ``rid`` received a preemption notice; drains for ``grace_s``."""
        ...

    def on_fail(
        self, t_s: float, rid: int, kind: str, lost_active: int, lost_queued: int
    ) -> None:
        """Replica ``rid`` failed hard (``kind``: crash/preempt), losing work."""
        ...

    def on_retry(
        self, t_s: float, req_id: int, rid: int, attempt: int, delay_s: float, was_active: bool
    ) -> None:
        """Attempt ``attempt`` of ``req_id`` died on ``rid``; re-enters routing
        after ``delay_s``.  ``was_active``: decoding (vs still queued)."""
        ...

    def on_lost(
        self, t_s: float, req_id: int, rid: int, attempts: int, reason: str, was_active: bool
    ) -> None:
        """``req_id`` exhausted its retry budget and is terminally lost."""
        ...

    def on_recover(self, t_s: float, rid: int, for_rid: int, cold_start_s: float) -> None:
        """Replacement replica ``rid`` went routable, recovering failed ``for_rid``."""
        ...

    def on_run_end(self, t_s: float) -> None: ...


class NullRecorder:
    """A recorder that records nothing; every hook returns immediately."""

    __slots__ = ()

    def on_run_start(self, t_s: float, meta: Mapping[str, float]) -> None:
        pass

    def on_replica_start(
        self, t_s: float, rid: int, regime: int, booting: bool, ready_s: float, billed_from_s: float
    ) -> None:
        pass

    def on_boot_ready(self, t_s: float, rid: int) -> None:
        pass

    def on_drain(self, t_s: float, rid: int) -> None:
        pass

    def on_stop(self, t_s: float, rid: int) -> None:
        pass

    def on_enqueue(self, t_s: float, rid: int, req_id: int) -> None:
        pass

    def on_requeue(self, t_s: float, rid: int, count: int) -> None:
        pass

    def on_shed(self, t_s: float, req_id: int, rid: int | None, reason: str) -> None:
        pass

    def on_admit(self, t_s: float, rid: int, req_ids: Sequence[int], admission_s: float) -> None:
        pass

    def on_step_end(self, t_s: float, rid: int, step_s: float, batch: int) -> None:
        pass

    def on_complete(
        self, t_s: float, rid: int, req_id: int, arrival_s: float, admitted_s: float, tokens: int
    ) -> None:
        pass

    def on_scale(
        self,
        t_s: float,
        direction: str,
        queue_per_replica: float,
        replicas_before: int,
        replicas_after: int,
        cold_start_s: float,
    ) -> None:
        pass

    def on_preempt(self, t_s: float, rid: int, grace_s: float) -> None:
        pass

    def on_fail(
        self, t_s: float, rid: int, kind: str, lost_active: int, lost_queued: int
    ) -> None:
        pass

    def on_retry(
        self, t_s: float, req_id: int, rid: int, attempt: int, delay_s: float, was_active: bool
    ) -> None:
        pass

    def on_lost(
        self, t_s: float, req_id: int, rid: int, attempts: int, reason: str, was_active: bool
    ) -> None:
        pass

    def on_recover(self, t_s: float, rid: int, for_rid: int, cold_start_s: float) -> None:
        pass

    def on_run_end(self, t_s: float) -> None:
        pass


class _ReplicaTrack:
    """Live mirror of one replica's externally-visible counters."""

    __slots__ = (
        "rid",
        "regime",
        "state",
        "ready_s",
        "billed_from_s",
        "stopped_s",
        "drain_from_s",
        "queue",
        "active",
        "busy_s",
        "steps",
        "admitted",
        "completed",
        "tokens",
    )

    def __init__(self, rid: int, regime: int, state: str, ready_s: float, billed_from_s: float):
        self.rid = rid
        self.regime = regime
        self.state = state
        self.ready_s = ready_s
        self.billed_from_s = billed_from_s
        self.stopped_s: float | None = None
        self.drain_from_s: float | None = None
        self.queue = 0
        self.active = 0
        self.busy_s = 0.0
        self.steps = 0
        self.admitted = 0
        self.completed = 0
        self.tokens = 0


class TimelineRecorder:
    """Folds the hook stream into per-window time-series and span logs.

    Single-use: attach one instance per simulation run.  ``window_s``
    pins the window width exactly (memory then grows with the horizon);
    leaving it ``None`` enables the deterministic doubling scheme, which
    keeps between ``max_windows`` and ``2 * max_windows`` windows alive.
    ``spans=False`` drops all span/instant logging (timelines only);
    ``max_span_events`` bounds total span memory — once exhausted,
    further span events are counted in ``dropped_span_events`` but not
    stored.  Scale events are always kept (there are few by construction).
    ``slow_latency_s`` adds a per-window count of completions slower than
    the threshold (the SLO burn evaluator's latency error signal); left
    ``None``, the ``slow`` column is all zeros.
    """

    def __init__(
        self,
        *,
        window_s: float | None = None,
        max_windows: int = 128,
        spans: bool = True,
        max_span_events: int = 20_000,
        slow_latency_s: float | None = None,
    ) -> None:
        if window_s is not None and not window_s > 0.0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        if max_span_events < 0:
            raise ValueError(f"max_span_events must be >= 0, got {max_span_events}")
        if slow_latency_s is not None and not slow_latency_s > 0.0:
            raise ValueError(f"slow_latency_s must be > 0, got {slow_latency_s}")
        self._slow_latency_s = slow_latency_s
        self._explicit_window = window_s
        self._window_s = window_s if window_s is not None else _AUTO_WINDOW0_S
        self._max_windows = max_windows
        self._spans = spans
        self._max_span_events = max_span_events

        self._t0: float | None = None
        self._t_end: float | None = None
        self._meta: dict[str, float] = {}
        self._reps: list[_ReplicaTrack] = []

        # closed-boundary snapshot columns (one entry per emitted boundary)
        self._b_t: list[float] = []
        self._b_queue: list[list[int]] = []
        self._b_active: list[list[int]] = []
        self._b_busy: list[list[float]] = []
        self._b_routable: list[int] = []
        self._b_booting: list[int] = []
        self._b_draining: list[int] = []
        self._b_failed: list[int] = []
        self._b_cost: list[float] = []
        self._b_cum_admitted: list[int] = []
        self._b_cum_completed: list[int] = []
        self._b_cum_shed: list[int] = []

        # closed-window counters (parallel to the boundary columns)
        self._w_admitted: list[int] = []
        self._w_completed: list[int] = []
        self._w_shed: list[int] = []
        self._w_lost: list[int] = []
        self._w_slow: list[int] = []
        self._w_lat_sum: list[float] = []
        self._w_lat_max: list[float] = []

        # open-window accumulators
        self._win_admitted = 0
        self._win_completed = 0
        self._win_shed = 0
        self._win_lost = 0
        self._win_slow = 0
        self._win_lat_sum = 0.0
        self._win_lat_max = 0.0

        # cumulative totals
        self._cum_admitted = 0
        self._cum_completed = 0
        self._cum_shed = 0
        self._cum_failures = 0
        self._cum_retries = 0
        self._cum_lost = 0
        self._cum_slow = 0

        # span logs (consumed by repro.obs.trace)
        self._span_steps: list[tuple[int, float, float, int]] = []  # rid, start_s, dur_s, batch
        self._span_boots: list[tuple[int, float, float]] = []  # rid, start_s, dur_s
        self._span_drains: list[tuple[int, float, float]] = []
        self._span_queue: list[tuple[int, int, float, float]] = []  # req, rid, start_s, dur_s
        self._span_decode: list[tuple[int, int, float, float]] = []
        self._span_sheds: list[tuple[float, int, int, str]] = []  # t_s, req, rid(-1=none), reason
        self._scale_events: list[tuple[float, str, float, int, int, float]] = []
        # chaos span logs: preempt/fail/retry/lost instants + outage windows
        self._span_preempts: list[tuple[float, int, float]] = []  # t_s, rid, grace_s
        self._span_fails: list[tuple[float, int, str, int, int]] = []  # t, rid, kind, act, q
        self._span_retries: list[tuple[float, int, int, int, float]] = []  # t, req, rid, n, delay
        self._span_losts: list[tuple[float, int, int, int, str]] = []  # t, req, rid, n, reason
        self._span_outages: list[tuple[int, float, float]] = []  # rid, start_s, dur_s
        self._open_outage: dict[int, float] = {}
        self._open_queue: dict[int, float] = {}
        self._open_decode: dict[int, tuple[float, int]] = {}
        self._span_used = 0
        self.dropped_span_events = 0

    # -- properties used by trace export / report printing ----------------

    @property
    def t0_s(self) -> float:
        return self._t0 if self._t0 is not None else 0.0

    @property
    def t_end_s(self) -> float:
        if self._t_end is not None:
            return self._t_end
        return self._b_t[-1] if self._b_t else self.t0_s

    @property
    def window_s(self) -> float:
        return self._window_s

    @property
    def num_replicas(self) -> int:
        return len(self._reps)

    @property
    def slow_latency_s(self) -> float | None:
        """The slow-completion threshold, or ``None`` when the ``slow``
        column is disabled (all zeros)."""
        return self._slow_latency_s

    # -- internal mechanics ------------------------------------------------

    def _take_span_budget(self) -> bool:
        if not self._spans:
            return False
        if self._span_used < self._max_span_events:
            self._span_used += 1
            return True
        self.dropped_span_events += 1
        return False

    def _cost_usd_at(self, b_s: float) -> float:
        gpus = self._meta.get("num_gpus", 0.0)
        usd_hour = self._meta.get("gpu_hour_usd", 0.0)
        if gpus <= 0.0 or usd_hour <= 0.0:
            return 0.0
        hours = 0.0
        for r in self._reps:
            stop_s = r.stopped_s if r.stopped_s is not None else b_s
            hours += max(0.0, min(b_s, stop_s) - r.billed_from_s)
        return hours * gpus * usd_hour / 3600.0

    def _emit_boundary(self, b_s: float) -> None:
        reps = self._reps
        self._b_t.append(b_s)
        self._b_queue.append([r.queue for r in reps])
        self._b_active.append([r.active for r in reps])
        self._b_busy.append([r.busy_s for r in reps])
        self._b_routable.append(sum(1 for r in reps if r.state == "running"))
        self._b_booting.append(sum(1 for r in reps if r.state == "booting"))
        self._b_draining.append(sum(1 for r in reps if r.state == "draining"))
        self._b_failed.append(sum(1 for r in reps if r.state == "failed"))
        self._b_cost.append(self._cost_usd_at(b_s))
        self._b_cum_admitted.append(self._cum_admitted)
        self._b_cum_completed.append(self._cum_completed)
        self._b_cum_shed.append(self._cum_shed)
        self._w_admitted.append(self._win_admitted)
        self._w_completed.append(self._win_completed)
        self._w_shed.append(self._win_shed)
        self._w_lost.append(self._win_lost)
        self._w_slow.append(self._win_slow)
        self._w_lat_sum.append(self._win_lat_sum)
        self._w_lat_max.append(self._win_lat_max)
        self._win_admitted = 0
        self._win_completed = 0
        self._win_shed = 0
        self._win_lost = 0
        self._win_slow = 0
        self._win_lat_sum = 0.0
        self._win_lat_max = 0.0

    def _double_window(self) -> None:
        """Double the window width, pair-merging already-closed windows."""
        if len(self._b_t) % 2:
            # fold the dangling newest sample back into the open window;
            # its snapshot is discarded (snapshots are instantaneous)
            self._b_t.pop()
            self._b_queue.pop()
            self._b_active.pop()
            self._b_busy.pop()
            self._b_routable.pop()
            self._b_booting.pop()
            self._b_draining.pop()
            self._b_failed.pop()
            self._b_cost.pop()
            self._b_cum_admitted.pop()
            self._b_cum_completed.pop()
            self._b_cum_shed.pop()
            self._win_admitted += self._w_admitted.pop()
            self._win_completed += self._w_completed.pop()
            self._win_shed += self._w_shed.pop()
            self._win_lost += self._w_lost.pop()
            self._win_slow += self._w_slow.pop()
            self._win_lat_sum += self._w_lat_sum.pop()
            self._win_lat_max = max(self._win_lat_max, self._w_lat_max.pop())
        # keep every second boundary (they sit on the doubled grid) ...
        self._b_t = self._b_t[1::2]
        self._b_queue = self._b_queue[1::2]
        self._b_active = self._b_active[1::2]
        self._b_busy = self._b_busy[1::2]
        self._b_routable = self._b_routable[1::2]
        self._b_booting = self._b_booting[1::2]
        self._b_draining = self._b_draining[1::2]
        self._b_failed = self._b_failed[1::2]
        self._b_cost = self._b_cost[1::2]
        self._b_cum_admitted = self._b_cum_admitted[1::2]
        self._b_cum_completed = self._b_cum_completed[1::2]
        self._b_cum_shed = self._b_cum_shed[1::2]
        # ... and pair-sum the closed windows
        self._w_admitted = [
            a + b for a, b in zip(self._w_admitted[0::2], self._w_admitted[1::2], strict=True)
        ]
        self._w_completed = [
            a + b for a, b in zip(self._w_completed[0::2], self._w_completed[1::2], strict=True)
        ]
        self._w_shed = [a + b for a, b in zip(self._w_shed[0::2], self._w_shed[1::2], strict=True)]
        self._w_lost = [a + b for a, b in zip(self._w_lost[0::2], self._w_lost[1::2], strict=True)]
        self._w_slow = [a + b for a, b in zip(self._w_slow[0::2], self._w_slow[1::2], strict=True)]
        self._w_lat_sum = [
            a + b for a, b in zip(self._w_lat_sum[0::2], self._w_lat_sum[1::2], strict=True)
        ]
        self._w_lat_max = [
            max(a, b) for a, b in zip(self._w_lat_max[0::2], self._w_lat_max[1::2], strict=True)
        ]
        self._window_s *= 2.0

    def _flush(self, t_s: float) -> None:
        """Close every window boundary strictly before ``t_s``."""
        t0 = self._t0
        if t0 is None:
            raise RuntimeError("on_run_start must be called before any other hook")
        if self._explicit_window is None:
            while t_s - t0 > 2.0 * self._max_windows * self._window_s:
                self._double_window()
        while t0 + (len(self._b_t) + 1) * self._window_s < t_s:
            self._emit_boundary(t0 + (len(self._b_t) + 1) * self._window_s)

    # -- MetricsRecorder hooks ---------------------------------------------

    def on_run_start(self, t_s: float, meta: Mapping[str, float]) -> None:
        if self._t0 is not None:
            raise RuntimeError("TimelineRecorder is single-use; already attached to a run")
        self._t0 = t_s
        self._meta = dict(meta)

    def on_replica_start(
        self, t_s: float, rid: int, regime: int, booting: bool, ready_s: float, billed_from_s: float
    ) -> None:
        self._flush(t_s)
        if rid != len(self._reps):
            raise ValueError(f"replica ids must arrive densely; got {rid}, expected {len(self._reps)}")
        state = "booting" if booting else "running"
        self._reps.append(_ReplicaTrack(rid, regime, state, ready_s, billed_from_s))
        if booting and self._take_span_budget():
            self._span_boots.append((rid, t_s, max(0.0, ready_s - t_s)))

    def on_boot_ready(self, t_s: float, rid: int) -> None:
        self._flush(t_s)
        self._reps[rid].state = "running"

    def on_drain(self, t_s: float, rid: int) -> None:
        self._flush(t_s)
        r = self._reps[rid]
        r.state = "draining"
        r.drain_from_s = t_s

    def on_stop(self, t_s: float, rid: int) -> None:
        self._flush(t_s)
        r = self._reps[rid]
        r.state = "stopped"
        r.stopped_s = t_s
        if r.drain_from_s is not None and self._take_span_budget():
            self._span_drains.append((rid, r.drain_from_s, t_s - r.drain_from_s))
            r.drain_from_s = None

    def on_enqueue(self, t_s: float, rid: int, req_id: int) -> None:
        self._flush(t_s)
        self._reps[rid].queue += 1
        # a migrated request keeps its original enqueue time (still waiting)
        if self._spans and req_id not in self._open_queue:
            self._open_queue[req_id] = t_s

    def on_requeue(self, t_s: float, rid: int, count: int) -> None:
        self._flush(t_s)
        self._reps[rid].queue -= count

    def on_shed(self, t_s: float, req_id: int, rid: int | None, reason: str) -> None:
        self._flush(t_s)
        self._cum_shed += 1
        self._win_shed += 1
        if self._take_span_budget():
            self._span_sheds.append((t_s, req_id, -1 if rid is None else rid, reason))

    def on_admit(self, t_s: float, rid: int, req_ids: Sequence[int], admission_s: float) -> None:
        self._flush(t_s)
        n = len(req_ids)
        r = self._reps[rid]
        r.queue -= n
        r.active += n
        r.busy_s += admission_s
        r.admitted += n
        self._cum_admitted += n
        self._win_admitted += n
        if self._spans:
            for req_id in req_ids:
                start_s = self._open_queue.pop(req_id, None)
                if start_s is not None and self._take_span_budget():
                    self._span_queue.append((req_id, rid, start_s, t_s - start_s))
                if self._take_span_budget():
                    self._open_decode[req_id] = (t_s, rid)

    def on_step_end(self, t_s: float, rid: int, step_s: float, batch: int) -> None:
        self._flush(t_s)
        r = self._reps[rid]
        r.busy_s += step_s
        r.steps += 1
        if self._take_span_budget():
            self._span_steps.append((rid, t_s - step_s, step_s, batch))

    def on_complete(
        self, t_s: float, rid: int, req_id: int, arrival_s: float, admitted_s: float, tokens: int
    ) -> None:
        self._flush(t_s)
        latency_s = t_s - arrival_s
        self._cum_completed += 1
        self._win_completed += 1
        self._win_lat_sum += latency_s
        self._win_lat_max = max(self._win_lat_max, latency_s)
        if self._slow_latency_s is not None and latency_s > self._slow_latency_s:
            self._cum_slow += 1
            self._win_slow += 1
        r = self._reps[rid]
        r.active -= 1
        r.completed += 1
        r.tokens += tokens
        if self._spans:
            opened = self._open_decode.pop(req_id, None)
            if opened is not None:
                start_s, _ = opened
                self._span_decode.append((req_id, rid, start_s, t_s - start_s))

    def on_scale(
        self,
        t_s: float,
        direction: str,
        queue_per_replica: float,
        replicas_before: int,
        replicas_after: int,
        cold_start_s: float,
    ) -> None:
        self._flush(t_s)
        self._scale_events.append(
            (t_s, direction, queue_per_replica, replicas_before, replicas_after, cold_start_s)
        )

    def on_preempt(self, t_s: float, rid: int, grace_s: float) -> None:
        self._flush(t_s)
        r = self._reps[rid]
        r.state = "draining"
        r.drain_from_s = t_s
        if self._take_span_budget():
            self._span_preempts.append((t_s, rid, grace_s))

    def on_fail(
        self, t_s: float, rid: int, kind: str, lost_active: int, lost_queued: int
    ) -> None:
        # census counters (queue/active) are adjusted by the per-request
        # on_retry/on_lost hooks that follow, not here — one owner each
        self._flush(t_s)
        r = self._reps[rid]
        if r.drain_from_s is not None:
            if self._take_span_budget():
                self._span_drains.append((rid, r.drain_from_s, t_s - r.drain_from_s))
            r.drain_from_s = None
        r.state = "failed"
        r.stopped_s = t_s
        self._cum_failures += 1
        if self._take_span_budget():
            self._span_fails.append((t_s, rid, kind, lost_active, lost_queued))
        if self._spans:
            self._open_outage[rid] = t_s

    def on_retry(
        self, t_s: float, req_id: int, rid: int, attempt: int, delay_s: float, was_active: bool
    ) -> None:
        self._flush(t_s)
        r = self._reps[rid]
        if was_active:
            r.active -= 1
        else:
            r.queue -= 1
        self._cum_retries += 1
        if self._spans:
            # the aborted attempt's decode span is discarded (it produced
            # nothing); a still-queued request keeps its original wait start
            self._open_decode.pop(req_id, None)
        if self._take_span_budget():
            self._span_retries.append((t_s, req_id, rid, attempt, delay_s))

    def on_lost(
        self, t_s: float, req_id: int, rid: int, attempts: int, reason: str, was_active: bool
    ) -> None:
        self._flush(t_s)
        r = self._reps[rid]
        if was_active:
            r.active -= 1
        else:
            r.queue -= 1
        self._cum_lost += 1
        self._win_lost += 1
        if self._spans:
            self._open_decode.pop(req_id, None)
            self._open_queue.pop(req_id, None)
        if self._take_span_budget():
            self._span_losts.append((t_s, req_id, rid, attempts, reason))

    def on_recover(self, t_s: float, rid: int, for_rid: int, cold_start_s: float) -> None:
        self._flush(t_s)
        start_s = self._open_outage.pop(for_rid, None)
        if start_s is not None and self._take_span_budget():
            self._span_outages.append((for_rid, start_s, t_s - start_s))

    def on_run_end(self, t_s: float) -> None:
        self._flush(t_s)
        if not self._b_t or self._b_t[-1] < t_s:
            self._emit_boundary(t_s)  # final (possibly partial) window
        for r in self._reps:
            if r.drain_from_s is not None and self._take_span_budget():
                self._span_drains.append((r.rid, r.drain_from_s, t_s - r.drain_from_s))
                r.drain_from_s = None
        for rid in sorted(self._open_outage):  # unrecovered failures span to run end
            if self._take_span_budget():
                self._span_outages.append((rid, self._open_outage[rid], t_s - self._open_outage[rid]))
        self._open_outage.clear()
        self._t_end = t_s

    # -- exports -----------------------------------------------------------

    def replica_rows(self) -> list[dict[str, object]]:
        """Per-replica lifetime summary (the ``repro report`` table)."""
        t_end = self.t_end_s
        rows: list[dict[str, object]] = []
        for r in self._reps:
            stop_s = r.stopped_s if r.stopped_s is not None else t_end
            life_s = max(0.0, stop_s - r.ready_s)
            util = min(1.0, r.busy_s / life_s) if life_s > 0.0 else 0.0
            rows.append(
                {
                    "replica": r.rid,
                    "regime": r.regime,
                    "final_state": r.state,
                    "admitted": r.admitted,
                    "completed": r.completed,
                    "steps": r.steps,
                    "tokens": r.tokens,
                    "busy_s": r.busy_s,
                    "utilization": util,
                    "ready_s": r.ready_s,
                    "stopped_s": r.stopped_s,
                }
            )
        return rows

    def timeline(self) -> dict[str, object]:
        """The per-window time-series document (JSON-ready, deterministic)."""
        t0 = self.t0_s
        n_reps = len(self._reps)

        def padded(cols: list[list[int]] | list[list[float]], fill: int | float) -> list[list[int | float]]:
            return [[*col, *([fill] * (n_reps - len(col)))] for col in cols]

        lat_mean = [
            (s / c if c else 0.0) for s, c in zip(self._w_lat_sum, self._w_completed, strict=True)
        ]
        return {
            "t0_s": t0,
            "t_end_s": self.t_end_s,
            "window_s": self._window_s,
            "num_windows": len(self._b_t),
            "num_replicas": n_reps,
            "time_s": [b - t0 for b in self._b_t],
            "totals": {
                "admitted": self._cum_admitted,
                "completed": self._cum_completed,
                "shed": self._cum_shed,
                "failures": self._cum_failures,
                "retries": self._cum_retries,
                "lost": self._cum_lost,
                "slow": self._cum_slow,
                "dropped_span_events": self.dropped_span_events,
            },
            "windows": {
                "admitted": list(self._w_admitted),
                "completed": list(self._w_completed),
                "shed": list(self._w_shed),
                "lost": list(self._w_lost),
                "slow": list(self._w_slow),
                "latency_mean_s": lat_mean,
                "latency_max_s": list(self._w_lat_max),
                "queue_total": [sum(q) for q in self._b_queue],
                "active_total": [sum(a) for a in self._b_active],
                "routable": list(self._b_routable),
                "booting": list(self._b_booting),
                "draining": list(self._b_draining),
                "failed": list(self._b_failed),
                "cum_admitted": list(self._b_cum_admitted),
                "cum_completed": list(self._b_cum_completed),
                "cum_shed": list(self._b_cum_shed),
                "cost_usd": list(self._b_cost),
            },
            "per_replica": {
                "queue": padded(self._b_queue, 0),
                "active": padded(self._b_active, 0),
                "busy_s": padded(self._b_busy, 0.0),
            },
            "replicas": self.replica_rows(),
        }

    def to_chrome_trace(
        self,
        *,
        alerts: Sequence[Mapping[str, object]] | None = None,
        detections: Mapping[str, object] | None = None,
    ) -> dict[str, object]:
        """Assemble the Chrome-trace JSON document (see repro.obs.trace).

        ``alerts`` / ``detections`` take the matching ``SimReport`` fields
        and add ``cat: "alert"`` spans next to the chaos ground truth.
        """
        from repro.obs.trace import chrome_trace

        return chrome_trace(self, alerts=alerts, detections=detections)

    def write_chrome_trace(
        self,
        path: str | Path,
        *,
        alerts: Sequence[Mapping[str, object]] | None = None,
        detections: Mapping[str, object] | None = None,
    ) -> Path:
        from repro.obs.trace import write_chrome_trace

        return write_chrome_trace(
            self.to_chrome_trace(alerts=alerts, detections=detections), path
        )


class TeeRecorder:
    """Fans every hook out to several recorders, in order.

    The engines take exactly one recorder slot; a tee is how a timeline
    sampler and an online detector watch the same run.  Like every
    recorder it is observation-only — it adds no hooks, reorders nothing,
    and each child sees the identical stream the engines emitted.
    """

    __slots__ = ("recorders",)

    def __init__(self, recorders: Sequence[MetricsRecorder]) -> None:
        self.recorders = tuple(recorders)

    def on_run_start(self, t_s: float, meta: Mapping[str, float]) -> None:
        for r in self.recorders:
            r.on_run_start(t_s, meta)

    def on_replica_start(
        self, t_s: float, rid: int, regime: int, booting: bool, ready_s: float, billed_from_s: float
    ) -> None:
        for r in self.recorders:
            r.on_replica_start(t_s, rid, regime, booting, ready_s, billed_from_s)

    def on_boot_ready(self, t_s: float, rid: int) -> None:
        for r in self.recorders:
            r.on_boot_ready(t_s, rid)

    def on_drain(self, t_s: float, rid: int) -> None:
        for r in self.recorders:
            r.on_drain(t_s, rid)

    def on_stop(self, t_s: float, rid: int) -> None:
        for r in self.recorders:
            r.on_stop(t_s, rid)

    def on_enqueue(self, t_s: float, rid: int, req_id: int) -> None:
        for r in self.recorders:
            r.on_enqueue(t_s, rid, req_id)

    def on_requeue(self, t_s: float, rid: int, count: int) -> None:
        for r in self.recorders:
            r.on_requeue(t_s, rid, count)

    def on_shed(self, t_s: float, req_id: int, rid: int | None, reason: str) -> None:
        for r in self.recorders:
            r.on_shed(t_s, req_id, rid, reason)

    def on_admit(self, t_s: float, rid: int, req_ids: Sequence[int], admission_s: float) -> None:
        for r in self.recorders:
            r.on_admit(t_s, rid, req_ids, admission_s)

    def on_step_end(self, t_s: float, rid: int, step_s: float, batch: int) -> None:
        for r in self.recorders:
            r.on_step_end(t_s, rid, step_s, batch)

    def on_complete(
        self, t_s: float, rid: int, req_id: int, arrival_s: float, admitted_s: float, tokens: int
    ) -> None:
        for r in self.recorders:
            r.on_complete(t_s, rid, req_id, arrival_s, admitted_s, tokens)

    def on_scale(
        self,
        t_s: float,
        direction: str,
        queue_per_replica: float,
        replicas_before: int,
        replicas_after: int,
        cold_start_s: float,
    ) -> None:
        for r in self.recorders:
            r.on_scale(t_s, direction, queue_per_replica, replicas_before, replicas_after, cold_start_s)

    def on_preempt(self, t_s: float, rid: int, grace_s: float) -> None:
        for r in self.recorders:
            r.on_preempt(t_s, rid, grace_s)

    def on_fail(
        self, t_s: float, rid: int, kind: str, lost_active: int, lost_queued: int
    ) -> None:
        for r in self.recorders:
            r.on_fail(t_s, rid, kind, lost_active, lost_queued)

    def on_retry(
        self, t_s: float, req_id: int, rid: int, attempt: int, delay_s: float, was_active: bool
    ) -> None:
        for r in self.recorders:
            r.on_retry(t_s, req_id, rid, attempt, delay_s, was_active)

    def on_lost(
        self, t_s: float, req_id: int, rid: int, attempts: int, reason: str, was_active: bool
    ) -> None:
        for r in self.recorders:
            r.on_lost(t_s, req_id, rid, attempts, reason, was_active)

    def on_recover(self, t_s: float, rid: int, for_rid: int, cold_start_s: float) -> None:
        for r in self.recorders:
            r.on_recover(t_s, rid, for_rid, cold_start_s)

    def on_run_end(self, t_s: float) -> None:
        for r in self.recorders:
            r.on_run_end(t_s)
