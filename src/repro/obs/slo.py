"""SLO objectives and the multi-window burn-rate alert evaluator.

:class:`SloSpec` declares what the fleet promises its users — a p95
latency target, an availability target, a shed-fraction ceiling, optional
per-priority-class overrides — as a frozen, JSON-round-trippable spec
section attached to ``TelemetrySpec.slo``.

:func:`evaluate_burn_alerts` is the monitoring side: a multi-window
burn-rate evaluator in the SRE-workbook style.  Each
:class:`BurnWindowSpec` pairs a long and a short trailing window (both
expressed as *fractions of the run horizon*, so the same spec is
meaningful on a 50 ms equivalence run and a 90 000 s diurnal day) with a
burn-rate threshold; an alert is active at a timeline boundary when both
windows burn error budget faster than the threshold.  Two error signals
are evaluated independently:

* ``availability`` — (shed + lost) / offered in the window, against the
  budget ``1 - availability`` target;
* ``latency`` — completions slower than the p95 target / completions in
  the window, against the 5% budget a p95 objective implies.

Consecutive active boundaries fold into typed :class:`AlertSpan`\\ s
(severity, signal, open/close, burn at trigger, peak burn).  The fold is
pure arithmetic over the :class:`~repro.obs.recorder.TimelineRecorder`
timeline document — no clocks, no rng — so identical hook streams produce
bit-identical alert logs, and the engine-equivalence suite holds the two
fleet engines to that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = [
    "ALERT_SEVERITIES",
    "ALERT_SIGNALS",
    "DEFAULT_BURN_WINDOWS",
    "AlertSpan",
    "BurnWindowSpec",
    "SloClassOverride",
    "SloSpec",
    "compliance_summary",
    "evaluate_burn_alerts",
]

#: Alert severities, most urgent first.  ``page`` means "wake someone up";
#: ``warn`` means "look at it tomorrow".
ALERT_SEVERITIES: tuple[str, ...] = ("page", "warn")

#: The error signals the burn evaluator scores.
ALERT_SIGNALS: tuple[str, ...] = ("availability", "latency")

#: Fraction of completions a p95 latency objective allows over target.
P95_SLOW_BUDGET = 0.05


@dataclass(frozen=True)
class BurnWindowSpec:
    """One multi-window burn-rate alert rule.

    The alert is active when the trailing ``long_frac`` *and*
    ``short_frac`` horizon fractions both burn error budget at
    ``burn_threshold`` times the sustainable rate — the long window
    supplies significance, the short window makes the alert reset quickly
    once the incident ends.
    """

    severity: str = "page"
    long_frac: float = 0.05
    short_frac: float = 0.01
    burn_threshold: float = 8.0

    def __post_init__(self) -> None:
        if self.severity not in ALERT_SEVERITIES:
            raise ValueError(f"severity must be one of {ALERT_SEVERITIES}, got {self.severity!r}")
        if not 0.0 < self.short_frac <= self.long_frac <= 1.0:
            raise ValueError(
                "burn windows need 0 < short_frac <= long_frac <= 1, got "
                f"short_frac={self.short_frac}, long_frac={self.long_frac}"
            )
        if not self.burn_threshold >= 1.0:
            raise ValueError(f"burn_threshold must be >= 1, got {self.burn_threshold}")


#: The default fast/slow pair: a page on a fast, hot burn and a warn on a
#: slow sustained one (the classic two-tier SRE policy, rescaled from
#: wall-clock windows to horizon fractions).
DEFAULT_BURN_WINDOWS: tuple[BurnWindowSpec, ...] = (
    BurnWindowSpec(severity="page", long_frac=0.05, short_frac=0.01, burn_threshold=8.0),
    BurnWindowSpec(severity="warn", long_frac=0.25, short_frac=0.05, burn_threshold=2.0),
)


@dataclass(frozen=True)
class SloClassOverride:
    """Per-priority-class targets; ``None`` fields inherit the base SLO."""

    name: str
    p95_ms: float | None = None
    availability: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class override name must be non-empty")
        if self.p95_ms is not None and not self.p95_ms > 0.0:
            raise ValueError("class override p95_ms must be > 0 when set")
        if self.availability is not None and not 0.0 < self.availability < 1.0:
            raise ValueError("class override availability must be in (0, 1) when set")


@dataclass(frozen=True)
class SloSpec:
    """The service-level objective one fleet run is held to."""

    p95_ms: float = 400.0
    availability: float = 0.99
    max_shed_fraction: float = 0.05
    windows: tuple[BurnWindowSpec, ...] = DEFAULT_BURN_WINDOWS
    class_overrides: tuple[SloClassOverride, ...] = ()

    def __post_init__(self) -> None:
        if not self.p95_ms > 0.0:
            raise ValueError(f"p95_ms must be > 0, got {self.p95_ms}")
        if not 0.0 < self.availability < 1.0:
            raise ValueError(f"availability must be in (0, 1), got {self.availability}")
        if not 0.0 <= self.max_shed_fraction <= 1.0:
            raise ValueError(f"max_shed_fraction must be in [0, 1], got {self.max_shed_fraction}")
        # accept lists for ergonomic construction; store tuples so the
        # spec stays hashable and value-comparable
        for name in ("windows", "class_overrides"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.windows:
            raise ValueError("windows must contain at least one BurnWindowSpec")
        seen: set[str] = set()
        for w in self.windows:
            if not isinstance(w, BurnWindowSpec):
                raise TypeError("windows must contain BurnWindowSpec entries")
            if w.severity in seen:
                raise ValueError(
                    f"duplicate burn window severity {w.severity!r}; one rule per severity "
                    "keeps alert spans non-overlapping per kind"
                )
            seen.add(w.severity)
        names: set[str] = set()
        for o in self.class_overrides:
            if not isinstance(o, SloClassOverride):
                raise TypeError("class_overrides must contain SloClassOverride entries")
            if o.name in names:
                raise ValueError(f"duplicate class override {o.name!r}")
            names.add(o.name)

    @property
    def slow_latency_s(self) -> float:
        """The latency above which a completion burns p95 error budget."""
        return self.p95_ms / 1e3

    def override_for(self, class_name: str) -> SloClassOverride | None:
        for o in self.class_overrides:
            if o.name == class_name:
                return o
        return None


@dataclass(frozen=True)
class AlertSpan:
    """One contiguous interval during which a burn-rate alert was firing.

    ``open_s``/``close_s`` are absolute simulated times: the boundary at
    which the evaluator first saw both windows over threshold, and the
    first boundary at which the condition had cleared (run end for alerts
    still firing).  ``windows`` counts the boundaries the alert was
    active for; ``burn_at_open`` / ``peak_burn`` are long-window burn
    rates.
    """

    severity: str
    signal: str
    open_s: float
    close_s: float
    burn_at_open: float
    peak_burn: float
    windows: int

    def __post_init__(self) -> None:
        if self.close_s < self.open_s:
            raise ValueError(f"alert close_s {self.close_s} before open_s {self.open_s}")
        if self.windows < 1:
            raise ValueError("alert span must cover at least one window")

    @property
    def kind(self) -> str:
        """``severity:signal`` — spans never overlap within one kind."""
        return f"{self.severity}:{self.signal}"

    def to_dict(self) -> dict[str, object]:
        return {
            "severity": self.severity,
            "signal": self.signal,
            "open_s": self.open_s,
            "close_s": self.close_s,
            "burn_at_open": self.burn_at_open,
            "peak_burn": self.peak_burn,
            "windows": self.windows,
        }


def _count_column(windows: Mapping[str, object], key: str, n: int) -> list[float]:
    value = windows.get(key)
    if not isinstance(value, list):
        return [0.0] * n
    out: list[float] = []
    for v in value:
        out.append(float(v) if isinstance(v, (int, float)) else 0.0)
    if len(out) != n:
        raise ValueError(f"timeline window column {key!r} has {len(out)} entries, expected {n}")
    return out


def _prefix(values: Sequence[float]) -> list[float]:
    total = 0.0
    out = [0.0]
    for v in values:
        total += v
        out.append(total)
    return out


def _trailing_burn(
    bad_prefix: Sequence[float], total_prefix: Sequence[float], i: int, n_win: int, budget: float
) -> float:
    lo = max(0, i + 1 - n_win)
    bad = bad_prefix[i + 1] - bad_prefix[lo]
    total = total_prefix[i + 1] - total_prefix[lo]
    if total <= 0.0:
        return 0.0
    return (bad / total) / budget


def evaluate_burn_alerts(timeline: Mapping[str, object], slo: SloSpec) -> list[AlertSpan]:
    """Fold a timeline document into the run's alert log.

    Deterministic pure arithmetic over the per-window counters; the input
    is exactly what :meth:`TimelineRecorder.timeline` returns (or its
    JSON round-trip).  Spans are ordered by rule then open time, and are
    non-overlapping within each ``severity:signal`` kind by construction.
    """
    t0 = timeline.get("t0_s", 0.0)
    t_end = timeline.get("t_end_s", 0.0)
    window_s = timeline.get("window_s", 0.0)
    times = timeline.get("time_s")
    windows = timeline.get("windows")
    if (
        not isinstance(t0, (int, float))
        or not isinstance(t_end, (int, float))
        or not isinstance(window_s, (int, float))
        or not isinstance(times, list)
        or not isinstance(windows, Mapping)
    ):
        raise ValueError("not a timeline document (need t0_s/t_end_s/window_s/time_s/windows)")
    n = len(times)
    if n == 0 or window_s <= 0.0:
        return []
    boundary_s = [float(t) + float(t0) for t in times if isinstance(t, (int, float))]
    if len(boundary_s) != n:
        raise ValueError("timeline time_s must be numeric")
    horizon_s = max(float(t_end) - float(t0), float(window_s))

    completed = _count_column(windows, "completed", n)
    shed = _count_column(windows, "shed", n)
    lost = _count_column(windows, "lost", n)
    slow = _count_column(windows, "slow", n)

    cum_completed = _prefix(completed)
    cum_unavailable = _prefix([s + lo for s, lo in zip(shed, lost, strict=True)])
    cum_offered = _prefix([c + s + lo for c, s, lo in zip(completed, shed, lost, strict=True)])
    cum_slow = _prefix(slow)

    signals: dict[str, tuple[list[float], list[float], float]] = {
        "availability": (cum_unavailable, cum_offered, 1.0 - slo.availability),
        "latency": (cum_slow, cum_completed, P95_SLOW_BUDGET),
    }

    spans: list[AlertSpan] = []
    for rule in slo.windows:
        n_long = min(n, max(1, math.ceil(rule.long_frac * horizon_s / float(window_s))))
        n_short = min(n_long, max(1, math.ceil(rule.short_frac * horizon_s / float(window_s))))
        for signal in ALERT_SIGNALS:
            bad_prefix, total_prefix, budget = signals[signal]
            open_i: int | None = None
            burn_at_open = 0.0
            peak = 0.0
            for i in range(n + 1):
                if i < n:
                    burn_long = _trailing_burn(bad_prefix, total_prefix, i, n_long, budget)
                    burn_short = _trailing_burn(bad_prefix, total_prefix, i, n_short, budget)
                    active = burn_long >= rule.burn_threshold and burn_short >= rule.burn_threshold
                else:
                    burn_long = 0.0
                    active = False
                if active and open_i is None:
                    open_i = i
                    burn_at_open = burn_long
                    peak = burn_long
                elif active:
                    peak = max(peak, burn_long)
                elif open_i is not None:
                    close_s = boundary_s[i] if i < n else float(t_end)
                    spans.append(
                        AlertSpan(
                            severity=rule.severity,
                            signal=signal,
                            open_s=boundary_s[open_i],
                            close_s=max(close_s, boundary_s[open_i]),
                            burn_at_open=burn_at_open,
                            peak_burn=peak,
                            windows=i - open_i,
                        )
                    )
                    open_i = None
    return spans


def compliance_summary(
    slo: SloSpec,
    *,
    p95_latency_s: float,
    availability: float,
    shed_fraction: float,
    alerts: Sequence[AlertSpan] = (),
) -> dict[str, object]:
    """Score one run's observed aggregates against its SLO (JSON-ready)."""
    p95_ok = p95_latency_s <= slo.slow_latency_s
    avail_ok = availability >= slo.availability
    shed_ok = shed_fraction <= slo.max_shed_fraction
    pages = sum(1 for a in alerts if a.severity == "page")
    warns = sum(1 for a in alerts if a.severity == "warn")
    return {
        "p95_target_s": slo.slow_latency_s,
        "p95_observed_s": p95_latency_s,
        "p95_ok": p95_ok,
        "availability_target": slo.availability,
        "availability_observed": availability,
        "availability_ok": avail_ok,
        "max_shed_fraction": slo.max_shed_fraction,
        "shed_fraction_observed": shed_fraction,
        "shed_ok": shed_ok,
        "pages": pages,
        "warns": warns,
        "ok": bool(p95_ok and avail_ok and shed_ok),
    }
