"""Routing traces: collection, synthesis and storage.

A *routing trace* is the paper's raw measurement: for each profiled token,
the expert it selected at every MoE layer.  Affinity estimation (Section
IV-B), placement optimisation and the engine's communication replay all
consume :class:`RoutingTrace` objects.

Traces come from three sources:

* :mod:`repro.trace.collector` — real traces from a
  :class:`~repro.model.MoETransformer` forward/generation pass;
* :mod:`repro.trace.markov` — controlled synthetic traces with tunable
  affinity strength (for ablations and fast tests);
* :mod:`repro.trace.datasets` — synthetic topic-mixture corpora standing in
  for the Pile / C4 / Dolma / Yelp token streams.
"""

from repro.trace.events import RoutingTrace, CountTrace
from repro.trace.collector import collect_trace, trace_from_generation
from repro.trace.markov import MarkovRoutingModel, make_affinity_transitions
from repro.trace.datasets import TopicCorpus, make_corpus, CORPUS_NAMES

__all__ = [
    "RoutingTrace",
    "CountTrace",
    "collect_trace",
    "trace_from_generation",
    "MarkovRoutingModel",
    "make_affinity_transitions",
    "TopicCorpus",
    "make_corpus",
    "CORPUS_NAMES",
]
