"""Collect routing traces from real model forward passes.

The paper's offline profiling step: feed sampled tokens through the
pre-trained model and record each token's expert path at every MoE layer.
:func:`collect_trace` does this with a corpus + model pair;
:func:`trace_from_generation` converts a finished generation run's records.
"""

from __future__ import annotations

import numpy as np

from repro.model.generation import GenerationResult
from repro.model.transformer import MoETransformer
from repro.trace.datasets import TopicCorpus
from repro.trace.events import RoutingTrace

__all__ = ["collect_trace", "trace_from_generation"]


def collect_trace(
    model: MoETransformer,
    corpus: TopicCorpus,
    num_tokens: int,
    doc_len: int = 32,
    rng: np.random.Generator | None = None,
) -> RoutingTrace:
    """Profile ``num_tokens`` corpus tokens through the model's gates.

    Documents are sampled from the corpus, run through full forward passes
    (so hidden states carry real attention context), and every position's
    expert path is recorded.  Mirrors the paper's "we sample tokens from the
    Pile dataset to profile the expert routing pattern".

    Parameters
    ----------
    num_tokens:
        Target number of profiled positions; the last document batch is
        truncated to hit it exactly.
    doc_len:
        Tokens per synthetic document (prompt length of each forward pass).
    """
    if num_tokens <= 0:
        raise ValueError("num_tokens must be positive")
    if corpus.vocab_size > model.config.vocab_size:
        raise ValueError(
            f"corpus vocab ({corpus.vocab_size}) exceeds model vocab "
            f"({model.config.vocab_size})"
        )
    rng = rng or np.random.default_rng(0)

    batch_docs = 8
    chunks: list[np.ndarray] = []
    collected = 0
    while collected < num_tokens:
        docs, _ = corpus.sample_documents(batch_docs, doc_len, rng)
        states = model.init_state(docs.shape[0])
        _, routings = model.forward(docs, states)
        paths = np.stack([r.top1 for r in routings], axis=1)
        chunks.append(paths)
        collected += paths.shape[0]

    paths = np.concatenate(chunks, axis=0)[:num_tokens]
    return RoutingTrace(paths, model.config.num_experts, source=corpus.name)


def trace_from_generation(
    result: GenerationResult, num_experts: int, decode_only: bool = False, source: str = ""
) -> RoutingTrace:
    """Wrap a :class:`GenerationResult`'s recorded paths as a trace.

    ``decode_only=True`` keeps only generated (non-prefill) positions —
    the latency-critical tokens during serving.
    """
    paths = result.decode_paths if decode_only else result.expert_paths
    return RoutingTrace(paths, num_experts, source=source or "generation")
