"""The :class:`RoutingTrace` container.

A trace is an (N, L) integer matrix: N profiled tokens, L MoE layers, entry
``paths[k, j]`` = the expert token ``k`` selected at layer ``j``.  The paper
records exactly this during training ("we record tokens' expert routing
decisions at every layer") and solves the placement ILP from it.

The class carries vectorised derived statistics used everywhere downstream:
per-layer expert histograms, consecutive-layer transition counts, and the
conditional-probability (affinity) matrices of formula (1).
"""

from __future__ import annotations

import io as _io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["RoutingTrace", "CountTrace"]


@dataclass(frozen=True)
class RoutingTrace:
    """Expert-selection paths of a set of profiled tokens.

    Attributes
    ----------
    paths:
        (N, L) int64 array of expert ids.
    num_experts:
        Experts per layer (E); all entries must lie in [0, E).
    source:
        Free-form provenance label (corpus name, generator id, ...).
    """

    paths: np.ndarray
    num_experts: int
    source: str = ""

    def __post_init__(self) -> None:
        paths = np.asarray(self.paths, dtype=np.int64)
        if paths.ndim != 2:
            raise ValueError(f"paths must be 2-D (tokens, layers), got {paths.shape}")
        if self.num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if paths.size and (paths.min() < 0 or paths.max() >= self.num_experts):
            raise ValueError(
                f"expert ids must be in [0, {self.num_experts}), "
                f"found range [{paths.min()}, {paths.max()}]"
            )
        object.__setattr__(self, "paths", paths)

    # -- basic shape ---------------------------------------------------------

    @property
    def num_tokens(self) -> int:
        return self.paths.shape[0]

    @property
    def num_layers(self) -> int:
        return self.paths.shape[1]

    def __len__(self) -> int:
        return self.num_tokens

    # -- composition ----------------------------------------------------------

    def subsample(self, n: int, rng: np.random.Generator | None = None) -> "RoutingTrace":
        """Random subset of ``n`` tokens (without replacement).

        This is the operation behind Fig 13: how many profiled tokens are
        needed before the affinity estimate stabilises.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if n >= self.num_tokens:
            return self
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(self.num_tokens, size=n, replace=False)
        return RoutingTrace(self.paths[idx], self.num_experts, self.source)

    def concat(self, other: "RoutingTrace") -> "RoutingTrace":
        """Concatenate two traces over the same architecture."""
        if other.num_experts != self.num_experts:
            raise ValueError("traces disagree on num_experts")
        if other.num_layers != self.num_layers:
            raise ValueError("traces disagree on num_layers")
        return RoutingTrace(
            np.concatenate([self.paths, other.paths], axis=0),
            self.num_experts,
            source=self.source or other.source,
        )

    def split(
        self, fraction: float, rng: np.random.Generator | None = None
    ) -> tuple["RoutingTrace", "RoutingTrace"]:
        """Random (train, eval) split — profiling vs benchmarking sets."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = rng or np.random.default_rng(0)
        perm = rng.permutation(self.num_tokens)
        cut = int(round(fraction * self.num_tokens))
        a = RoutingTrace(self.paths[perm[:cut]], self.num_experts, self.source)
        b = RoutingTrace(self.paths[perm[cut:]], self.num_experts, self.source)
        return a, b

    # -- statistics -------------------------------------------------------------

    def layer_histogram(self, layer: int) -> np.ndarray:
        """(E,) token counts per expert at ``layer``."""
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range [0, {self.num_layers})")
        return np.bincount(self.paths[:, layer], minlength=self.num_experts)

    def layer_distribution(self, layer: int) -> np.ndarray:
        """(E,) routing fractions per expert at ``layer`` (Fig 11's series)."""
        h = self.layer_histogram(layer).astype(np.float64)
        total = h.sum()
        return h / total if total else h

    def transition_counts(self, layer: int, next_layer: int | None = None) -> np.ndarray:
        """(E, E) counts: tokens at expert i of ``layer`` reaching expert p
        of ``next_layer`` (default: layer + 1).

        Vectorised via flattened-bincount; no per-token Python loop.
        """
        nxt = layer + 1 if next_layer is None else next_layer
        if not 0 <= layer < self.num_layers or not 0 <= nxt < self.num_layers:
            raise IndexError("layer index out of range")
        e = self.num_experts
        flat = self.paths[:, layer] * e + self.paths[:, nxt]
        return np.bincount(flat, minlength=e * e).reshape(e, e)

    def conditional_matrix(self, layer: int, next_layer: int | None = None) -> np.ndarray:
        """Formula (1): ``P(E_{p, j+1} | E_{i, j})`` as an (E, E) matrix.

        Row ``i`` is the distribution over next-layer experts for tokens
        that used expert ``i`` at ``layer``.  Rows with no observations are
        uniform (maximum-entropy prior), keeping the matrix row-stochastic.
        """
        counts = self.transition_counts(layer, next_layer).astype(np.float64)
        row = counts.sum(axis=1, keepdims=True)
        out = np.where(row > 0, counts / np.where(row > 0, row, 1.0), 1.0 / self.num_experts)
        return out

    def all_conditional_matrices(self) -> np.ndarray:
        """(L-1, E, E) stack of consecutive-layer affinity matrices."""
        return np.stack(
            [self.conditional_matrix(j) for j in range(self.num_layers - 1)], axis=0
        )

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise to ``.npz`` (paths + metadata)."""
        np.savez_compressed(
            Path(path),
            paths=self.paths,
            num_experts=np.int64(self.num_experts),
            source=np.bytes_(self.source.encode()),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RoutingTrace":
        with np.load(Path(path)) as data:
            return cls(
                paths=data["paths"],
                num_experts=int(data["num_experts"]),
                source=bytes(data["source"]).decode(),
            )

    def to_bytes(self) -> bytes:
        """In-memory npz serialisation (round-trips via :meth:`from_bytes`)."""
        buf = _io.BytesIO()
        np.savez_compressed(
            buf,
            paths=self.paths,
            num_experts=np.int64(self.num_experts),
            source=np.bytes_(self.source.encode()),
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RoutingTrace":
        with np.load(_io.BytesIO(blob)) as data:
            return cls(
                paths=data["paths"],
                num_experts=int(data["num_experts"]),
                source=bytes(data["source"]).decode(),
            )


@dataclass(frozen=True)
class CountTrace:
    """Trace stand-in built from transition-count matrices instead of paths.

    The placement solvers never look at individual token paths — they only
    consume consecutive-layer transition counts (``transition_counts``) and
    the trace shape.  A :class:`CountTrace` provides exactly that interface
    from an (L-1, E, E) count stack, which lets count-native producers (the
    streaming affinity estimator, analytic Markov models) feed the solver
    family without synthesising fake token paths.  Counts may be fractional:
    exponential decay and probability-mass weighting both produce non-integer
    "tokens", and every solver consumes the counts as float64 anyway.

    Operations that genuinely need token paths (``subsample``, locality
    replay) are deliberately absent.
    """

    counts: np.ndarray
    source: str = ""

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.ndim != 3 or counts.shape[1] != counts.shape[2]:
            raise ValueError(
                f"counts must be (layers-1, experts, experts), got {counts.shape}"
            )
        if counts.shape[0] < 1:
            raise ValueError("need at least one layer pair of counts")
        if counts.size and counts.min() < 0:
            raise ValueError("transition counts must be non-negative")
        object.__setattr__(self, "counts", counts)

    @property
    def num_layers(self) -> int:
        return self.counts.shape[0] + 1

    @property
    def num_experts(self) -> int:
        return self.counts.shape[1]

    @property
    def total_mass(self) -> float:
        """Summed transition mass across all layer pairs."""
        return float(self.counts.sum())

    def transition_counts(self, layer: int, next_layer: int | None = None) -> np.ndarray:
        """(E, E) counts between ``layer`` and ``layer + 1``.

        Only consecutive pairs are stored; asking for a multi-hop pair
        raises (unlike :class:`RoutingTrace`, the paths needed to estimate
        higher-order dependence were never kept).
        """
        nxt = layer + 1 if next_layer is None else next_layer
        if not 0 <= layer < self.num_layers - 1:
            raise IndexError(f"layer {layer} out of range [0, {self.num_layers - 1})")
        if nxt != layer + 1:
            raise ValueError("CountTrace only stores consecutive-layer transitions")
        return self.counts[layer]

    def conditional_matrix(self, layer: int, next_layer: int | None = None) -> np.ndarray:
        """Formula (1) from the stored counts; unobserved rows are uniform."""
        counts = self.transition_counts(layer, next_layer)
        row = counts.sum(axis=1, keepdims=True)
        return np.where(row > 0, counts / np.where(row > 0, row, 1.0), 1.0 / self.num_experts)
