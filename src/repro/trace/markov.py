"""Controlled synthetic routing traces with tunable inter-layer affinity.

The paper measures affinity in real checkpoints; for ablations ("how strong
must affinity be before placement pays off?") and for fast deterministic
tests we also need traces whose affinity strength is a *dial*.  A
:class:`MarkovRoutingModel` generates token paths from a first-layer prior
and per-layer-pair transition matrices

    ``T_j = alpha * S_j + (1 - alpha) * U``

where ``S_j`` is a structured row-stochastic kernel (each expert
concentrates its mass on a few successors, like the hot columns of Fig 2),
``U`` the uniform kernel, and ``alpha`` the affinity strength: 0 gives
memoryless uniform routing (the paper's "purely stochastic" null
hypothesis), 1 gives near-deterministic expert chains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.events import RoutingTrace

__all__ = ["make_affinity_transitions", "MarkovRoutingModel"]


def make_affinity_transitions(
    num_experts: int,
    num_layers: int,
    affinity: float,
    successors: int = 2,
    rng: np.random.Generator | None = None,
    collision: float = 0.0,
) -> np.ndarray:
    """Build (L-1, E, E) row-stochastic transition stacks.

    Each expert at layer ``j`` prefers ``successors`` random next-layer
    experts (a random permutation block, so preferences don't all collide on
    one expert — the trained models in the paper are load-balanced).

    Parameters
    ----------
    affinity:
        Mixing weight alpha in [0, 1] toward the structured kernel.
    successors:
        How many hot columns each row has (Fig 2 shows "only a few columns
        are red" per row).
    collision:
        Fraction of rows whose primary preferred successor is redirected to
        a small set of shared "hub" experts.  Real checkpoints exhibit this
        (several experts funnel into the same popular successor), and it is
        exactly what limits affinity placement when each GPU holds one
        expert per layer: colliding rows cannot all co-locate with their
        hub.  0 keeps the fully placeable permutation structure; 1 makes
        every primary preference point at a hub.
    """
    if not 0.0 <= affinity <= 1.0:
        raise ValueError("affinity must be in [0, 1]")
    if not 0.0 <= collision <= 1.0:
        raise ValueError("collision must be in [0, 1]")
    if not 1 <= successors <= num_experts:
        raise ValueError("successors must be in [1, num_experts]")
    if num_layers < 2:
        raise ValueError("need at least 2 layers for transitions")
    rng = rng or np.random.default_rng(0)

    e = num_experts
    uniform = np.full((e, e), 1.0 / e)
    stacks = np.empty((num_layers - 1, e, e))
    num_hubs = max(1, e // 8)
    for j in range(num_layers - 1):
        structured = np.zeros((e, e))
        # one permutation per preferred-successor slot keeps columns balanced
        for s in range(successors):
            perm = rng.permutation(e)
            if s == 0 and collision > 0:
                hubs = rng.choice(e, size=num_hubs, replace=False)
                redirect = rng.random(e) < collision
                perm = perm.copy()
                perm[redirect] = hubs[rng.integers(0, num_hubs, size=int(redirect.sum()))]
            weight = 2.0 ** (-s)  # first successor twice as hot as the second
            structured[np.arange(e), perm] += weight
        structured /= structured.sum(axis=1, keepdims=True)
        stacks[j] = affinity * structured + (1.0 - affinity) * uniform
    return stacks


@dataclass
class MarkovRoutingModel:
    """First-order Markov routing generator.

    Attributes
    ----------
    transitions:
        (L-1, E, E) row-stochastic transition matrices.
    prior:
        (E,) first-layer expert distribution; uniform if omitted.
    """

    transitions: np.ndarray
    prior: np.ndarray | None = None

    def __post_init__(self) -> None:
        t = np.asarray(self.transitions, dtype=np.float64)
        if t.ndim != 3 or t.shape[1] != t.shape[2]:
            raise ValueError(f"transitions must be (L-1, E, E), got {t.shape}")
        if (t < 0).any():
            raise ValueError("transition probabilities must be non-negative")
        rows = t.sum(axis=2)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise ValueError("transition rows must sum to 1")
        object.__setattr__(self, "transitions", t)
        if self.prior is not None:
            p = np.asarray(self.prior, dtype=np.float64)
            if p.shape != (t.shape[1],) or (p < 0).any() or not np.isclose(p.sum(), 1.0):
                raise ValueError("prior must be a distribution over experts")
            object.__setattr__(self, "prior", p)

    @property
    def num_experts(self) -> int:
        return self.transitions.shape[1]

    @property
    def num_layers(self) -> int:
        return self.transitions.shape[0] + 1

    @classmethod
    def with_affinity(
        cls,
        num_experts: int,
        num_layers: int,
        affinity: float,
        successors: int = 2,
        rng: np.random.Generator | None = None,
        collision: float = 0.0,
    ) -> "MarkovRoutingModel":
        """Convenience constructor wrapping :func:`make_affinity_transitions`."""
        return cls(
            make_affinity_transitions(
                num_experts, num_layers, affinity, successors, rng, collision
            )
        )

    def sample(self, num_tokens: int, rng: np.random.Generator | None = None) -> RoutingTrace:
        """Draw ``num_tokens`` expert paths, fully vectorised.

        Sampling uses the inverse-CDF trick per layer: with all tokens'
        current experts known, gather their transition rows, cumsum, and
        compare against one uniform draw per token.
        """
        if num_tokens < 0:
            raise ValueError("num_tokens must be >= 0")
        rng = rng or np.random.default_rng(0)
        e, L = self.num_experts, self.num_layers
        paths = np.empty((num_tokens, L), dtype=np.int64)
        prior = self.prior if self.prior is not None else np.full(e, 1.0 / e)

        cdf0 = np.cumsum(prior)
        paths[:, 0] = np.searchsorted(cdf0, rng.random(num_tokens), side="right").clip(0, e - 1)
        for j in range(L - 1):
            rows = self.transitions[j][paths[:, j]]  # (N, E)
            cdf = np.cumsum(rows, axis=1)
            u = rng.random((num_tokens, 1))
            paths[:, j + 1] = (cdf < u).sum(axis=1).clip(0, e - 1)
        return RoutingTrace(paths, e, source=f"markov(a={self._affinity_label()})")

    def _affinity_label(self) -> str:
        # diagnostic: mean max-row-probability across layers
        return f"{float(self.transitions.max(axis=2).mean()):.2f}"

    def stationary_distribution(self, layer: int) -> np.ndarray:
        """Marginal expert distribution at ``layer`` under the model."""
        if not 0 <= layer < self.num_layers:
            raise IndexError("layer out of range")
        e = self.num_experts
        dist = self.prior if self.prior is not None else np.full(e, 1.0 / e)
        for j in range(layer):
            dist = dist @ self.transitions[j]
        return dist
