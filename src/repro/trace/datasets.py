"""Synthetic topic-mixture corpora standing in for Pile / C4 / Dolma / Yelp.

The paper profiles affinity on the Pile and validates on three
out-of-distribution corpora (Table III).  We reproduce the *relationship*
between those datasets with topic-mixture language: a fixed universe of
latent topics, each owning a Zipf-weighted slice of the vocabulary, with
per-corpus topic priors.  "pile" uses the broad base prior; "c4"/"dolma"
reweight it moderately; "yelp" is narrow (review-like, few topics).

What matters for the reproduction: expert specialisation is driven by
*topics*, and the topic->expert mapping is a property of the model, not of
the corpus.  Shifting topic priors changes how often each expert fires but
not which expert follows which — exactly the paper's finding that affinity
is an intrinsic model property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TopicCorpus", "make_corpus", "CORPUS_NAMES"]

CORPUS_NAMES = ("pile", "c4", "dolma", "yelp")


@dataclass
class TopicCorpus:
    """Topic-mixture document generator.

    Attributes
    ----------
    name:
        Corpus label.
    topic_word:
        (K, V) row-stochastic topic-to-token distributions (shared across
        corpora from the same universe).
    topic_prior:
        (K,) document-level topic distribution for this corpus.
    """

    name: str
    topic_word: np.ndarray
    topic_prior: np.ndarray
    doc_topic_concentration: float = 0.2

    def __post_init__(self) -> None:
        tw = np.asarray(self.topic_word, dtype=np.float64)
        tp = np.asarray(self.topic_prior, dtype=np.float64)
        if tw.ndim != 2:
            raise ValueError("topic_word must be (K, V)")
        if not np.allclose(tw.sum(axis=1), 1.0, atol=1e-8):
            raise ValueError("topic_word rows must sum to 1")
        if tp.shape != (tw.shape[0],) or not np.isclose(tp.sum(), 1.0):
            raise ValueError("topic_prior must be a distribution over K topics")
        self.topic_word = tw
        self.topic_prior = tp

    @property
    def num_topics(self) -> int:
        return self.topic_word.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.topic_word.shape[1]

    def sample_documents(
        self, num_docs: int, doc_len: int, rng: np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample (num_docs, doc_len) token ids and (num_docs,) topic labels.

        Each document draws one dominant topic from the corpus prior, then
        mixes it with the base prior via ``doc_topic_concentration`` (a
        document is mostly but not purely one topic — like real text).
        """
        if num_docs < 0 or doc_len <= 0:
            raise ValueError("num_docs must be >= 0 and doc_len > 0")
        rng = rng or np.random.default_rng(0)
        k, v = self.num_topics, self.vocab_size

        topics = rng.choice(k, size=num_docs, p=self.topic_prior)
        docs = np.empty((num_docs, doc_len), dtype=np.int64)
        eps = self.doc_topic_concentration
        for d in range(num_docs):
            word_dist = (1.0 - eps) * self.topic_word[topics[d]] + eps * (
                self.topic_prior @ self.topic_word
            )
            docs[d] = rng.choice(v, size=doc_len, p=word_dist)
        return docs, topics


def _zipf_topic_word(
    num_topics: int, vocab_size: int, rng: np.random.Generator, overlap: float = 0.1
) -> np.ndarray:
    """Build (K, V) topic-token distributions with Zipfian in-topic mass.

    The vocabulary is partitioned into K contiguous slices; each topic puts
    ``1 - overlap`` of its mass Zipf-distributed on its own slice and the
    rest uniformly everywhere (function words shared across topics).
    """
    slice_size = vocab_size // num_topics
    if slice_size < 1:
        raise ValueError("vocab_size must be >= num_topics")
    tw = np.full((num_topics, vocab_size), overlap / vocab_size)
    ranks = np.arange(1, slice_size + 1, dtype=np.float64)
    zipf = 1.0 / ranks
    zipf /= zipf.sum()
    for t in range(num_topics):
        lo = t * slice_size
        order = rng.permutation(slice_size)
        tw[t, lo : lo + slice_size] += (1.0 - overlap) * zipf[order]
    return tw / tw.sum(axis=1, keepdims=True)


def _corpus_prior(name: str, num_topics: int, rng: np.random.Generator) -> np.ndarray:
    """Per-corpus topic prior over the shared topic universe."""
    base = np.ones(num_topics) / num_topics
    if name == "pile":
        # broad, mildly non-uniform (the Pile mixes many sources)
        prior = rng.dirichlet(np.full(num_topics, 5.0))
    elif name == "c4":
        # web crawl: broad but tilted toward a subset of topics
        prior = rng.dirichlet(np.full(num_topics, 2.0))
    elif name == "dolma":
        # another broad mix with a different tilt
        prior = rng.dirichlet(np.full(num_topics, 2.0))
    elif name == "yelp":
        # reviews: concentrated on a handful of topics
        hot = rng.choice(num_topics, size=max(1, num_topics // 4), replace=False)
        prior = np.full(num_topics, 0.02 / num_topics)
        prior[hot] += 0.98 / hot.size
        prior /= prior.sum()
    else:
        raise ValueError(f"unknown corpus {name!r}; choose from {CORPUS_NAMES}")
    return 0.9 * prior + 0.1 * base  # keep full support everywhere


def make_corpus(
    name: str,
    vocab_size: int = 512,
    num_topics: int = 16,
    seed: int = 1234,
) -> TopicCorpus:
    """Construct one of the named corpora over a shared topic universe.

    All corpora built with the same ``vocab_size``/``num_topics``/``seed``
    share identical topic-token distributions (the universe) and differ only
    in topic priors — which is the property the Table III experiment needs.
    """
    universe_rng = np.random.default_rng(seed)  # shared across corpora
    topic_word = _zipf_topic_word(num_topics, vocab_size, universe_rng)
    prior_rng = np.random.default_rng(seed + sum(map(ord, name)))
    prior = _corpus_prior(name, num_topics, prior_rng)
    return TopicCorpus(name=name, topic_word=topic_word, topic_prior=prior)
