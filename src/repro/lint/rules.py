"""The ``RPL0xx`` rules: the invariants this repro's guarantees rest on.

Every headline number in the reproduction depends on properties no
general-purpose linter checks:

* bit-identical engine equivalence and same-seed reproducibility require
  that *all* randomness flows through explicitly seeded
  ``np.random.Generator`` objects (RPL001) and that simulator code never
  reads wall clocks or the environment (RPL002);
* the latency/cost math mixes ``_ms``/``_s``/``_bytes``/``_gb``
  quantities that Python happily adds together (RPL003);
* the Scenario spec is frozen so a run is exactly its JSON (RPL004);
* results must not depend on set iteration order (RPL005);
* determinism is only as good as the weakest link in the seed-threading
  chain (RPL006).

Each rule is small, path-scoped where the invariant is path-scoped, and
suppressable per line with ``# repro-lint: disable=RPLxxx`` when a
violation is deliberate (every suppression should say why).
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterable, Iterator, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import FileContext, Rule, register

__all__ = [
    "UnseededRandomness",
    "WallClockRead",
    "UnitSuffixMix",
    "FrozenSpecMutation",
    "SetIterationOrder",
    "SeedNotThreaded",
]

#: Path fragments housing simulator logic whose outputs must be a pure
#: function of (spec, seed) — RPL002/RPL005's jurisdiction.
SIM_SCOPE: tuple[str, ...] = (
    "repro/engine",
    "repro/fleet",
    "repro/core",
    "repro/scenarios",
    "repro/obs",
)


# -- shared AST helpers --------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted import paths.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` ->
    ``{"default_rng": "numpy.random.default_rng"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an expression's dotted name through the import aliases."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = aliases.get(head, head)
    return f"{base}.{rest}" if rest else base


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_scope(scope_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's own nodes, pruning nested function/lambda bodies."""
    stack = list(ast.iter_child_nodes(scope_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# -- RPL001: unseeded randomness -----------------------------------------------

# numpy.random attributes that are *not* the legacy global-state draws:
# constructing generators/bit-generators is how seeding is done.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)
# stdlib random attributes that are fine: class constructors take a seed.
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})


@register
class UnseededRandomness(Rule):
    """RPL001 — all randomness must flow through a seeded Generator.

    Flags module-level ``np.random.*`` draws (hidden global MT19937
    state), bare ``random.*`` calls (hidden global state again) and
    ``default_rng()``/``RandomState()`` constructed without a seed.
    Same-seed reproducibility — the property every equivalence and
    drift-recovery test asserts — dies the moment one of these slips in.
    """

    code = "RPL001"
    name = "unseeded-randomness"
    description = "np.random.* / random.* global-state draws or unseeded default_rng()"
    skip_tests = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, aliases)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                tail = name.removeprefix("numpy.random.")
                if tail == "default_rng":
                    if self._unseeded(node):
                        yield self.diag(
                            ctx, node,
                            "default_rng() without a seed argument; pass an "
                            "explicit seed so runs are reproducible",
                        )
                elif tail == "RandomState":
                    if self._unseeded(node):
                        yield self.diag(
                            ctx, node,
                            "RandomState() without a seed; use "
                            "np.random.default_rng(seed) instead",
                        )
                elif "." not in tail and tail not in _NP_RANDOM_CONSTRUCTORS:
                    yield self.diag(
                        ctx, node,
                        f"np.random.{tail}() draws from the unseeded global "
                        "RNG; use a seeded np.random.default_rng(seed)",
                    )
            elif name.startswith("random."):
                tail = name.removeprefix("random.")
                if "." not in tail and tail not in _STDLIB_RANDOM_OK:
                    yield self.diag(
                        ctx, node,
                        f"random.{tail}() uses the shared global RNG; use "
                        "random.Random(seed) or np.random.default_rng(seed)",
                    )

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs may carry a seed
                return False
            if kw.arg == "seed":
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
        if not call.args:
            return True
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None


# -- RPL002: wall-clock / environment reads ------------------------------------

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.getenv",
    }
)


@register
class WallClockRead(Rule):
    """RPL002 — simulator logic must not read clocks or the environment.

    The engine/fleet/core/scenarios/obs packages compute results that
    must be a pure function of (spec, seed): a ``time.time()`` or
    ``os.environ`` read makes outputs depend on when/where the run
    happened, which the bit-identical equivalence suites cannot detect
    (they run both engines in the same process seconds apart).
    ``time.perf_counter`` is *not* flagged: measuring how long the
    simulator took is fine as long as the measurement never feeds back
    into simulated results — that allowance is what lets the
    self-profiling phase timers (``repro.obs.profile``, bracketed with
    ``perf_counter`` inside both fleet engines) live in scope.
    """

    code = "RPL002"
    name = "wall-clock-read"
    description = "time.time/datetime.now/os.environ inside simulator packages"
    scope = SIM_SCOPE

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = canonical_name(node.func, aliases)
                if name in _CLOCK_CALLS:
                    yield self.diag(
                        ctx, node,
                        f"{name}() read inside simulator logic; results must "
                        "be a pure function of (spec, seed)",
                    )
            elif isinstance(node, ast.Attribute):
                name = canonical_name(node, aliases)
                if name == "os.environ":
                    yield self.diag(
                        ctx, node,
                        "os.environ read inside simulator logic; thread "
                        "configuration through the Scenario spec instead",
                    )


# -- RPL003: unit-suffix safety ------------------------------------------------

#: suffix -> dimension; adding/comparing across different suffixes is the bug
#: (multiplying/dividing is how conversions are *supposed* to happen, so
#: ``*``/``/`` deliberately yield an unknown unit).
UNIT_SUFFIXES: dict[str, str] = {
    "ns": "time",
    "us": "time",
    "ms": "time",
    "s": "time",
    "bytes": "size",
    "kb": "size",
    "mb": "size",
    "gb": "size",
    "gib": "size",
}

_CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _name_unit(name: str | None) -> str | None:
    """``arrival_ms`` -> ``ms``; ``None`` when the name carries no unit."""
    if not name or "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[1]
    return suffix if suffix in UNIT_SUFFIXES else None


def _expr_unit(node: ast.AST) -> str | None:
    """Best-effort unit of an expression; ``None`` = unknown/unitless."""
    if isinstance(node, ast.Name):
        return _name_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _name_unit(node.attr)
    if isinstance(node, ast.UnaryOp):
        return _expr_unit(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee in ("min", "max", "sum", "abs", "round"):
            units = {u for a in node.args if (u := _expr_unit(a)) is not None}
            return units.pop() if len(units) == 1 else None
        return _name_unit(callee)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = _expr_unit(node.left), _expr_unit(node.right)
        if left == right:
            return left
        return None
    if isinstance(node, ast.IfExp):
        body, orelse = _expr_unit(node.body), _expr_unit(node.orelse)
        return body if body == orelse else None
    return None


@register
class UnitSuffixMix(Rule):
    """RPL003 — don't add/compare/assign across conflicting unit suffixes.

    ``deadline_s = arrival_s + slo_ms`` type-checks, runs, and silently
    corrupts every latency percentile downstream.  The rule infers a unit
    from the ``_ms``/``_s``/``_us``/``_bytes``/``_gb`` naming convention
    and flags ``+``/``-``, comparisons, (augmented) assignment, keyword
    arguments and return values whose two sides disagree.  ``*`` and
    ``/`` are exempt — that is what a unit conversion looks like.
    """

    code = "RPL003"
    name = "unit-suffix-mix"
    description = "arithmetic/assignment mixing conflicting _ms/_s/_bytes suffixes"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._conflict(
                    ctx, node, _expr_unit(node.left), _expr_unit(node.right),
                    "+/- arithmetic",
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for idx, op in enumerate(node.ops):
                    if isinstance(op, _CMP_OPS):
                        yield from self._conflict(
                            ctx, node,
                            _expr_unit(operands[idx]), _expr_unit(operands[idx + 1]),
                            "comparison",
                        )
            elif isinstance(node, ast.Assign):
                value_unit = _expr_unit(node.value)
                for target in node.targets:
                    yield from self._conflict(
                        ctx, node, _expr_unit(target), value_unit, "assignment"
                    )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._conflict(
                    ctx, node, _expr_unit(node.target), _expr_unit(node.value),
                    "assignment",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._conflict(
                    ctx, node, _expr_unit(node.target), _expr_unit(node.value),
                    "augmented assignment",
                )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is not None:
                        yield from self._conflict(
                            ctx, kw.value, _name_unit(kw.arg), _expr_unit(kw.value),
                            f"keyword argument {kw.arg!r}",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_unit = _name_unit(node.name)
                if fn_unit is None:
                    continue
                for ret in ast.walk(node):
                    if (
                        isinstance(ret, ast.Return)
                        and ret.value is not None
                        and not self._in_nested_function(node, ret)
                    ):
                        yield from self._conflict(
                            ctx, ret, fn_unit, _expr_unit(ret.value),
                            f"return from {node.name}()",
                        )

    def _conflict(
        self,
        ctx: FileContext,
        node: ast.AST,
        left: str | None,
        right: str | None,
        where: str,
    ) -> Iterator[Diagnostic]:
        if left is not None and right is not None and left != right:
            yield self.diag(
                ctx, node,
                f"{where} mixes conflicting unit suffixes "
                f"_{left} and _{right}; convert explicitly (* / /)",
            )

    @staticmethod
    def _in_nested_function(outer: ast.AST, target: ast.AST) -> bool:
        """True when ``target`` belongs to a def nested inside ``outer``."""
        for child in ast.walk(outer):
            if child is outer:
                continue
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and any(grand is target for grand in ast.walk(child)):
                return True
        return False


# -- RPL004: frozen-spec hygiene -----------------------------------------------

#: modules whose own serde/validation code may use object.__setattr__ freely
_SPEC_MODULES = ("repro/config.py", "repro/scenarios/spec.py")


def _frozen_spec_class_names() -> frozenset[str]:
    """Names of the frozen dataclasses in config.py and scenarios/spec.py.

    Read off the live modules so the rule stays in lockstep with the spec
    without a hand-maintained list; falls back to a pinned set if the
    import is unavailable (e.g. linting from a stripped environment).
    """
    names: set[str] = set()
    try:
        import repro.config as config_mod
        import repro.scenarios.spec as spec_mod
    except Exception:  # pragma: no cover - import failure fallback
        return frozenset(
            {
                "ModelConfig", "LinkSpec", "ClusterConfig", "InferenceConfig",
                "ServingConfig", "FleetConfig", "DriftSpec", "ReplacementSpec",
                "FlashCrowdSpec", "Scenario",
            }
        )
    for mod in (config_mod, spec_mod):
        for name, obj in vars(mod).items():
            if (
                isinstance(obj, type)
                and dataclasses.is_dataclass(obj)
                and obj.__dataclass_params__.frozen
            ):
                names.add(name)
    return frozenset(names)


def _annotation_classes(annotation: ast.AST | None) -> set[str]:
    """Class names mentioned in a (possibly union/optional) annotation."""
    if annotation is None:
        return set()
    found: set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            found.add(node.id)
        elif isinstance(node, ast.Attribute):
            found.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            found.add(node.value.split(".")[-1].strip())
    return found


@register
class FrozenSpecMutation(Rule):
    """RPL004 — never mutate a Scenario/config object after construction.

    Frozen specs are what make a run reproducible from its JSON: the
    sweep runner pickles them across processes, the registry hands the
    same instance to every caller, and ``to_dict``/``from_dict`` assume
    value semantics.  Attribute assignment raises at runtime — but
    ``object.__setattr__`` does not, so the escape hatch is flagged
    everywhere except a frozen dataclass's own ``__post_init__`` (the
    standard normalization idiom) and the two spec modules themselves.
    Use ``dataclasses.replace`` to derive modified specs.
    """

    code = "RPL004"
    name = "frozen-spec-mutation"
    description = "attribute assignment on frozen spec instances / setattr escapes"

    _frozen_names: frozenset[str] | None = None

    @classmethod
    def frozen_names(cls) -> frozenset[str]:
        if cls._frozen_names is None:
            cls._frozen_names = _frozen_spec_class_names()
        return cls._frozen_names

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        frozen = self.frozen_names()
        in_spec_module = any(ctx.relpath.endswith(m) for m in _SPEC_MODULES)
        instances = self._inferred_instances(ctx.tree, frozen)
        post_init_spans = self._post_init_spans(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in instances
                        and not self._inside(post_init_spans, node)
                    ):
                        yield self.diag(
                            ctx, node,
                            f"attribute assignment on frozen "
                            f"{instances[base.id]} instance {base.id!r}; use "
                            "dataclasses.replace to derive a new spec",
                        )
            elif isinstance(node, ast.Call) and not in_spec_module:
                name = dotted_name(node.func)
                if name == "object.__setattr__" and not self._allowed_setattr(
                    node, post_init_spans
                ):
                    yield self.diag(
                        ctx, node,
                        "object.__setattr__ outside a frozen dataclass's own "
                        "__post_init__ bypasses spec immutability",
                    )

    @staticmethod
    def _inferred_instances(
        tree: ast.Module, frozen: frozenset[str]
    ) -> dict[str, str]:
        """Local names statically known to hold frozen-spec instances."""
        instances: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = dotted_name(node.value.func)
                cls = callee.split(".")[-1] if callee else None
                if cls in frozen:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            instances[target.id] = cls
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                hit = _annotation_classes(node.annotation) & frozen
                if hit:
                    instances[node.target.id] = sorted(hit)[0]
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    hit = _annotation_classes(arg.annotation) & frozen
                    if hit:
                        instances[arg.arg] = sorted(hit)[0]
        return instances

    @staticmethod
    def _post_init_spans(tree: ast.Module) -> list[tuple[int, int]]:
        """Line spans of ``__post_init__`` methods of dataclass classes."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass_decorated = any(
                (dotted_name(d) or "").endswith("dataclass")
                or (
                    isinstance(d, ast.Call)
                    and (dotted_name(d.func) or "").endswith("dataclass")
                )
                for d in node.decorator_list
            )
            if not is_dataclass_decorated:
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "__post_init__"
                ):
                    spans.append((item.lineno, item.end_lineno or item.lineno))
        return spans

    @staticmethod
    def _inside(spans: Sequence[tuple[int, int]], node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return any(lo <= line <= hi for lo, hi in spans)

    @classmethod
    def _allowed_setattr(
        cls, call: ast.Call, post_init_spans: Sequence[tuple[int, int]]
    ) -> bool:
        """``object.__setattr__(self, ...)`` inside a __post_init__ is idiom."""
        if not call.args:
            return False
        first = call.args[0]
        return (
            isinstance(first, ast.Name)
            and first.id == "self"
            and cls._inside(post_init_spans, call)
        )


# -- RPL005: set-iteration-order hazards ---------------------------------------

_ORDER_SINKS = frozenset({"list", "tuple", "enumerate"})
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "len", "min", "max", "sum", "any", "all"}
)


def _is_set_expr(node: ast.AST, set_vars: frozenset[str]) -> bool:
    """True when ``node`` statically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_vars) and _is_set_expr(
            node.right, set_vars
        )
    return False


@register
class SetIterationOrder(Rule):
    """RPL005 — iteration order of sets must never reach results.

    Python set iteration order depends on insertion history and hash
    randomization of the values involved; a ``for gpu in
    visited_gpus:`` in placement or fleet code turns into
    run-to-run-different placements that *both* engines faithfully agree
    on — the equivalence suite cannot catch it.  Iterate ``sorted(...)``
    instead (every flagged site has a total order available).  Scoped to
    the simulator packages; dict iteration is fine (insertion-ordered).
    """

    code = "RPL005"
    name = "set-iteration-order"
    description = "iterating a set / materializing set order inside simulator code"
    scope = ("repro/engine", "repro/fleet", "repro/core")

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        # per-scope (module body or function body) set-variable tracking
        scopes: list[ast.AST] = [ctx.tree, *walk_functions(ctx.tree)]
        for scope_node in scopes:
            set_vars = self._set_vars(scope_node)
            for node in walk_scope(scope_node):
                yield from self._check_node(ctx, node, set_vars)

    @staticmethod
    def _set_vars(scope_node: ast.AST) -> frozenset[str]:
        names: set[str] = set()
        for node in walk_scope(scope_node):
            if isinstance(node, ast.Assign) and _is_set_expr(
                node.value, frozenset(names)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                ann = node.annotation
                ann_name = (dotted_name(ann) or "").split(".")[-1]
                if ann_name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet"):
                    names.add(node.target.id)
                elif (
                    isinstance(ann, ast.Subscript)
                    and (dotted_name(ann.value) or "").split(".")[-1]
                    in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
                ):
                    names.add(node.target.id)
        return frozenset(names)

    def _check_node(
        self, ctx: FileContext, node: ast.AST, set_vars: frozenset[str]
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.For) and _is_set_expr(node.iter, set_vars):
            yield self.diag(
                ctx, node,
                "iterating a set: order depends on hashes/insertion history "
                "and can leak into results; iterate sorted(...) instead",
            )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_vars) and not self._order_safe(node):
                    yield self.diag(
                        ctx, gen.iter,
                        "comprehension over a set materializes its iteration "
                        "order; use sorted(...) as the source",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            callee = node.func.id
            if callee in _ORDER_SINKS and node.args and _is_set_expr(
                node.args[0], set_vars
            ):
                yield self.diag(
                    ctx, node,
                    f"{callee}() over a set materializes its iteration order; "
                    "wrap the set in sorted(...)",
                )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                name == "dict.fromkeys"
                and node.args
                and _is_set_expr(node.args[0], set_vars)
            ):
                yield self.diag(
                    ctx, node,
                    "dict.fromkeys over a set builds a dict whose order "
                    "follows set iteration; sort the keys first",
                )

    def _order_safe(self, comp: ast.AST) -> bool:
        """SetComp results are unordered anyway; others are handled by caller."""
        return isinstance(comp, ast.SetComp)


# -- RPL006: seed threading ----------------------------------------------------


@register
class SeedNotThreaded(Rule):
    """RPL006 — a function given a seed/rng must pass it on.

    Determinism is a chain property: one helper that takes ``seed`` but
    calls a seed-taking collaborator with its default severs the chain
    silently (the callee falls back to its default seed and every run
    looks reproducible — until two call sites disagree).  The rule
    indexes every function in the lint run that accepts a ``seed``/
    ``rng`` parameter and flags calls from one to another that forward
    neither, positionally nor by keyword.
    """

    code = "RPL006"
    name = "seed-not-threaded"
    description = "seed/rng parameter not forwarded to a seed-taking callee"

    SEED_NAMES = frozenset({"seed", "rng"})

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for fn in walk_functions(ctx.tree):
            own = self._seed_params(fn)
            if not own:
                continue
            derived = self._derived_names(fn, own)
            for node in walk_scope(fn):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._callee_name(node.func)
                if callee is None or callee == fn.name:
                    continue
                infos = ctx.project.seed_functions(callee)
                if not infos:
                    continue
                if self._forwards(node, derived, infos):
                    continue
                yield self.diag(
                    ctx, node,
                    f"{fn.name}() takes {'/'.join(sorted(own))} but calls "
                    f"{callee}() without forwarding it; pass "
                    f"{sorted(own)[0]} through explicitly",
                )

    @classmethod
    def _seed_params(cls, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
        args = fn.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        return frozenset(n for n in names if n in cls.SEED_NAMES)

    @staticmethod
    def _derived_names(fn: ast.AST, own: frozenset[str]) -> frozenset[str]:
        """Seed params plus locals derived from them (``rng =
        default_rng(seed)``): passing any of these counts as threading."""
        derived = set(own)
        grew = True
        while grew:  # transitive: a = f(seed); b = g(a)
            grew = False
            for node in walk_scope(fn):
                if not isinstance(node, ast.Assign):
                    continue
                mentions = any(
                    isinstance(sub, ast.Name) and sub.id in derived
                    for sub in ast.walk(node.value)
                )
                if not mentions:
                    continue
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) and sub.id not in derived:
                            derived.add(sub.id)
                            grew = True
        return frozenset(derived)

    @staticmethod
    def _callee_name(func: ast.AST) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    @classmethod
    def _forwards(
        cls,
        call: ast.Call,
        own: frozenset[str],
        infos: Sequence[object],
    ) -> bool:
        # keyword seed=/rng= (any value) or **kwargs counts as an explicit
        # decision; so does the caller's own seed/rng appearing anywhere in
        # the argument list (e.g. f(derive(seed)) or positional forwarding)
        for kw in call.keywords:
            if kw.arg is None or kw.arg in cls.SEED_NAMES:
                return True
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                return True
        for node in call.args:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in own:
                    return True
        for kw in call.keywords:
            for sub in ast.walk(kw.value):
                if isinstance(sub, ast.Name) and sub.id in own:
                    return True
        # positional coverage of the callee's seed slot (method calls on
        # self shift the provided-arg index by one for the bound receiver)
        shift = 1 if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ) else 0
        provided = len(call.args) + shift
        for info in infos:
            positions = getattr(info, "positions", ())
            if any(0 <= p < provided for p in positions):
                return True
        return False
