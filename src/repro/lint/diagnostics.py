"""Diagnostic records emitted by the ``repro lint`` rules.

A :class:`Diagnostic` is one finding at one source location.  Diagnostics
are plain frozen dataclasses so rule implementations stay side-effect
free and the CLI can render them as text (``path:line:col: CODE message``)
or JSON (``--json``) without the rules knowing about either format.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Ordering is (path, line, col, code) so a sorted diagnostic list reads
    top-to-bottom per file — the order both output formats use.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Human-readable one-liner, in the style of compiler output."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (the ``repro lint --json`` record shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
