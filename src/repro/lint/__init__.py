"""``repro lint`` — domain-specific static analysis for this repro.

General-purpose linters check Python; this package checks the
*invariants the reproduction's guarantees rest on*: seeded randomness
(RPL001), clock/environment-free simulator logic (RPL002), unit-suffix
safety (RPL003), frozen-spec hygiene (RPL004), set-iteration-order
determinism (RPL005) and seed threading (RPL006).  See
``repro.lint.rules`` for what each rule protects and ``DESIGN.md``
("Static analysis & invariants") for how they relate to the runtime
test suites.

Entry points
------------
``repro lint [paths] [--json]`` on the command line, or::

    from repro.lint import lint_paths
    diagnostics = lint_paths(["src", "benchmarks", "examples"])

Suppress a deliberate violation per line with
``# repro-lint: disable=RPL001`` (comma-separate multiple codes,
``disable-file=`` for whole-file scope) — and say why in the comment.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig, PathOverride
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import (
    RULES,
    FileContext,
    ProjectIndex,
    Rule,
    collect_files,
    lint_paths,
    lint_sources,
    register,
)

# importing the rules module populates the registry
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "DEFAULT_CONFIG",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "PathOverride",
    "ProjectIndex",
    "RULES",
    "Rule",
    "collect_files",
    "lint_paths",
    "lint_sources",
    "register",
]
