"""Per-directory rule selection for ``repro lint``.

The default configuration encodes the repo's layering:

* everything gets every rule by default;
* test code keeps raw RNG and wall-clock freedom (``RPL001``/``RPL002``
  exist to protect *simulator* determinism, and the suites deliberately
  construct bad inputs);
* benchmarks and examples are user-facing scripts — they must still
  seed their RNGs (``RPL001``) but may read clocks to measure wall time,
  so ``RPL002`` stays scoped to the simulator packages via the rule's
  own ``scope`` (no override needed here).

Overrides are ordered; later entries win, so a config can carve narrow
exceptions inside a broader prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.framework import RULES, is_test_path

__all__ = ["PathOverride", "LintConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class PathOverride:
    """Enable/disable rule codes for files under one path prefix.

    ``prefix`` is a repo-relative posix prefix (``"tests/"``); the empty
    string matches every file.  ``disable``/``enable`` adjust the rule
    set inherited from earlier overrides (and the global selection).
    """

    prefix: str
    disable: frozenset[str] = frozenset()
    enable: frozenset[str] = frozenset()

    def matches(self, relpath: str) -> bool:
        norm = relpath.replace("\\", "/")
        return norm.startswith(self.prefix) if self.prefix else True


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where.

    ``select`` is the base rule set (``None`` = every registered rule);
    ``overrides`` are applied in order to files whose repo-relative path
    matches.  Test files additionally drop ``disable_in_tests`` codes, a
    path-shape rule (any ``tests/`` segment, ``test_*.py``,
    ``conftest.py``) rather than a prefix, so it follows the file even
    when linting a single test by path.
    """

    select: frozenset[str] | None = None
    overrides: tuple[PathOverride, ...] = ()
    disable_in_tests: frozenset[str] = frozenset()

    def rules_for(self, relpath: str) -> frozenset[str]:
        """Rule codes enabled for ``relpath`` (before per-rule scoping)."""
        enabled = set(self.select) if self.select is not None else set(RULES)
        for override in self.overrides:
            if override.matches(relpath):
                enabled -= override.disable
                enabled |= override.enable
        if self.disable_in_tests and is_test_path(relpath):
            enabled -= self.disable_in_tests
        return frozenset(enabled)


#: The configuration ``repro lint`` uses unless told otherwise.
DEFAULT_CONFIG = LintConfig(
    select=None,
    overrides=(),
    # RPL001: test suites construct deliberately-bad RNG usage and seed
    # via fixtures; RPL002: timing assertions may read clocks.
    disable_in_tests=frozenset({"RPL001", "RPL002"}),
)
