"""Rule framework for ``repro lint``: registry, file context, suppressions.

The linter is a thin pipeline:

1. collect ``.py`` files from the given paths,
2. parse each into an :mod:`ast` tree plus a :class:`FileContext`
   (source lines, repo-relative path, suppression comments),
3. build one :class:`ProjectIndex` over *all* collected files (cross-file
   facts, e.g. which functions accept a ``seed``/``rng`` parameter),
4. run every rule enabled for that file's path, and
5. drop diagnostics suppressed by ``# repro-lint: disable=RPLxxx``
   comments, then sort.

Rules subclass :class:`Rule` and register themselves with
:func:`register`; each owns one ``RPL0xx`` code.  Rules never mutate
shared state, so the runner is trivially re-entrant (the test suite
lints inline snippets through the same entry points the CLI uses).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports RULES)
    from repro.lint.config import LintConfig

__all__ = [
    "FileContext",
    "ProjectIndex",
    "Rule",
    "RULES",
    "register",
    "lint_paths",
    "lint_sources",
    "is_test_path",
    "path_in_scope",
]

#: ``# repro-lint: disable=RPL001`` or ``disable=RPL001,RPL003`` or
#: ``disable=all`` — suppresses matching diagnostics on that physical line.
#: ``disable-file=`` suppresses for the whole file from any line.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>all|RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
)


def _parse_suppressions(lines: Sequence[str]) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and file-level suppression sets from source lines."""
    per_line: dict[int, frozenset[str]] = {}
    file_level: set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        if "repro-lint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = frozenset(c.strip() for c in match.group("codes").split(","))
        if match.group("kind") == "disable-file":
            file_level |= codes
        else:
            per_line[lineno] = per_line.get(lineno, frozenset()) | codes
    return per_line, frozenset(file_level)


def is_test_path(relpath: str) -> bool:
    """True for files that count as test code (exempt from e.g. RPL001)."""
    parts = Path(relpath).parts
    name = parts[-1] if parts else ""
    return (
        "tests" in parts
        or "test" in parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def path_in_scope(relpath: str, fragments: Sequence[str]) -> bool:
    """True when ``relpath`` falls under any of the scope ``fragments``.

    A fragment matches if it appears as a contiguous run of path segments,
    so ``"repro/engine"`` matches ``src/repro/engine/costs.py`` but not
    ``src/repro/engineering.py``.
    """
    norm = "/" + relpath.replace("\\", "/").strip("/") + "/"
    for fragment in fragments:
        frag = "/" + fragment.strip("/") + "/"
        if frag in norm:
            return True
    return False


@dataclass(frozen=True)
class SeedFunction:
    """One function definition that accepts a randomness parameter."""

    name: str
    seed_params: tuple[str, ...]  # the seed-like parameter names
    positions: tuple[int, ...]  # their positional indices (-1 = keyword-only)


class ProjectIndex:
    """Cross-file facts shared by every rule in one lint run.

    Currently: which function names take a ``seed``/``rng`` parameter
    (RPL006's callee set).  Built once over all files in the run, so the
    seed-threading rule can resolve plain-name and method calls without a
    full import graph.
    """

    SEED_PARAM_NAMES = frozenset({"seed", "rng"})

    def __init__(self) -> None:
        self._seed_functions: dict[str, list[SeedFunction]] = {}
        self._def_counts: dict[str, int] = {}

    def add_tree(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._def_counts[node.name] = self._def_counts.get(node.name, 0) + 1
            args = node.args
            positional = [a.arg for a in args.posonlyargs + args.args]
            seed_params: list[str] = []
            positions: list[int] = []
            for idx, name in enumerate(positional):
                if name in self.SEED_PARAM_NAMES:
                    seed_params.append(name)
                    positions.append(idx)
            for kwarg in args.kwonlyargs:
                if kwarg.arg in self.SEED_PARAM_NAMES:
                    seed_params.append(kwarg.arg)
                    positions.append(-1)
            if seed_params:
                self._seed_functions.setdefault(node.name, []).append(
                    SeedFunction(node.name, tuple(seed_params), tuple(positions))
                )

    def seed_functions(self, name: str) -> tuple[SeedFunction, ...]:
        """Definitions of ``name`` taking a seed-like parameter.

        Empty when the name is unknown *or* ambiguous — if any same-named
        definition in the run takes no seed, the call target cannot be
        resolved statically and flagging would be a coin flip.
        """
        infos = self._seed_functions.get(name, ())
        if not infos or self._def_counts.get(name, 0) != len(infos):
            return ()
        return tuple(infos)


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str  # path as given on the command line (display)
    relpath: str  # normalized repo-relative posix path (scoping)
    source: str
    lines: tuple[str, ...]
    tree: ast.Module
    project: ProjectIndex
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()

    @property
    def is_test(self) -> bool:
        return is_test_path(self.relpath)

    def in_scope(self, fragments: Sequence[str] | None) -> bool:
        """True when this file falls under the rule scope ``fragments``."""
        if fragments is None:
            return True
        return path_in_scope(self.relpath, fragments)

    def suppressed(self, line: int, code: str) -> bool:
        if code in self.file_suppressions or "all" in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(line)
        return codes is not None and (code in codes or "all" in codes)


class Rule:
    """Base class for one ``RPL0xx`` check.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`description` and
    optionally :attr:`scope` (path fragments the rule applies to; ``None``
    means everywhere), then implement :meth:`check` yielding diagnostics.
    Use :meth:`diag` so every finding carries the rule's code.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: Path fragments (see :func:`path_in_scope`) this rule is limited to.
    scope: tuple[str, ...] | None = None
    #: Skip test files entirely (e.g. RPL001 — tests may use raw RNG).
    skip_tests: bool = False

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )

    def applies(self, ctx: FileContext) -> bool:
        if self.skip_tests and ctx.is_test:
            return False
        return ctx.in_scope(self.scope)


#: Registry of all known rules, keyed by ``RPL0xx`` code.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    rule = cls()
    if not re.fullmatch(r"RPL\d{3}", rule.code):
        raise ValueError(f"rule code must look like RPL0xx, got {rule.code!r}")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def _relativize(path: Path, root: Path | None) -> str:
    """Repo-relative posix path for scoping; falls back to the path itself."""
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterator[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = iter([path])
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        else:
            candidates = iter(())
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen.setdefault(candidate, None)
    return list(seen)


def _build_context(
    display_path: str,
    relpath: str,
    source: str,
    project: ProjectIndex,
) -> FileContext | Diagnostic:
    """Parse one file; a syntax error becomes an RPL000 diagnostic."""
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as exc:
        return Diagnostic(
            path=display_path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code="RPL000",
            message=f"syntax error: {exc.msg}",
        )
    lines = tuple(source.splitlines())
    per_line, file_level = _parse_suppressions(lines)
    return FileContext(
        path=display_path,
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        project=project,
        line_suppressions=per_line,
        file_suppressions=file_level,
    )


def lint_sources(
    sources: Sequence[tuple[str, str]],
    config: "LintConfig | None" = None,
) -> list[Diagnostic]:
    """Lint in-memory ``(relpath, source)`` pairs (the test-suite entry point).

    Applies the same registry, config and suppression machinery as
    :func:`lint_paths`; ``relpath`` doubles as the display path.
    """
    from repro.lint.config import DEFAULT_CONFIG

    cfg = config if config is not None else DEFAULT_CONFIG
    project = ProjectIndex()
    contexts: list[FileContext] = []
    diagnostics: list[Diagnostic] = []
    for relpath, source in sources:
        built = _build_context(relpath, relpath, source, project)
        if isinstance(built, Diagnostic):
            diagnostics.append(built)
            continue
        project.add_tree(built.tree)
        contexts.append(built)
    for ctx in contexts:
        enabled = cfg.rules_for(ctx.relpath)
        for code in sorted(enabled):
            rule = RULES.get(code)
            if rule is None or not rule.applies(ctx):
                continue
            for diag in rule.check(ctx):
                if not ctx.suppressed(diag.line, diag.code):
                    diagnostics.append(diag)
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[str | Path],
    config: "LintConfig | None" = None,
    root: Path | None = None,
) -> list[Diagnostic]:
    """Lint files and directories on disk; returns sorted diagnostics.

    ``root`` anchors repo-relative paths for scoping and per-directory
    config (defaults to the current working directory).
    """
    files = collect_files(paths)
    sources: list[tuple[str, str]] = []
    display: dict[str, str] = {}
    for file in files:
        relpath = _relativize(file, root)
        display[relpath] = str(file)
        sources.append((relpath, file.read_text(encoding="utf-8")))
    diagnostics = lint_sources(sources, config)
    # restore the command-line spelling of each path for display
    return sorted(
        Diagnostic(
            path=display.get(d.path, d.path),
            line=d.line,
            col=d.col,
            code=d.code,
            message=d.message,
        )
        for d in diagnostics
    )
