"""Side-by-side comparison harness: the three execution strategies on one
identical workload.

This is what every end-to-end figure of the paper reports: DeepSpeed-style
vanilla vs "ExFlow w/o affinity" (context coherence only) vs "ExFlow w.
affinity".  :func:`compare_modes` freezes the workload and placement inputs
so the only differences between rows are the mechanisms under test.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import ClusterConfig, ExecutionMode, InferenceConfig, ModelConfig
from repro.core.placement.base import Placement
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.costs import CostModel
from repro.engine.executor import simulate_inference
from repro.engine.metrics import RunResult
from repro.engine.reference import simulate_inference_reference
from repro.engine.workload import DecodeWorkload, make_decode_workload
from repro.trace.events import RoutingTrace

if TYPE_CHECKING:
    from repro.trace.markov import MarkovRoutingModel

__all__ = ["ComparisonRow", "compare_modes"]


@dataclass(frozen=True)
class ComparisonRow:
    """One strategy's outcome plus its relation to the vanilla baseline."""

    label: str
    result: RunResult
    speedup: float
    comm_reduction: float

    @property
    def throughput(self) -> float:
        return self.result.throughput_tokens_per_s


def compare_modes(
    model: ModelConfig,
    cluster: ClusterConfig,
    infer: InferenceConfig,
    routing: MarkovRoutingModel | None = None,
    profile_trace: RoutingTrace | None = None,
    workload: DecodeWorkload | None = None,
    placement_strategy: str = "staged",
    affinity: float = 0.85,
    cost_model: CostModel | None = None,
    seed: int = 0,
    engine: str = "vectorized",
) -> dict[str, ComparisonRow]:
    """Run vanilla / context-coherent / ExFlow on one frozen workload.

    Parameters
    ----------
    routing:
        The :class:`~repro.trace.markov.MarkovRoutingModel` standing in for
        the pre-trained checkpoint's router.  It is the *single source* of
        both the profiling trace and the serving workload (the paper's
        setup: profiling and serving share the model's affinity, not the
        actual tokens).  Built with ``affinity`` when omitted.
    profile_trace:
        Offline profiling trace for the affinity placement; sampled from
        ``routing`` when omitted.  If you pass your own, make sure it comes
        from the same router as the workload, or the placement will be fit
        to the wrong affinity structure.
    workload:
        Evaluation workload; synthesised from ``routing`` when omitted.
    placement_strategy:
        Solver for the ExFlow row (see
        :data:`repro.core.placement.SOLVERS`).
    engine:
        ``"vectorized"`` (default, the batched fast path) or
        ``"reference"`` (the step-by-step oracle) — both produce identical
        results; the switch exists for cross-checking and benchmarking.

    Returns
    -------
    dict with keys ``"deepspeed"``, ``"exflow-noaff"``, ``"exflow"``.
    """
    engines = {
        "vectorized": simulate_inference,
        "reference": simulate_inference_reference,
    }
    if engine not in engines:
        raise ValueError(f"engine must be one of {sorted(engines)}, got {engine!r}")
    run_engine = engines[engine]
    rng = np.random.default_rng(seed)
    from repro.trace.markov import MarkovRoutingModel

    if routing is None:
        routing = MarkovRoutingModel.with_affinity(
            model.num_experts,
            model.num_moe_layers,
            affinity,
            rng=np.random.default_rng(seed + 1),
        )
    if workload is None:
        workload = make_decode_workload(model, cluster, infer, routing=routing, rng=rng)
    if profile_trace is None:
        profile_trace = routing.sample(4096, np.random.default_rng(seed + 2))

    base_placement = vanilla_placement(
        model.num_moe_layers, model.num_experts, cluster.num_gpus
    )
    aff_placement = solve_placement(placement_strategy, profile_trace, cluster)

    runs: dict[str, tuple[ExecutionMode, Placement]] = {
        "deepspeed": (ExecutionMode.VANILLA, base_placement),
        "exflow-noaff": (ExecutionMode.CONTEXT_COHERENT, base_placement),
        "exflow": (ExecutionMode.EXFLOW, aff_placement),
    }

    results: dict[str, RunResult] = {}
    for label, (mode, placement) in runs.items():
        cfg = dataclasses.replace(infer, mode=mode)
        results[label] = run_engine(
            model, cluster, cfg, placement, workload, cost_model
        )

    baseline = results["deepspeed"]
    return {
        label: ComparisonRow(
            label=label,
            result=res,
            speedup=res.speedup_over(baseline),
            comm_reduction=res.comm_reduction_over(baseline),
        )
        for label, res in results.items()
    }
