"""Compute cost model for the simulated GPUs.

The engine charges each operation FLOPs under the standard ``2 m k n``
matmul convention and converts to seconds with the GPU's sustained
throughput, discounted by a per-op efficiency factor (decode-time GEMMs are
memory-bound, so small ops achieve a fraction of peak — the factors below
are calibrated so the compute/communication split reproduces the paper's
Fig 9 ratios on the Wilkes3-shaped cluster).

Only the four operations the paper measures are modelled ("we only measure
the most significant four operations in the MoE model, as others are
trivial"): attention, gating, expert FFN, and communication (priced by
:mod:`repro.cluster.collectives`, not here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """FLOP accounting + efficiency factors for one model/GPU pairing.

    Parameters
    ----------
    model:
        Architecture whose dimensions set the FLOP counts.
    gpu_flops:
        Sustained dense-GEMM throughput of one GPU.
    attention_efficiency / ffn_efficiency / gating_efficiency:
        Fraction of ``gpu_flops`` each op achieves.  Decode attention is a
        batched GEMV (heavily memory-bound) — its low factor is what makes
        single-node inference compute-dominated.  Defaults are calibrated so
        the vanilla Alltoall share of runtime on the Wilkes3-shaped cluster
        reproduces Fig 9: ~15 % on one node rising to ~80-85 % on eight.
    """

    model: ModelConfig
    gpu_flops: float = 150.0e12
    attention_efficiency: float = 0.015
    ffn_efficiency: float = 0.03
    gating_efficiency: float = 0.006

    def __post_init__(self) -> None:
        for name in ("attention_efficiency", "ffn_efficiency", "gating_efficiency"):
            v = getattr(self, name)
            if not 0 < v <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {v}")
        if self.gpu_flops <= 0:
            raise ValueError("gpu_flops must be positive")

    # -- FLOP counts (per token) ------------------------------------------------

    def attention_flops(self, context_len: int) -> float:
        """One token's decode attention over a ``context_len`` context.

        QKV projection (2 * d * 3d) + scores and value mix (2 * 2 * c * d)
        + output projection (2 * d * d).
        """
        d = self.model.d_model
        return 2.0 * d * 3 * d + 4.0 * context_len * d + 2.0 * d * d

    def ffn_flops(self) -> float:
        """One token through one expert FFN (two matmuls)."""
        d, f = self.model.d_model, self.model.d_ff
        return 2.0 * d * f + 2.0 * f * d

    def gating_flops(self) -> float:
        """One token's router projection."""
        return 2.0 * self.model.d_model * self.model.num_experts

    # -- times -------------------------------------------------------------------

    def attention_time(self, tokens: int, context_len: int) -> float:
        """Seconds for ``tokens`` decode-attention tokens on one GPU."""
        if tokens < 0 or context_len < 0:
            raise ValueError("tokens and context_len must be >= 0")
        return tokens * self.attention_flops(context_len) / (
            self.gpu_flops * self.attention_efficiency
        )

    def ffn_time(self, tokens: int, k: int = 1) -> float:
        """Seconds for ``tokens`` tokens through ``k`` experts each."""
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        return tokens * k * self.ffn_flops() / (self.gpu_flops * self.ffn_efficiency)

    def gating_time(self, tokens: int) -> float:
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        return tokens * self.gating_flops() / (self.gpu_flops * self.gating_efficiency)

    def decode_step_time(self, tokens: int, context_len: int, k: int = 1) -> float:
        """Compute floor of one decode iteration for ``tokens`` on one GPU.

        Attention + gating across all decoder blocks plus ``k`` expert FFNs
        per MoE layer, with no communication.  Serving step pricing does
        *not* flow through here (it is calibrated by
        :func:`repro.engine.serving.engine_step_time`); this is the
        analytic lower bound a calibrated curve must dominate, used for
        sanity checks and back-of-envelope analyses.
        """
        if tokens < 0 or context_len < 0:
            raise ValueError("tokens and context_len must be >= 0")
        per_layer = (
            self.attention_time(tokens, context_len)
            + self.gating_time(tokens)
            + self.ffn_time(tokens, k)
        )
        return self.model.num_moe_layers * per_layer

    def token_bytes(self, dtype_bytes: int = 2) -> int:
        """Wire size of one token's activation (the Alltoall payload unit)."""
        return self.model.d_model * dtype_bytes
