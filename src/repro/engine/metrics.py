"""Result containers and derived metrics for engine runs.

A :class:`RunResult` is the engine's complete account of one simulated
serving run: wall-clock decomposition per operation (the slices of Fig 9),
communication ledger, token-locality statistics (Figs 7/8) and throughput
(Fig 10's y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.traffic import TrafficLedger
from repro.config import ExecutionMode

__all__ = ["OpBreakdown", "RunResult"]


@dataclass(frozen=True)
class OpBreakdown:
    """Seconds spent per operation class across a run."""

    attention_s: float = 0.0
    gating_s: float = 0.0
    expert_ffn_s: float = 0.0
    alltoall_s: float = 0.0
    allgather_s: float = 0.0

    @property
    def compute_s(self) -> float:
        return self.attention_s + self.gating_s + self.expert_ffn_s

    @property
    def comm_s(self) -> float:
        return self.alltoall_s + self.allgather_s

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    def fraction(self, op: str) -> float:
        """Share of total time taken by ``op`` (e.g. ``"alltoall_s"``)."""
        total = self.total_s
        if total <= 0:
            return 0.0
        return float(getattr(self, op) / total)

    def as_dict(self) -> dict[str, float]:
        return {
            "attention_s": self.attention_s,
            "gating_s": self.gating_s,
            "expert_ffn_s": self.expert_ffn_s,
            "alltoall_s": self.alltoall_s,
            "allgather_s": self.allgather_s,
        }


@dataclass(frozen=True)
class RunResult:
    """Full account of one simulated inference run.

    Attributes
    ----------
    mode:
        Execution strategy that produced this run.
    breakdown:
        Per-op wall-clock decomposition (times are the per-iteration maxima
        over GPUs, summed over iterations — lockstep SPMD semantics).
    ledger:
        Collective-level traffic record.
    generated_tokens:
        Total tokens produced across all requests.
    iterations:
        Generation iterations executed.
    gpu_stay_fraction / node_stay_fraction:
        Locality of expert-to-expert transitions during the run.
    """

    mode: ExecutionMode
    breakdown: OpBreakdown
    ledger: TrafficLedger
    generated_tokens: int
    iterations: int
    gpu_stay_fraction: float
    node_stay_fraction: float

    @property
    def total_time_s(self) -> float:
        return self.breakdown.total_s

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return float("inf")
        return self.generated_tokens / self.total_time_s

    @property
    def alltoall_fraction(self) -> float:
        """Alltoall share of total runtime — the pies of Fig 9."""
        return self.breakdown.fraction("alltoall_s")

    def speedup_over(self, baseline: "RunResult") -> float:
        """Throughput ratio vs a baseline run of the same workload."""
        if baseline.generated_tokens != self.generated_tokens:
            raise ValueError("speedup requires runs over identical workloads")
        if self.total_time_s <= 0:
            return float("inf")
        return baseline.total_time_s / self.total_time_s

    def comm_reduction_over(self, baseline: "RunResult") -> float:
        """Fractional reduction in communication time vs ``baseline``."""
        base = baseline.breakdown.comm_s
        if base <= 0:
            return 0.0
        return 1.0 - self.breakdown.comm_s / base
