"""Result containers and derived metrics for engine runs.

A :class:`RunResult` is the engine's complete account of one simulated
serving run: wall-clock decomposition per operation (the slices of Fig 9),
communication ledger, token-locality statistics (Figs 7/8) and throughput
(Fig 10's y-axis).  :class:`LatencyStats` summarises a sample of per-request
latencies with the tail percentiles the serving layer reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.cluster.traffic import TrafficLedger
from repro.config import ExecutionMode

__all__ = ["OpBreakdown", "RunResult", "LatencyStats", "LATENCY_HIST_EDGES_S"]

#: Fixed log-spaced bucket edges (seconds) for :attr:`LatencyStats.histogram`.
#: Bucket ``i`` counts samples in ``[edges[i-1], edges[i])`` (bucket 0 is
#: everything below ``edges[0]``, the last bucket everything at or above
#: ``edges[-1]``).  Fixed edges make histograms from different runs — and
#: different engines — directly comparable and mergeable by addition.
LATENCY_HIST_EDGES_S: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
)


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (seconds).

    ``p50_s``/``p95_s``/``p99_s`` use numpy's linear-interpolation
    percentiles; an empty sample yields all-zero stats with ``count == 0``.
    ``histogram`` holds per-bucket counts over the fixed
    :data:`LATENCY_HIST_EDGES_S` edges (``len(edges) + 1`` buckets), so
    ``sum(histogram) == count`` always.
    """

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    histogram: tuple[int, ...] = ()

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyStats":
        arr = np.asarray(list(samples), dtype=np.float64)
        num_buckets = len(LATENCY_HIST_EDGES_S) + 1
        if arr.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, (0,) * num_buckets)
        if (arr < 0).any():
            raise ValueError("latency samples must be non-negative")
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        edges = np.asarray(LATENCY_HIST_EDGES_S, dtype=np.float64)
        # side="right": a sample equal to an edge lands in the bucket above
        # it, matching the [lo, hi) bucket convention documented on the edges
        buckets = np.searchsorted(edges, arr, side="right")
        counts = np.bincount(buckets, minlength=num_buckets)
        return cls(
            count=int(arr.size),
            mean_s=float(arr.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(arr.max()),
            histogram=tuple(int(c) for c in counts),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }

    def histogram_dict(self) -> dict[str, int]:
        """Bucket counts keyed by their upper edge (``"+inf"`` for the tail).

        Returns an empty dict when the stats were built without a histogram
        (e.g. deserialized from a pre-histogram report).
        """
        if not self.histogram:
            return {}
        labels = [f"<{edge:g}s" for edge in LATENCY_HIST_EDGES_S] + ["+inf"]
        return dict(zip(labels, self.histogram, strict=True))


@dataclass(frozen=True)
class OpBreakdown:
    """Seconds spent per operation class across a run."""

    attention_s: float = 0.0
    gating_s: float = 0.0
    expert_ffn_s: float = 0.0
    alltoall_s: float = 0.0
    allgather_s: float = 0.0

    @property
    def compute_s(self) -> float:
        return self.attention_s + self.gating_s + self.expert_ffn_s

    @property
    def comm_s(self) -> float:
        return self.alltoall_s + self.allgather_s

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    def fraction(self, op: str) -> float:
        """Share of total time taken by ``op`` (e.g. ``"alltoall_s"``)."""
        total = self.total_s
        if total <= 0:
            return 0.0
        return float(getattr(self, op) / total)

    def as_dict(self) -> dict[str, float]:
        return {
            "attention_s": self.attention_s,
            "gating_s": self.gating_s,
            "expert_ffn_s": self.expert_ffn_s,
            "alltoall_s": self.alltoall_s,
            "allgather_s": self.allgather_s,
        }


@dataclass(frozen=True)
class RunResult:
    """Full account of one simulated inference run.

    Attributes
    ----------
    mode:
        Execution strategy that produced this run.
    breakdown:
        Per-op wall-clock decomposition (times are the per-iteration maxima
        over GPUs, summed over iterations — lockstep SPMD semantics).
    ledger:
        Collective-level traffic record.
    generated_tokens:
        Total tokens produced across all requests.
    iterations:
        Generation iterations executed.
    gpu_stay_fraction / node_stay_fraction:
        Locality of expert-to-expert transitions during the run.
    """

    mode: ExecutionMode
    breakdown: OpBreakdown
    ledger: TrafficLedger
    generated_tokens: int
    iterations: int
    gpu_stay_fraction: float
    node_stay_fraction: float

    @property
    def total_time_s(self) -> float:
        return self.breakdown.total_s

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return float("inf")
        return self.generated_tokens / self.total_time_s

    @property
    def alltoall_fraction(self) -> float:
        """Alltoall share of total runtime — the pies of Fig 9."""
        return self.breakdown.fraction("alltoall_s")

    def speedup_over(self, baseline: "RunResult") -> float:
        """Throughput ratio vs a baseline run of the same workload."""
        if baseline.generated_tokens != self.generated_tokens:
            raise ValueError("speedup requires runs over identical workloads")
        if self.total_time_s <= 0:
            return float("inf")
        return baseline.total_time_s / self.total_time_s

    def comm_reduction_over(self, baseline: "RunResult") -> float:
        """Fractional reduction in communication time vs ``baseline``."""
        base = baseline.breakdown.comm_s
        if base <= 0:
            return 0.0
        return 1.0 - self.breakdown.comm_s / base
