"""Request-level serving layer: arrivals, continuous batching, tail latency.

The batch engine answers "how long does one lockstep decode iteration
take"; this module answers the production question layered on top of it:
what latency distribution do *users* see when requests arrive continuously
— the "heavy traffic from millions of users" scenario family.

Three pieces compose:

* **Arrival processes** — :func:`poisson_arrivals` (memoryless open-loop
  traffic) and :func:`bursty_arrivals` (a two-state Markov-modulated
  Poisson process: flash-crowd bursts at ``burst_factor`` times the base
  rate, with the calm state slowed so the long-run mean rate is preserved).
* **Continuous batching** — :func:`simulate_serving` runs the iteration-
  level scheduler production MoE servers use: one global decode batch;
  waiting requests join at step boundaries whenever a slot is free, and
  finished requests leave immediately (no head-of-line blocking on the
  longest request in a static batch).
* **Step-time calibration** — :func:`engine_step_time` probes the
  vectorized engine (:func:`repro.engine.executor.simulate_inference`) at
  a handful of batch sizes and interpolates, so serving simulations price
  each decode step with the full placement-aware compute + collective cost
  model rather than a made-up constant.

:func:`simulate_cluster_serving` wires all three together from a
:class:`~repro.config.ServingConfig`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cluster.collectives import allgather_cost, alltoall_matrix
from repro.cluster.topology import Topology
from repro.config import (
    ClusterConfig,
    ExecutionMode,
    InferenceConfig,
    ModelConfig,
    ServingConfig,
)
from repro.core.online import (
    OnlineReplacer,
    ReplacementEvent,
    ReplacementPolicy,
    model_kept_mass,
)
from repro.core.placement.base import Placement
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.deprecation import deprecated_entry_point
from repro.engine.costs import CostModel
from repro.engine.executor import simulate_inference
from repro.engine.metrics import LatencyStats
from repro.engine.workload import (
    DecodeWorkload,
    DriftScenario,
    make_decode_workload,
    make_drift_scenario,
)
from repro.obs.recorder import MetricsRecorder
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "Request",
    "CompletedRequest",
    "ServingResult",
    "poisson_arrivals",
    "bursty_arrivals",
    "make_arrivals",
    "simulate_serving",
    "engine_step_time",
    "simulate_cluster_serving",
    "PlacementStepTimer",
    "KeptSample",
    "OnlineServingResult",
    "simulate_online_serving",
    "simulate_online_cluster_serving",
]


@dataclass(frozen=True)
class Request:
    """One user request entering the serving system."""

    req_id: int
    arrival_s: float
    prompt_len: int
    generate_len: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.prompt_len <= 0 or self.generate_len <= 0:
            raise ValueError("prompt_len and generate_len must be positive")


@dataclass(frozen=True)
class CompletedRequest:
    """A served request with its scheduling timeline."""

    request: Request
    admitted_s: float
    finished_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to last generated token."""
        return self.finished_s - self.request.arrival_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting for a batch slot."""
        return self.admitted_s - self.request.arrival_s


@dataclass(frozen=True)
class ServingResult:
    """Outcome of one continuous-batching serving simulation."""

    completed: tuple[CompletedRequest, ...]
    latency: LatencyStats
    queue: LatencyStats
    makespan_s: float
    busy_s: float
    decode_steps: int
    generated_tokens: int
    mean_batch_size: float

    @property
    def throughput_rps(self) -> float:
        # zero-span runs (no completed requests) have zero throughput, not inf
        if self.makespan_s <= 0:
            return 0.0
        return len(self.completed) / self.makespan_s

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def utilization(self) -> float:
        """Fraction of the serving span the batch engine was stepping."""
        if self.makespan_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.makespan_s)


# -- arrival processes --------------------------------------------------------


def poisson_arrivals(
    cfg: ServingConfig, rng: np.random.Generator | None = None
) -> list[Request]:
    """Memoryless arrivals: exponential inter-arrival gaps at the mean rate."""
    rng = rng or np.random.default_rng(cfg.seed)
    gaps = rng.exponential(1.0 / cfg.arrival_rate_rps, size=cfg.num_requests)
    times = np.cumsum(gaps)
    return [
        Request(i, float(times[i]), cfg.prompt_len, cfg.generate_len)
        for i in range(cfg.num_requests)
    ]


def bursty_arrivals(
    cfg: ServingConfig, rng: np.random.Generator | None = None
) -> list[Request]:
    """Markov-modulated Poisson arrivals with rate-preserving bursts.

    A two-state chain alternates between a *burst* state (instantaneous
    rate ``arrival_rate_rps * burst_factor``) and a *calm* state whose rate
    is solved so the long-run mean inter-arrival gap equals
    ``1 / arrival_rate_rps``; the stationary probability of the burst state
    is ``burst_fraction`` and ``burst_persistence`` sets dwell lengths.
    """
    rng = rng or np.random.default_rng(cfg.seed)
    p, bf = cfg.burst_fraction, cfg.burst_factor
    burst_rate = cfg.arrival_rate_rps * bf
    # solve the calm rate so E[gap] = p/burst_rate + (1-p)/calm_rate = 1/rate;
    # denom > 0 for every ServingConfig-valid shape (p < 1, burst_factor >= 1)
    denom = 1.0 / cfg.arrival_rate_rps - p / burst_rate
    calm_rate = (1.0 - p) / denom
    # stationary pi_burst = p given stay-probabilities (s_b, s_c);
    # feasibility (s_c >= 0) is guaranteed by ServingConfig validation
    s_b = cfg.burst_persistence
    s_c = 1.0 - p * (1.0 - s_b) / (1.0 - p) if p > 0 else 1.0

    requests = []
    now = 0.0
    in_burst = bool(rng.random() < p)
    for i in range(cfg.num_requests):
        rate = burst_rate if in_burst else calm_rate
        now += float(rng.exponential(1.0 / rate))
        requests.append(Request(i, now, cfg.prompt_len, cfg.generate_len))
        stay = s_b if in_burst else s_c
        if rng.random() >= stay:
            in_burst = not in_burst
    return requests


def make_arrivals(
    cfg: ServingConfig, rng: np.random.Generator | None = None
) -> list[Request]:
    """Build the arrival sequence ``cfg.arrival`` names."""
    if cfg.arrival == "poisson":
        return poisson_arrivals(cfg, rng)
    return bursty_arrivals(cfg, rng)


# -- continuous batching ------------------------------------------------------


def _simulate_serving(
    requests: Iterable[Request],
    step_time: Callable[[int], float],
    max_batch_requests: int = 64,
    recorder: MetricsRecorder | None = None,
) -> ServingResult:
    """Serve ``requests`` with iteration-level continuous batching.

    The scheduler is the one production MoE servers run: a single global
    decode batch advances one token per step for every active request;
    at each step boundary, waiting requests are admitted FCFS while slots
    are free (``max_batch_requests`` cap) and finished requests leave
    immediately.  ``step_time(batch_size)`` prices one decode iteration for
    the given number of active requests — use :func:`engine_step_time` to
    derive it from the vectorized engine.

    An attached ``recorder`` observes the run as a one-replica fleet
    (replica 0, regime 0, always active): enqueue at each arrival, free
    admission at each step boundary, step and completion hooks as the
    batch advances.  Recording never changes scheduling or float order.

    Returns the full :class:`ServingResult`, including p50/p95/p99 latency
    and queueing statistics.
    """
    if max_batch_requests <= 0:
        raise ValueError("max_batch_requests must be positive")
    pending = deque(sorted(requests, key=lambda q: (q.arrival_s, q.req_id)))
    if not pending:
        empty = LatencyStats.from_samples([])
        return ServingResult((), empty, empty, 0.0, 0.0, 0, 0, 0.0)

    first_arrival = pending[0].arrival_s
    now = first_arrival
    busy = 0.0
    steps = 0
    weighted_batch = 0.0
    active: list[list] = []  # [request, tokens_remaining, admitted_s]
    completed: list[CompletedRequest] = []

    # telemetry: the single global batch reports as replica 0; arrivals
    # enqueue lazily (in arrival order, stamped at their arrival time) the
    # first time the clock passes them
    arrivals = list(pending) if recorder is not None else []
    enq_ptr = 0
    if recorder is not None:
        recorder.on_run_start(first_arrival, {})
        recorder.on_replica_start(first_arrival, 0, 0, False, first_arrival, first_arrival)

    while pending or active:
        if not active and pending and pending[0].arrival_s > now:
            now = pending[0].arrival_s  # idle: jump to the next arrival
        if recorder is not None:
            while enq_ptr < len(arrivals) and arrivals[enq_ptr].arrival_s <= now:
                q = arrivals[enq_ptr]
                recorder.on_enqueue(q.arrival_s, 0, q.req_id)
                enq_ptr += 1
        admitted_ids: list[int] = []
        while (
            pending
            and pending[0].arrival_s <= now
            and len(active) < max_batch_requests
        ):
            req = pending.popleft()
            active.append([req, req.generate_len, now])
            if recorder is not None:
                admitted_ids.append(req.req_id)
        if recorder is not None and admitted_ids:
            recorder.on_admit(now, 0, admitted_ids, 0.0)

        dt = float(step_time(len(active)))
        if not dt > 0:
            raise ValueError(f"step_time must return positive seconds, got {dt}")
        now += dt
        busy += dt
        steps += 1
        weighted_batch += len(active) * dt
        if recorder is not None:
            recorder.on_step_end(now, 0, dt, len(active))

        still_running: list[list] = []
        for entry in active:
            entry[1] -= 1
            if entry[1] == 0:
                completed.append(CompletedRequest(entry[0], entry[2], now))
                if recorder is not None:
                    recorder.on_complete(
                        now, 0, entry[0].req_id, entry[0].arrival_s, entry[2],
                        entry[0].generate_len,
                    )
            else:
                still_running.append(entry)
        active = still_running

    if recorder is not None:
        recorder.on_run_end(now)
    makespan = now - first_arrival
    tokens = sum(c.request.generate_len for c in completed)
    return ServingResult(
        completed=tuple(completed),
        latency=LatencyStats.from_samples([c.latency_s for c in completed]),
        queue=LatencyStats.from_samples([c.queue_s for c in completed]),
        makespan_s=makespan,
        busy_s=busy,
        decode_steps=steps,
        generated_tokens=tokens,
        mean_batch_size=weighted_batch / busy if busy > 0 else 0.0,
    )


simulate_serving = deprecated_entry_point("repro.run() with a serving Scenario")(
    _simulate_serving
)


# -- engine-calibrated step costs ---------------------------------------------


def engine_step_time(
    model: ModelConfig,
    cluster: ClusterConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    prompt_len: int = 64,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    probe_requests_per_gpu: Sequence[int] = (1, 2, 4, 8),
    calibration_generate_len: int = 4,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> Callable[[int], float]:
    """Calibrate ``step_time(batch_size)`` against the vectorized engine.

    Runs two short engine simulations per probe batch size (the batched
    executor makes each probe cheap): one full-length run and one on its
    exact iteration-prefix, and takes the *marginal* seconds per decode
    iteration — the slope between the two — so one-time costs (the
    coherent modes' before-inference prompt AllGather) and the shared
    prefix cancel exactly instead of being amortised into every step.
    Returns a piecewise-linear interpolant over total batch size.
    Probes share one routing model and one placement, so the curve isolates
    the batch-size effect.  Batch sizes outside the probed range clamp to
    the nearest probe — pass probes covering your admission cap.
    """
    probes = sorted(set(int(b) for b in probe_requests_per_gpu))
    if not probes or probes[0] < 1:
        raise ValueError("probe_requests_per_gpu must be positive integers")

    routing = MarkovRoutingModel.with_affinity(
        model.num_experts,
        model.num_moe_layers,
        affinity,
        rng=np.random.default_rng(seed),
    )
    if mode.uses_affinity_placement:
        profile = routing.sample(2048, np.random.default_rng(seed + 1))
        placement = solve_placement(placement_strategy, profile, cluster)
    else:
        placement = vanilla_placement(
            model.num_moe_layers, model.num_experts, cluster.num_gpus
        )

    batch_sizes = []
    step_seconds = []
    for b in probes:
        infer = InferenceConfig(
            requests_per_gpu=b,
            prompt_len=prompt_len,
            generate_len=2 * calibration_generate_len,
            mode=mode,
            seed=seed,
        )
        # disjoint seed offset: must not replay the placement-profile stream
        # (seed + 1), or the smallest probe would be scored on the very
        # token paths the affinity placement was fit to
        hi_workload = make_decode_workload(
            model,
            cluster,
            infer,
            routing=routing,
            rng=np.random.default_rng(seed + 1000 + b),
        )
        # the lo run is the exact iteration-prefix of the hi run (secondary
        # paths included), so the hi - lo difference isolates the marginal
        # cost of the extra iterations with no workload re-draw noise
        lo_workload = DecodeWorkload(
            hi_workload.paths[:calibration_generate_len],
            hi_workload.home_gpu,
            hi_workload.num_experts,
            hi_workload.prompt_len,
            None
            if hi_workload.secondary_paths is None
            else hi_workload.secondary_paths[:calibration_generate_len],
        )
        hi = simulate_inference(
            model, cluster, infer, placement, hi_workload, cost_model
        ).total_time_s
        lo = simulate_inference(
            model, cluster, infer, placement, lo_workload, cost_model
        ).total_time_s
        batch_sizes.append(b * cluster.num_gpus)
        step_seconds.append((hi - lo) / calibration_generate_len)

    xs = np.asarray(batch_sizes, dtype=np.float64)
    ys = np.asarray(step_seconds, dtype=np.float64)

    def step_time(batch_size: int) -> float:
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        return float(np.interp(float(batch_size), xs, ys))

    return step_time


def _simulate_cluster_serving(
    model: ModelConfig,
    cluster: ClusterConfig,
    serving: ServingConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    cost_model: CostModel | None = None,
    recorder: MetricsRecorder | None = None,
) -> ServingResult:
    """End-to-end serving scenario from a :class:`~repro.config.ServingConfig`.

    Calibrates the step-time curve with probes covering the admission cap,
    draws the configured arrival sequence, and runs continuous batching.
    """
    g = cluster.num_gpus
    cap_per_gpu = max(1, -(-serving.max_batch_requests // g))  # ceil div
    probes = sorted({1, *(p for p in (2, 4, 8) if p < cap_per_gpu), cap_per_gpu})
    step = engine_step_time(
        model,
        cluster,
        mode=mode,
        prompt_len=serving.prompt_len,
        affinity=affinity,
        placement_strategy=placement_strategy,
        probe_requests_per_gpu=probes,
        cost_model=cost_model,
        seed=serving.seed,
    )
    rng = np.random.default_rng(serving.seed)
    requests = make_arrivals(serving, rng)
    return _simulate_serving(
        requests,
        step,
        max_batch_requests=serving.max_batch_requests,
        recorder=recorder,
    )


simulate_cluster_serving = deprecated_entry_point(
    "repro.run() with a serving Scenario"
)(_simulate_cluster_serving)


# -- online drift-aware serving -----------------------------------------------


class PlacementStepTimer:
    """Price one continuous-batching decode step from that step's routing.

    :func:`engine_step_time` calibrates a ``step_time(batch_size)`` curve
    against one frozen routing model and one frozen placement — exactly
    right for a closed-loop benchmark, structurally wrong for the online
    setting where both the routing *and* the placement change mid-run.
    This timer instead prices each step directly: given the step's (B, L)
    expert paths, each request's home GPU and context length, and the
    *current* placement, it reproduces the batched engine's per-step
    arithmetic (lockstep per-GPU maxima for compute, pairwise-exchange
    Alltoall for dispatch, ring AllGather for context coherence) for a
    single decode iteration.  On a one-iteration workload it matches
    :func:`repro.engine.executor.simulate_inference` up to the one-time
    prompt AllGather, which :meth:`admission_time` prices separately (the
    online loop charges it when requests join the batch).
    """

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterConfig,
        mode: ExecutionMode = ExecutionMode.EXFLOW,
        dtype_bytes: int = 2,
        cost_model: CostModel | None = None,
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.mode = mode
        self.topo = Topology(cluster)
        self.cost = cost_model or CostModel(model, gpu_flops=cluster.gpu_flops)
        self.token_bytes = self.cost.token_bytes(dtype_bytes)
        self.coherent = mode.uses_context_coherence

    def _check_inputs(
        self, paths: np.ndarray, home_gpu: np.ndarray, context_lens: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        paths = np.asarray(paths, dtype=np.int64)
        home = np.asarray(home_gpu, dtype=np.int64)
        ctx = np.asarray(context_lens, dtype=np.int64)
        L = self.model.num_moe_layers
        if paths.ndim != 2 or paths.shape[1] != L:
            raise ValueError(f"paths must be (batch, {L}), got {paths.shape}")
        if paths.shape[0] == 0:
            raise ValueError("step needs at least one active request")
        if home.shape != (paths.shape[0],) or ctx.shape != (paths.shape[0],):
            raise ValueError("home_gpu and context_lens must have one entry per request")
        if paths.min() < 0 or paths.max() >= self.model.num_experts:
            raise ValueError("expert id out of range")
        if home.min() < 0 or home.max() >= self.cluster.num_gpus:
            raise ValueError("home GPU rank out of range")
        if ctx.min() < 1:
            raise ValueError("context lengths must be >= 1")
        return paths, home, ctx

    def step_time(
        self,
        paths: np.ndarray,
        home_gpu: np.ndarray,
        context_lens: np.ndarray,
        placement: Placement,
        secondary_paths: np.ndarray | None = None,
    ) -> float:
        """Seconds for one decode iteration of the given batch.

        ``paths`` is (B, L) expert ids for the active batch, ``home_gpu``
        (B,) data-parallel homes, ``context_lens`` (B,) per-request context
        lengths (continuous batching means they differ — attention is
        priced per token, not per lockstep iteration).
        """
        paths, home, ctx = self._check_inputs(paths, home_gpu, context_lens)
        if placement.num_layers != self.model.num_moe_layers:
            raise ValueError("placement layer count does not match model")
        if placement.num_experts != self.model.num_experts:
            raise ValueError("placement expert count does not match model")
        if placement.num_gpus != self.cluster.num_gpus:
            raise ValueError("placement GPU count does not match cluster")

        b, L = paths.shape
        g = self.cluster.num_gpus
        cost = self.cost
        layer_idx = np.arange(L, dtype=np.int64)
        gpu_path = placement.gpu_of[layer_idx[None, :], paths]  # (B, L)
        top2 = secondary_paths is not None and self.model.gating.k == 2
        if top2:
            sec = np.asarray(secondary_paths, dtype=np.int64)
            if sec.shape != paths.shape:
                raise ValueError("secondary_paths must match paths shape")
            sec_path = placement.gpu_of[layer_idx[None, :], sec]

        if self.coherent:
            loc = np.empty((b, L), dtype=np.int64)
            loc[:, 0] = home
            loc[:, 1:] = gpu_path[:, :-1]
        else:
            loc = np.broadcast_to(home[:, None], (b, L))

        keys = layer_idx[None, :] * g + loc  # (B, L) flattened (layer, gpu)

        # compute: lockstep per-GPU maxima per layer, attention priced per
        # token at its own context length (weighted bincount); attention_flops
        # is plain arithmetic, so one broadcast call covers the whole batch
        att_flops = np.asarray(cost.attention_flops(ctx), dtype=np.float64)
        att_per = np.bincount(
            keys.ravel(),
            weights=np.broadcast_to(att_flops[:, None], (b, L)).ravel(),
            minlength=L * g,
        ).reshape(L, g)
        attention_s = float(
            att_per.max(axis=1).sum() / (cost.gpu_flops * cost.attention_efficiency)
        )

        resident = np.bincount(keys.ravel(), minlength=L * g).reshape(L, g)
        gating_s = float(
            resident.max(axis=1).sum()
            * cost.gating_flops()
            / (cost.gpu_flops * cost.gating_efficiency)
        )

        ffn_counts = np.bincount(
            (layer_idx[None, :] * g + gpu_path).ravel(), minlength=L * g
        ).reshape(L, g)
        if top2:
            ffn_counts = ffn_counts + np.bincount(
                (layer_idx[None, :] * g + sec_path).ravel(), minlength=L * g
            ).reshape(L, g)
        ffn_s = float(
            ffn_counts.max(axis=1).sum()
            * cost.ffn_flops()
            / (cost.gpu_flops * cost.ffn_efficiency)
        )

        # communication: per-layer dispatch Alltoall (+ combine for vanilla),
        # plus the coherent modes' one per-iteration context AllGather
        def stacks(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
            base = layer_idx[None, :] * (g * g)
            counts = np.bincount(
                (base + src * g + dst).ravel(), minlength=L * g * g
            ).reshape(L, g, g)
            out = counts.astype(np.float64) * self.token_bytes
            diag = np.arange(g)
            out[:, diag, diag] = 0.0
            return out

        dispatch = stacks(loc, gpu_path)
        if top2:
            dispatch += stacks(loc, sec_path)
            dispatch += stacks(sec_path, gpu_path)
        comm_s = sum(res.time_s for res in alltoall_matrix(self.topo, dispatch))
        if self.coherent:
            payload = np.bincount(home, minlength=g).astype(np.float64) * self.token_bytes
            comm_s += allgather_cost(self.topo, payload).time_s
        else:
            combine = stacks(gpu_path, np.broadcast_to(home[:, None], (b, L)))
            comm_s += sum(res.time_s for res in alltoall_matrix(self.topo, combine))

        return attention_s + gating_s + ffn_s + float(comm_s)

    def admission_time(self, home_gpu: np.ndarray, prompt_lens: np.ndarray) -> float:
        """One-time cost of admitting requests into the running batch.

        Coherent modes must replicate each new request's prompt context to
        all ranks (the before-inference AllGather); vanilla keeps contexts
        home-resident, so admission is free.
        """
        home = np.asarray(home_gpu, dtype=np.int64)
        plen = np.asarray(prompt_lens, dtype=np.int64)
        if home.shape != plen.shape:
            raise ValueError("home_gpu and prompt_lens must align")
        if home.size == 0 or not self.coherent:
            return 0.0
        payload = np.bincount(
            home, weights=plen.astype(np.float64), minlength=self.cluster.num_gpus
        )
        return float(allgather_cost(self.topo, payload * self.token_bytes).time_s)


@dataclass(frozen=True)
class KeptSample:
    """One point of the kept-transition-mass timeline.

    ``true_kept`` scores the then-current placement against the *true*
    instantaneous routing regime (analytic, estimator-free);
    ``estimated_kept`` is the same placement scored on the streaming
    estimator's decayed window — the signal the policy actually sees.
    """

    step: int
    time_s: float
    true_kept: float
    estimated_kept: float | None = None


@dataclass(frozen=True)
class OnlineServingResult:
    """Outcome of one drift-aware serving simulation."""

    serving: ServingResult
    events: tuple[ReplacementEvent, ...]
    kept_timeline: tuple[KeptSample, ...]
    final_placement: Placement
    migration_stall_s: float

    @property
    def num_replacements(self) -> int:
        return len(self.events)


def _simulate_online_serving(
    requests: Iterable[Request],
    model: ModelConfig,
    cluster: ClusterConfig,
    drift: DriftScenario,
    placement: Placement,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    max_batch_requests: int = 64,
    replacer: OnlineReplacer | None = None,
    timer: PlacementStepTimer | None = None,
    dtype_bytes: int = 2,
    sample_every_steps: int = 4,
    rng: np.random.Generator | None = None,
) -> OnlineServingResult:
    """Continuous batching under drifting routing, with live re-placement.

    The loop is :func:`simulate_serving`'s scheduler with the step-cost
    abstraction opened up: each decode step samples the active batch's
    expert paths from ``drift.model_at(now)``, prices the step with a
    :class:`PlacementStepTimer` under the *current* placement, streams the
    routing into ``replacer``'s estimator, and lets the replacer migrate
    experts at step boundaries — charging the migration stall to the
    timeline, where every queued and running request pays for it.  Pass
    ``replacer=None`` for the static arm (same drift, same scheduler,
    placement frozen).

    ``sample_every_steps`` sets the cadence of the kept-mass timeline (the
    observability surface benchmarks and dashboards read).
    """
    if max_batch_requests <= 0:
        raise ValueError("max_batch_requests must be positive")
    if sample_every_steps < 1:
        raise ValueError("sample_every_steps must be >= 1")
    if drift.num_experts != model.num_experts or drift.num_layers != model.num_moe_layers:
        raise ValueError("drift scenario shape does not match model architecture")
    rng = rng or np.random.default_rng(0)
    timer = timer or PlacementStepTimer(model, cluster, mode=mode, dtype_bytes=dtype_bytes)
    top2 = model.gating.k == 2
    g = cluster.num_gpus

    pending = deque(sorted(requests, key=lambda q: (q.arrival_s, q.req_id)))
    empty_stats = LatencyStats.from_samples([])
    if not pending:
        empty = ServingResult((), empty_stats, empty_stats, 0.0, 0.0, 0, 0, 0.0)
        return OnlineServingResult(empty, (), (), placement, 0.0)

    first_arrival = pending[0].arrival_s
    now = first_arrival
    busy = 0.0
    stall_total = 0.0
    steps = 0
    weighted_batch = 0.0
    admit_counter = 0
    active: list[list] = []  # [request, tokens_remaining, admitted_s, home, generated]
    completed: list[CompletedRequest] = []
    events: list[ReplacementEvent] = []
    timeline: list[KeptSample] = []

    def record_sample() -> None:
        routing = drift.model_at(now)
        timeline.append(
            KeptSample(
                step=steps,
                time_s=now,
                true_kept=model_kept_mass(placement, routing),
                estimated_kept=(
                    replacer.current_kept_mass(placement) if replacer else None
                ),
            )
        )

    while pending or active:
        if not active and pending and pending[0].arrival_s > now:
            now = pending[0].arrival_s  # idle: jump to the next arrival
        newly_admitted: list[list] = []
        while (
            pending
            and pending[0].arrival_s <= now
            and len(active) < max_batch_requests
        ):
            req = pending.popleft()
            entry = [req, req.generate_len, now, admit_counter % g, 0]
            admit_counter += 1
            active.append(entry)
            newly_admitted.append(entry)

        if newly_admitted:
            adm = timer.admission_time(
                np.array([e[3] for e in newly_admitted], dtype=np.int64),
                np.array([e[0].prompt_len for e in newly_admitted], dtype=np.int64),
            )
            now += adm
            busy += adm
            weighted_batch += len(active) * adm

        routing = drift.model_at(now)
        b = len(active)
        paths = routing.sample(b, rng).paths
        secondary = routing.sample(b, rng).paths if top2 else None
        home = np.array([e[3] for e in active], dtype=np.int64)
        ctx = np.array([e[0].prompt_len + e[4] for e in active], dtype=np.int64)

        dt = timer.step_time(paths, home, ctx, placement, secondary)
        if not dt > 0:
            raise ValueError(f"step_time must be positive seconds, got {dt}")
        now += dt
        busy += dt
        steps += 1
        weighted_batch += b * dt

        if replacer is not None:
            replacer.observe(paths)

        still_running: list[list] = []
        for entry in active:
            entry[1] -= 1
            entry[4] += 1
            if entry[1] == 0:
                completed.append(CompletedRequest(entry[0], entry[2], now))
            else:
                still_running.append(entry)
        active = still_running

        sampled = steps % sample_every_steps == 0
        if sampled:
            record_sample()

        if replacer is not None:
            result = replacer.maybe_replace(steps, now, placement)
            if result is not None:
                placement, event = result
                now += event.stall_s  # everyone in flight pays for the move
                stall_total += event.stall_s
                events.append(event)
                record_sample()  # post-migration point, new placement

    if not timeline or timeline[-1].step != steps:
        record_sample()

    makespan = now - first_arrival
    tokens = sum(c.request.generate_len for c in completed)
    serving = ServingResult(
        completed=tuple(completed),
        latency=LatencyStats.from_samples([c.latency_s for c in completed]),
        queue=LatencyStats.from_samples([c.queue_s for c in completed]),
        makespan_s=makespan,
        busy_s=busy,
        decode_steps=steps,
        generated_tokens=tokens,
        mean_batch_size=weighted_batch / busy if busy > 0 else 0.0,
    )
    return OnlineServingResult(
        serving=serving,
        events=tuple(events),
        kept_timeline=tuple(timeline),
        final_placement=placement,
        migration_stall_s=stall_total,
    )


simulate_online_serving = deprecated_entry_point(
    "repro.run() with an online Scenario (drift/replacement sections)"
)(_simulate_online_serving)


def _simulate_online_cluster_serving(
    model: ModelConfig,
    cluster: ClusterConfig,
    serving: ServingConfig,
    drift: DriftScenario | str = "abrupt",
    policy: ReplacementPolicy | None = None,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    profile_tokens: int = 2048,
    halflife_tokens: float | None = None,
    cost_model: CostModel | None = None,
) -> OnlineServingResult:
    """End-to-end online serving scenario from a :class:`ServingConfig`.

    Mirrors the deploy sequence of a real cluster: profile the *initial*
    regime offline (``profile_tokens`` sampled from the drift scenario at
    t=0), solve the placement once with ``placement_strategy``, then serve
    under the drifting workload — statically when ``policy`` is ``None``,
    or with online re-placement when a :class:`ReplacementPolicy` is given.

    ``drift`` is either a ready :class:`DriftScenario` or a kind name for
    :func:`make_drift_scenario` over the expected serving horizon
    (``num_requests / arrival_rate_rps``).

    Seed layout (all derived from ``serving.seed``, all disjoint): arrivals
    use ``seed``, the offline profile ``seed + 1``, the per-step routing
    draws ``seed + 2``, and the replacer's solver ``seed + 3`` — the live
    token stream must never replay the profile stream, or the placement
    would be scored on the data it was fit to.
    """
    if isinstance(drift, str):
        horizon = serving.num_requests / serving.arrival_rate_rps
        drift = make_drift_scenario(
            drift,
            model.num_experts,
            model.num_moe_layers,
            horizon_s=horizon,
            affinity=affinity,
            seed=serving.seed,
        )

    if mode.uses_affinity_placement:
        profile = drift.model_at(0.0).sample(
            profile_tokens, np.random.default_rng(serving.seed + 1)
        )
        placement = solve_placement(placement_strategy, profile, cluster)
    else:
        placement = vanilla_placement(
            model.num_moe_layers, model.num_experts, cluster.num_gpus
        )

    replacer = None
    if policy is not None:
        replacer = OnlineReplacer(
            model,
            cluster,
            policy=policy,
            halflife_tokens=halflife_tokens,
            dtype_bytes=2,
            rng=np.random.default_rng(serving.seed + 3),
        )

    requests = make_arrivals(serving, np.random.default_rng(serving.seed))
    timer = PlacementStepTimer(model, cluster, mode=mode, cost_model=cost_model)
    return _simulate_online_serving(
        requests,
        model,
        cluster,
        drift,
        placement,
        mode=mode,
        max_batch_requests=serving.max_batch_requests,
        replacer=replacer,
        timer=timer,
        sample_every_steps=4,
        rng=np.random.default_rng(serving.seed + 2),
    )


simulate_online_cluster_serving = deprecated_entry_point(
    "repro.run() with an online Scenario (drift/replacement sections)"
)(_simulate_online_cluster_serving)
