"""Request-level serving layer: arrivals, continuous batching, tail latency.

The batch engine answers "how long does one lockstep decode iteration
take"; this module answers the production question layered on top of it:
what latency distribution do *users* see when requests arrive continuously
— the "heavy traffic from millions of users" scenario family.

Three pieces compose:

* **Arrival processes** — :func:`poisson_arrivals` (memoryless open-loop
  traffic) and :func:`bursty_arrivals` (a two-state Markov-modulated
  Poisson process: flash-crowd bursts at ``burst_factor`` times the base
  rate, with the calm state slowed so the long-run mean rate is preserved).
* **Continuous batching** — :func:`simulate_serving` runs the iteration-
  level scheduler production MoE servers use: one global decode batch;
  waiting requests join at step boundaries whenever a slot is free, and
  finished requests leave immediately (no head-of-line blocking on the
  longest request in a static batch).
* **Step-time calibration** — :func:`engine_step_time` probes the
  vectorized engine (:func:`repro.engine.executor.simulate_inference`) at
  a handful of batch sizes and interpolates, so serving simulations price
  each decode step with the full placement-aware compute + collective cost
  model rather than a made-up constant.

:func:`simulate_cluster_serving` wires all three together from a
:class:`~repro.config.ServingConfig`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    InferenceConfig,
    ModelConfig,
    ServingConfig,
)
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.costs import CostModel
from repro.engine.executor import simulate_inference
from repro.engine.metrics import LatencyStats
from repro.engine.workload import DecodeWorkload, make_decode_workload
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "Request",
    "CompletedRequest",
    "ServingResult",
    "poisson_arrivals",
    "bursty_arrivals",
    "make_arrivals",
    "simulate_serving",
    "engine_step_time",
    "simulate_cluster_serving",
]


@dataclass(frozen=True)
class Request:
    """One user request entering the serving system."""

    req_id: int
    arrival_s: float
    prompt_len: int
    generate_len: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.prompt_len <= 0 or self.generate_len <= 0:
            raise ValueError("prompt_len and generate_len must be positive")


@dataclass(frozen=True)
class CompletedRequest:
    """A served request with its scheduling timeline."""

    request: Request
    admitted_s: float
    finished_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to last generated token."""
        return self.finished_s - self.request.arrival_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting for a batch slot."""
        return self.admitted_s - self.request.arrival_s


@dataclass(frozen=True)
class ServingResult:
    """Outcome of one continuous-batching serving simulation."""

    completed: tuple[CompletedRequest, ...]
    latency: LatencyStats
    queue: LatencyStats
    makespan_s: float
    busy_s: float
    decode_steps: int
    generated_tokens: int
    mean_batch_size: float

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0:
            return float("inf")
        return len(self.completed) / self.makespan_s

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.makespan_s <= 0:
            return float("inf")
        return self.generated_tokens / self.makespan_s

    @property
    def utilization(self) -> float:
        """Fraction of the serving span the batch engine was stepping."""
        if self.makespan_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.makespan_s)


# -- arrival processes --------------------------------------------------------


def poisson_arrivals(
    cfg: ServingConfig, rng: np.random.Generator | None = None
) -> list[Request]:
    """Memoryless arrivals: exponential inter-arrival gaps at the mean rate."""
    rng = rng or np.random.default_rng(cfg.seed)
    gaps = rng.exponential(1.0 / cfg.arrival_rate_rps, size=cfg.num_requests)
    times = np.cumsum(gaps)
    return [
        Request(i, float(times[i]), cfg.prompt_len, cfg.generate_len)
        for i in range(cfg.num_requests)
    ]


def bursty_arrivals(
    cfg: ServingConfig, rng: np.random.Generator | None = None
) -> list[Request]:
    """Markov-modulated Poisson arrivals with rate-preserving bursts.

    A two-state chain alternates between a *burst* state (instantaneous
    rate ``arrival_rate_rps * burst_factor``) and a *calm* state whose rate
    is solved so the long-run mean inter-arrival gap equals
    ``1 / arrival_rate_rps``; the stationary probability of the burst state
    is ``burst_fraction`` and ``burst_persistence`` sets dwell lengths.
    """
    rng = rng or np.random.default_rng(cfg.seed)
    p, bf = cfg.burst_fraction, cfg.burst_factor
    burst_rate = cfg.arrival_rate_rps * bf
    # solve the calm rate so E[gap] = p/burst_rate + (1-p)/calm_rate = 1/rate;
    # denom > 0 for every ServingConfig-valid shape (p < 1, burst_factor >= 1)
    denom = 1.0 / cfg.arrival_rate_rps - p / burst_rate
    calm_rate = (1.0 - p) / denom
    # stationary pi_burst = p given stay-probabilities (s_b, s_c);
    # feasibility (s_c >= 0) is guaranteed by ServingConfig validation
    s_b = cfg.burst_persistence
    s_c = 1.0 - p * (1.0 - s_b) / (1.0 - p) if p > 0 else 1.0

    requests = []
    now = 0.0
    in_burst = bool(rng.random() < p)
    for i in range(cfg.num_requests):
        rate = burst_rate if in_burst else calm_rate
        now += float(rng.exponential(1.0 / rate))
        requests.append(Request(i, now, cfg.prompt_len, cfg.generate_len))
        stay = s_b if in_burst else s_c
        if rng.random() >= stay:
            in_burst = not in_burst
    return requests


def make_arrivals(
    cfg: ServingConfig, rng: np.random.Generator | None = None
) -> list[Request]:
    """Build the arrival sequence ``cfg.arrival`` names."""
    if cfg.arrival == "poisson":
        return poisson_arrivals(cfg, rng)
    return bursty_arrivals(cfg, rng)


# -- continuous batching ------------------------------------------------------


def simulate_serving(
    requests: Iterable[Request],
    step_time: Callable[[int], float],
    max_batch_requests: int = 64,
) -> ServingResult:
    """Serve ``requests`` with iteration-level continuous batching.

    The scheduler is the one production MoE servers run: a single global
    decode batch advances one token per step for every active request;
    at each step boundary, waiting requests are admitted FCFS while slots
    are free (``max_batch_requests`` cap) and finished requests leave
    immediately.  ``step_time(batch_size)`` prices one decode iteration for
    the given number of active requests — use :func:`engine_step_time` to
    derive it from the vectorized engine.

    Returns the full :class:`ServingResult`, including p50/p95/p99 latency
    and queueing statistics.
    """
    if max_batch_requests <= 0:
        raise ValueError("max_batch_requests must be positive")
    pending = deque(sorted(requests, key=lambda q: (q.arrival_s, q.req_id)))
    if not pending:
        empty = LatencyStats.from_samples([])
        return ServingResult((), empty, empty, 0.0, 0.0, 0, 0, 0.0)

    first_arrival = pending[0].arrival_s
    now = first_arrival
    busy = 0.0
    steps = 0
    weighted_batch = 0.0
    active: list[list] = []  # [request, tokens_remaining, admitted_s]
    completed: list[CompletedRequest] = []

    while pending or active:
        if not active and pending and pending[0].arrival_s > now:
            now = pending[0].arrival_s  # idle: jump to the next arrival
        while (
            pending
            and pending[0].arrival_s <= now
            and len(active) < max_batch_requests
        ):
            req = pending.popleft()
            active.append([req, req.generate_len, now])

        dt = float(step_time(len(active)))
        if not dt > 0:
            raise ValueError(f"step_time must return positive seconds, got {dt}")
        now += dt
        busy += dt
        steps += 1
        weighted_batch += len(active) * dt

        still_running: list[list] = []
        for entry in active:
            entry[1] -= 1
            if entry[1] == 0:
                completed.append(CompletedRequest(entry[0], entry[2], now))
            else:
                still_running.append(entry)
        active = still_running

    makespan = now - first_arrival
    tokens = sum(c.request.generate_len for c in completed)
    return ServingResult(
        completed=tuple(completed),
        latency=LatencyStats.from_samples([c.latency_s for c in completed]),
        queue=LatencyStats.from_samples([c.queue_s for c in completed]),
        makespan_s=makespan,
        busy_s=busy,
        decode_steps=steps,
        generated_tokens=tokens,
        mean_batch_size=weighted_batch / busy if busy > 0 else 0.0,
    )


# -- engine-calibrated step costs ---------------------------------------------


def engine_step_time(
    model: ModelConfig,
    cluster: ClusterConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    prompt_len: int = 64,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    probe_requests_per_gpu: Sequence[int] = (1, 2, 4, 8),
    calibration_generate_len: int = 4,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> Callable[[int], float]:
    """Calibrate ``step_time(batch_size)`` against the vectorized engine.

    Runs two short engine simulations per probe batch size (the batched
    executor makes each probe cheap): one full-length run and one on its
    exact iteration-prefix, and takes the *marginal* seconds per decode
    iteration — the slope between the two — so one-time costs (the
    coherent modes' before-inference prompt AllGather) and the shared
    prefix cancel exactly instead of being amortised into every step.
    Returns a piecewise-linear interpolant over total batch size.
    Probes share one routing model and one placement, so the curve isolates
    the batch-size effect.  Batch sizes outside the probed range clamp to
    the nearest probe — pass probes covering your admission cap.
    """
    probes = sorted(set(int(b) for b in probe_requests_per_gpu))
    if not probes or probes[0] < 1:
        raise ValueError("probe_requests_per_gpu must be positive integers")

    routing = MarkovRoutingModel.with_affinity(
        model.num_experts,
        model.num_moe_layers,
        affinity,
        rng=np.random.default_rng(seed),
    )
    if mode.uses_affinity_placement:
        profile = routing.sample(2048, np.random.default_rng(seed + 1))
        placement = solve_placement(placement_strategy, profile, cluster)
    else:
        placement = vanilla_placement(
            model.num_moe_layers, model.num_experts, cluster.num_gpus
        )

    batch_sizes = []
    step_seconds = []
    for b in probes:
        infer = InferenceConfig(
            requests_per_gpu=b,
            prompt_len=prompt_len,
            generate_len=2 * calibration_generate_len,
            mode=mode,
            seed=seed,
        )
        # disjoint seed offset: must not replay the placement-profile stream
        # (seed + 1), or the smallest probe would be scored on the very
        # token paths the affinity placement was fit to
        hi_workload = make_decode_workload(
            model,
            cluster,
            infer,
            routing=routing,
            rng=np.random.default_rng(seed + 1000 + b),
        )
        # the lo run is the exact iteration-prefix of the hi run (secondary
        # paths included), so the hi - lo difference isolates the marginal
        # cost of the extra iterations with no workload re-draw noise
        lo_workload = DecodeWorkload(
            hi_workload.paths[:calibration_generate_len],
            hi_workload.home_gpu,
            hi_workload.num_experts,
            hi_workload.prompt_len,
            None
            if hi_workload.secondary_paths is None
            else hi_workload.secondary_paths[:calibration_generate_len],
        )
        hi = simulate_inference(
            model, cluster, infer, placement, hi_workload, cost_model
        ).total_time_s
        lo = simulate_inference(
            model, cluster, infer, placement, lo_workload, cost_model
        ).total_time_s
        batch_sizes.append(b * cluster.num_gpus)
        step_seconds.append((hi - lo) / calibration_generate_len)

    xs = np.asarray(batch_sizes, dtype=np.float64)
    ys = np.asarray(step_seconds, dtype=np.float64)

    def step_time(batch_size: int) -> float:
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        return float(np.interp(float(batch_size), xs, ys))

    return step_time


def simulate_cluster_serving(
    model: ModelConfig,
    cluster: ClusterConfig,
    serving: ServingConfig,
    mode: ExecutionMode = ExecutionMode.EXFLOW,
    affinity: float = 0.85,
    placement_strategy: str = "staged",
    cost_model: CostModel | None = None,
) -> ServingResult:
    """End-to-end serving scenario from a :class:`~repro.config.ServingConfig`.

    Calibrates the step-time curve with probes covering the admission cap,
    draws the configured arrival sequence, and runs continuous batching.
    """
    g = cluster.num_gpus
    cap_per_gpu = max(1, -(-serving.max_batch_requests // g))  # ceil div
    probes = sorted({1, *(p for p in (2, 4, 8) if p < cap_per_gpu), cap_per_gpu})
    step = engine_step_time(
        model,
        cluster,
        mode=mode,
        prompt_len=serving.prompt_len,
        affinity=affinity,
        placement_strategy=placement_strategy,
        probe_requests_per_gpu=probes,
        cost_model=cost_model,
        seed=serving.seed,
    )
    rng = np.random.default_rng(serving.seed)
    requests = make_arrivals(serving, rng)
    return simulate_serving(
        requests, step, max_batch_requests=serving.max_batch_requests
    )
