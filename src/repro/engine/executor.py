"""Vectorized batched executor for distributed MoE inference.

Simulates lockstep SPMD execution: each generation iteration walks the MoE
layer stack; per layer, every GPU runs attention + gating on its resident
tokens, the group performs the dispatch Alltoall implied by the routing
decisions and the expert placement, expert FFNs run, and (vanilla mode
only) a combine Alltoall returns tokens home.  Times are per-op maxima over
GPUs (SPMD barrier semantics) summed across layers and iterations.

Token movement is the whole story:

* **vanilla** — tokens live at their home GPU; every layer is
  home -> expert-GPU -> home (two Alltoalls).
* **context-coherent** — tokens *stay where routing sends them*; a layer
  moves a token only if its next expert lives elsewhere (one Alltoall), and
  a per-iteration AllGather keeps contexts coherent.
* **exflow** — identical engine path to context-coherent; the placement
  (affinity-optimised) is what concentrates traffic on the diagonal.

Unlike the step-by-step oracle in :mod:`repro.engine.reference`, this
engine never walks (iteration, layer) pairs in Python to *compute* costs.
The key observation is that token locations carry no sequential state: a
token's location when layer ``j`` dispatches is its home GPU (vanilla) or
the GPU of its layer ``j-1`` expert (coherent modes), both of which are
pure functions of the placement and the routing paths.  So the engine

1. precomputes the full (iterations, requests, layers) GPU-path tensor in
   one fancy-index pass over ``placement.gpu_of``,
2. derives every step's resident/FFN token counts with one batched
   ``bincount`` over the flattened (step, gpu) key space,
3. builds all dispatch/combine (G, G) traffic matrices as one stacked
   (T, G, G) tensor per traffic component (again one ``bincount``), and
4. prices the whole stack with the batched collective costing in
   :mod:`repro.cluster.collectives`, whose round loops run once across the
   batch instead of once per step.

Only trivially cheap scalar accumulation (to preserve the oracle's exact
float-addition order) remains in Python.  Traffic stacks are chunked along
the step axis so peak memory stays bounded at a few tens of MB regardless
of generation length.  The result is bit-identical to the reference loop
engine — the equivalence suite asserts this — at one-to-two orders of
magnitude lower wall time.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.collectives import allgather_cost, alltoall_matrix
from repro.cluster.topology import Topology
from repro.cluster.traffic import TrafficLedger
from repro.config import ClusterConfig, InferenceConfig, ModelConfig
from repro.core.placement.base import Placement
from repro.engine.costs import CostModel
from repro.engine.metrics import OpBreakdown, RunResult
from repro.engine.workload import DecodeWorkload

__all__ = ["simulate_inference", "validate_inference_inputs"]

# Traffic stacks are built in blocks of at most this many float64 elements
# (~32 MiB) so huge runs (long generation on many GPUs) never materialise
# an unbounded (T, G, G) tensor.
_MAX_STACK_ELEMENTS = 1 << 22


def _traffic_from_moves(
    src: np.ndarray, dst: np.ndarray, num_gpus: int, bytes_per_token: float
) -> np.ndarray:
    """(G, G) byte matrix from per-token source/destination GPU ranks."""
    flat = src * num_gpus + dst
    counts = np.bincount(flat, minlength=num_gpus * num_gpus).reshape(num_gpus, num_gpus)
    traffic = counts.astype(np.float64) * bytes_per_token
    np.fill_diagonal(traffic, 0.0)  # same-GPU moves are free memcpys
    return traffic


def validate_inference_inputs(
    model: ModelConfig,
    cluster: ClusterConfig,
    placement: Placement,
    workload: DecodeWorkload,
) -> None:
    """Raise ``ValueError`` with a precise message on any inconsistent input.

    Checks every cross-object invariant the engine relies on: shape
    agreement between model/placement/workload, home-GPU ranks inside
    ``[0, num_gpus)`` (including negatives), and expert ids in both the
    primary and secondary path tensors inside ``[0, num_experts)``.  The
    expert-id checks are re-done here even though :class:`DecodeWorkload`
    validates at construction, because numpy arrays are mutable in place
    and an out-of-range id would otherwise silently index the wrong row of
    the placement table.
    """
    if placement.num_experts != model.num_experts:
        raise ValueError(
            f"placement has {placement.num_experts} experts per layer, "
            f"model has {model.num_experts}"
        )
    if placement.num_layers != model.num_moe_layers:
        raise ValueError(
            f"placement has {placement.num_layers} layers, "
            f"model has {model.num_moe_layers} MoE layers"
        )
    if placement.num_gpus != cluster.num_gpus:
        raise ValueError(
            f"placement built for {placement.num_gpus} GPUs, "
            f"cluster has {cluster.num_gpus}"
        )
    if workload.num_layers != model.num_moe_layers:
        raise ValueError(
            f"workload has {workload.num_layers} layers, "
            f"model has {model.num_moe_layers} MoE layers"
        )
    if workload.num_experts != model.num_experts:
        raise ValueError(
            f"workload routed over {workload.num_experts} experts, "
            f"model has {model.num_experts}"
        )

    home = workload.home_gpu
    if home.size:
        lo, hi = int(home.min()), int(home.max())
        if lo < 0:
            raise ValueError(f"workload home GPU ranks must be >= 0, got {lo}")
        if hi >= cluster.num_gpus:
            raise ValueError(
                f"workload home GPU {hi} out of range for a "
                f"{cluster.num_gpus}-GPU cluster"
            )

    for name, paths in (
        ("paths", workload.paths),
        ("secondary_paths", workload.secondary_paths),
    ):
        if paths is None or not paths.size:
            continue
        lo, hi = int(paths.min()), int(paths.max())
        if lo < 0 or hi >= model.num_experts:
            raise ValueError(
                f"workload {name} contains expert id "
                f"{lo if lo < 0 else hi} outside [0, {model.num_experts})"
            )


def simulate_inference(
    model: ModelConfig,
    cluster: ClusterConfig,
    infer: InferenceConfig,
    placement: Placement,
    workload: DecodeWorkload,
    cost_model: CostModel | None = None,
) -> RunResult:
    """Simulate one serving run; returns the full :class:`RunResult`.

    Parameters
    ----------
    model / cluster / infer:
        Architecture, hardware and workload configuration.  ``infer.mode``
        selects the execution strategy.
    placement:
        Expert-to-GPU mapping (use the vanilla placement for baseline runs;
        the engine itself is placement-agnostic).
    workload:
        Per-iteration routing decisions (see
        :func:`repro.engine.workload.make_decode_workload`).
    cost_model:
        Compute pricing; defaults to :class:`CostModel` on the cluster's
        GPU throughput.

    The returned values are bit-identical to
    :func:`repro.engine.reference.simulate_inference_reference` on the same
    inputs; this implementation is the batched fast path.
    """
    validate_inference_inputs(model, cluster, placement, workload)

    cost = cost_model or CostModel(model, gpu_flops=cluster.gpu_flops)
    topo = Topology(cluster)
    ledger = TrafficLedger()
    mode = infer.mode
    g = cluster.num_gpus
    token_bytes = cost.token_bytes(infer.dtype_bytes)
    top2 = model.gating.k == 2 and workload.secondary_paths is not None
    coherent = mode.uses_context_coherence

    home = workload.home_gpu
    r = workload.num_requests
    layers = model.num_moe_layers
    iters = workload.iterations
    steps = iters * layers

    # ---- phase 1: per-step (T, R) GPU-path tensors --------------------------
    # gpu_path[it, rq, j] = GPU holding request rq's layer-j expert at iter it
    layer_idx = np.arange(layers)
    gpu_path = placement.gpu_of[layer_idx[None, None, :], workload.paths]  # (I, R, L)
    if top2:
        sec_path = placement.gpu_of[layer_idx[None, None, :], workload.secondary_paths]

    # token location when each layer's dispatch begins — a pure function of
    # the previous layer's expert GPU (coherent) or the home GPU (vanilla)
    if coherent:
        loc = np.empty((iters, r, layers), dtype=np.int64)
        loc[:, :, :1] = home[None, :, None]
        loc[:, :, 1:] = gpu_path[:, :, :-1]
    else:
        loc = np.broadcast_to(home[None, :, None], (iters, r, layers))

    def step_major(a: np.ndarray) -> np.ndarray:
        """(I, R, L) -> (T, R) with step index t = it * L + j."""
        return np.ascontiguousarray(a.transpose(0, 2, 1)).reshape(steps, r)

    loc_s = step_major(loc)
    exp_s = step_major(gpu_path)
    sec_s = step_major(sec_path) if top2 else None

    # ---- phase 2: batched token counts --------------------------------------
    def batched_counts(ranks_s: np.ndarray) -> np.ndarray:
        """Per-step occupancy: (T, R) rank tensor -> (T, G) token counts."""
        keys = np.arange(steps, dtype=np.int64)[:, None] * g + ranks_s
        return np.bincount(keys.ravel(), minlength=steps * g).reshape(steps, g)

    resident_counts = batched_counts(loc_s)
    ffn_counts = batched_counts(exp_s)
    if top2:
        ffn_counts = ffn_counts + batched_counts(sec_s)
    resident_max = resident_counts.max(axis=1) if steps else np.zeros(0, dtype=np.int64)
    ffn_max = ffn_counts.max(axis=1) if steps else np.zeros(0, dtype=np.int64)

    # ---- phase 3: per-step compute times (lockstep maxima) ------------------
    # identical elementwise arithmetic to CostModel.{attention,gating,ffn}_time
    ctx_flops = np.array(
        [cost.attention_flops(workload.prompt_len + it) for it in range(iters)]
    )
    att_steps = (
        resident_max.reshape(iters, layers)
        * ctx_flops[:, None]
        / (cost.gpu_flops * cost.attention_efficiency)
    ).ravel()
    gat_steps = resident_max * cost.gating_flops() / (cost.gpu_flops * cost.gating_efficiency)
    ffn_steps = ffn_max * cost.ffn_flops() / (cost.gpu_flops * cost.ffn_efficiency)

    # ---- phase 4: locality bookkeeping --------------------------------------
    node_of = topo.node_of_gpu
    moved = exp_s != loc_s
    crossed_node = node_of[exp_s] != node_of[loc_s]
    same_gpu_transitions = int((~moved).sum())
    same_node_transitions = int((~crossed_node).sum())
    total_transitions = steps * r

    # ---- phase 5: stacked traffic matrices + batched collective costing -----
    attention_s = gating_s = ffn_s = alltoall_s = allgather_s = 0.0

    if coherent:
        prompt_payload = np.bincount(home, minlength=g).astype(np.float64)
        prompt_payload *= infer.prompt_len * token_bytes
        prompt_res = allgather_cost(topo, prompt_payload)
        step_payload = np.bincount(home, minlength=g).astype(np.float64) * token_bytes
        step_res = allgather_cost(topo, step_payload)
        ledger.record(prompt_res, "allgather")
        allgather_s += prompt_res.time_s
    else:
        home_s = np.broadcast_to(home[None, :], (steps, r))

    def traffic_stacks(sl: slice) -> tuple[np.ndarray, np.ndarray | None]:
        """Dispatch (and vanilla combine) traffic for a block of steps."""
        n = loc_s[sl].shape[0]
        base = np.arange(n, dtype=np.int64)[:, None] * (g * g)
        diag = np.arange(g)

        def stack(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
            keys = (base + src * g + dst).ravel()
            counts = np.bincount(keys, minlength=n * g * g).reshape(n, g, g)
            out = counts.astype(np.float64) * token_bytes
            out[:, diag, diag] = 0.0  # same-GPU moves are free memcpys
            return out

        dispatch = stack(loc_s[sl], exp_s[sl])
        if top2:
            # secondary expert: payload out and result back to primary
            dispatch += stack(loc_s[sl], sec_s[sl])
            dispatch += stack(sec_s[sl], exp_s[sl])
        combine = None
        if not coherent:
            # combine Alltoall: expert GPU -> home.  Under top-2 the
            # secondary expert's output was already returned to the primary
            # expert's GPU during dispatch (Fig 4: combination happens at
            # the primary), so exactly one combined token travels home.
            combine = stack(exp_s[sl], home_s[sl])
        return dispatch, combine

    block = max(1, _MAX_STACK_ELEMENTS // (g * g))
    for t0 in range(0, steps, block):
        sl = slice(t0, min(t0 + block, steps))
        dispatch, combine = traffic_stacks(sl)
        dispatch_res = alltoall_matrix(topo, dispatch)
        combine_res = alltoall_matrix(topo, combine) if combine is not None else None

        # scalar accumulation in the oracle's exact order
        for i, t in enumerate(range(sl.start, sl.stop)):
            attention_s += att_steps[t]
            gating_s += gat_steps[t]
            res = dispatch_res[i]
            ledger.record(res, "alltoall")
            alltoall_s += res.time_s
            ffn_s += ffn_steps[t]
            if combine_res is not None:
                res = combine_res[i]
                ledger.record(res, "alltoall")
                alltoall_s += res.time_s
            if coherent and (t + 1) % layers == 0:
                # end of iteration: coherent modes AllGather the new tokens
                ledger.record(step_res, "allgather")
                allgather_s += step_res.time_s

    if coherent and layers == 0:
        # degenerate MoE-free model: the per-iteration context AllGather
        # still happens even though no layer steps exist
        for _ in range(iters):
            ledger.record(step_res, "allgather")
            allgather_s += step_res.time_s

    breakdown = OpBreakdown(
        attention_s=attention_s,
        gating_s=gating_s,
        expert_ffn_s=ffn_s,
        alltoall_s=alltoall_s,
        allgather_s=allgather_s,
    )
    return RunResult(
        mode=mode,
        breakdown=breakdown,
        ledger=ledger,
        generated_tokens=iters * r,
        iterations=iters,
        gpu_stay_fraction=(
            same_gpu_transitions / total_transitions if total_transitions else 1.0
        ),
        node_stay_fraction=(
            same_node_transitions / total_transitions if total_transitions else 1.0
        ),
    )
