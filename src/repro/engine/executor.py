"""Discrete-event executor for distributed MoE inference.

Simulates lockstep SPMD execution: each generation iteration walks the MoE
layer stack; per layer, every GPU runs attention + gating on its resident
tokens, the group performs the dispatch Alltoall implied by the routing
decisions and the expert placement, expert FFNs run, and (vanilla mode
only) a combine Alltoall returns tokens home.  Times are per-op maxima over
GPUs (SPMD barrier semantics) summed across layers and iterations.

Token movement is the whole story:

* **vanilla** — tokens live at their home GPU; every layer is
  home -> expert-GPU -> home (two Alltoalls).
* **context-coherent** — tokens *stay where routing sends them*; a layer
  moves a token only if its next expert lives elsewhere (one Alltoall), and
  a per-iteration AllGather keeps contexts coherent.
* **exflow** — identical engine path to context-coherent; the placement
  (affinity-optimised) is what concentrates traffic on the diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.collectives import allgather_cost, alltoall_matrix
from repro.cluster.topology import Topology
from repro.cluster.traffic import TrafficLedger
from repro.config import ClusterConfig, ExecutionMode, InferenceConfig, ModelConfig
from repro.core.placement.base import Placement
from repro.engine.costs import CostModel
from repro.engine.metrics import OpBreakdown, RunResult
from repro.engine.workload import DecodeWorkload

__all__ = ["simulate_inference"]


def _traffic_from_moves(
    src: np.ndarray, dst: np.ndarray, num_gpus: int, bytes_per_token: float
) -> np.ndarray:
    """(G, G) byte matrix from per-token source/destination GPU ranks."""
    flat = src * num_gpus + dst
    counts = np.bincount(flat, minlength=num_gpus * num_gpus).reshape(num_gpus, num_gpus)
    traffic = counts.astype(np.float64) * bytes_per_token
    np.fill_diagonal(traffic, 0.0)  # same-GPU moves are free memcpys
    return traffic


def simulate_inference(
    model: ModelConfig,
    cluster: ClusterConfig,
    infer: InferenceConfig,
    placement: Placement,
    workload: DecodeWorkload,
    cost_model: CostModel | None = None,
) -> RunResult:
    """Simulate one serving run; returns the full :class:`RunResult`.

    Parameters
    ----------
    model / cluster / infer:
        Architecture, hardware and workload configuration.  ``infer.mode``
        selects the execution strategy.
    placement:
        Expert-to-GPU mapping (use the vanilla placement for baseline runs;
        the engine itself is placement-agnostic).
    workload:
        Per-iteration routing decisions (see
        :func:`repro.engine.workload.make_decode_workload`).
    cost_model:
        Compute pricing; defaults to :class:`CostModel` on the cluster's
        GPU throughput.
    """
    if placement.num_experts != model.num_experts:
        raise ValueError("placement expert count differs from model")
    if placement.num_layers != model.num_moe_layers:
        raise ValueError("placement layer count differs from model")
    if placement.num_gpus != cluster.num_gpus:
        raise ValueError("placement GPU count differs from cluster")
    if workload.num_layers != model.num_moe_layers:
        raise ValueError("workload layer count differs from model")
    if workload.num_experts != model.num_experts:
        raise ValueError("workload expert count differs from model")
    if workload.home_gpu.size and workload.home_gpu.max() >= cluster.num_gpus:
        raise ValueError("workload home GPU out of range for cluster")

    cost = cost_model or CostModel(model, gpu_flops=cluster.gpu_flops)
    topo = Topology(cluster)
    ledger = TrafficLedger()
    mode = infer.mode
    g = cluster.num_gpus
    token_bytes = cost.token_bytes(infer.dtype_bytes)
    top2 = model.gating.k == 2 and workload.secondary_paths is not None

    attention_s = gating_s = ffn_s = alltoall_s = allgather_s = 0.0
    same_gpu_transitions = 0
    same_node_transitions = 0
    total_transitions = 0
    node_of = topo.node_of_gpu

    home = workload.home_gpu
    r = workload.num_requests
    layers = model.num_moe_layers

    def compute_max(counts: np.ndarray, fn) -> float:
        """Lockstep time: the slowest GPU's share of a compute op."""
        return float(fn(int(counts.max()))) if counts.size else 0.0

    # initial context replication (before-inference AllGather, Fig 4)
    if mode.uses_context_coherence:
        prompt_payload = np.bincount(home, minlength=g).astype(np.float64)
        prompt_payload *= infer.prompt_len * token_bytes
        res = allgather_cost(topo, prompt_payload)
        ledger.record(res, "allgather")
        allgather_s += res.time_s

    for it in range(workload.iterations):
        ctx_len = workload.prompt_len + it  # context grows one token/iter
        paths = workload.paths[it]  # (R, L)
        loc = home.copy()  # every iteration's token starts at its home GPU

        for j in range(layers):
            expert_gpu = placement.gpu_of[j][paths[:, j]]  # (R,)

            # attention + gating happen where tokens currently reside
            resident = np.bincount(loc, minlength=g)
            attention_s += compute_max(resident, lambda n: cost.attention_time(n, ctx_len))
            gating_s += compute_max(resident, cost.gating_time)

            # dispatch Alltoall: current location -> expert's GPU
            traffic = _traffic_from_moves(loc, expert_gpu, g, token_bytes)
            if top2:
                sec_gpu = placement.gpu_of[j][workload.secondary_paths[it][:, j]]
                # secondary expert: payload out and result back to primary
                traffic += _traffic_from_moves(loc, sec_gpu, g, token_bytes)
                traffic += _traffic_from_moves(sec_gpu, expert_gpu, g, token_bytes)
            res = alltoall_matrix(topo, traffic)
            ledger.record(res, "alltoall")
            alltoall_s += res.time_s

            # locality bookkeeping (transition = a potential token move)
            moved = expert_gpu != loc
            crossed_node = node_of[expert_gpu] != node_of[loc]
            same_gpu_transitions += int((~moved).sum())
            same_node_transitions += int((~crossed_node).sum())
            total_transitions += r

            # expert FFN on the owning GPUs
            ffn_load = np.bincount(expert_gpu, minlength=g)
            if top2:
                ffn_load = ffn_load + np.bincount(sec_gpu, minlength=g)
            ffn_s += compute_max(ffn_load, cost.ffn_time)

            if mode.uses_context_coherence:
                loc = expert_gpu  # token stays with its expert's GPU
            else:
                # combine Alltoall: expert GPU -> home
                back = _traffic_from_moves(expert_gpu, home, g, token_bytes)
                if top2:
                    back += _traffic_from_moves(expert_gpu, home, g, token_bytes)
                res = alltoall_matrix(topo, back)
                ledger.record(res, "alltoall")
                alltoall_s += res.time_s
                loc = home.copy()

        # end of iteration: coherent modes AllGather the new tokens
        if mode.uses_context_coherence:
            step_payload = np.bincount(home, minlength=g).astype(np.float64) * token_bytes
            res = allgather_cost(topo, step_payload)
            ledger.record(res, "allgather")
            allgather_s += res.time_s

    breakdown = OpBreakdown(
        attention_s=attention_s,
        gating_s=gating_s,
        expert_ffn_s=ffn_s,
        alltoall_s=alltoall_s,
        allgather_s=allgather_s,
    )
    return RunResult(
        mode=mode,
        breakdown=breakdown,
        ledger=ledger,
        generated_tokens=workload.iterations * r,
        iterations=workload.iterations,
        gpu_stay_fraction=(
            same_gpu_transitions / total_transitions if total_transitions else 1.0
        ),
        node_stay_fraction=(
            same_node_transitions / total_transitions if total_transitions else 1.0
        ),
    )
