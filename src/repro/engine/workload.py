"""Decode workload construction for the engine.

A :class:`DecodeWorkload` gives each generation iteration an (R, L) expert
path matrix (R = total requests, L = MoE layers) plus each request's home
GPU.  Workloads can be synthesised from a Markov routing model (any size,
fast) or sliced from a real model generation trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, InferenceConfig, ModelConfig
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel

__all__ = ["DecodeWorkload", "make_decode_workload", "workload_from_trace"]


@dataclass(frozen=True)
class DecodeWorkload:
    """Routing decisions of every request across all generation iterations.

    Attributes
    ----------
    paths:
        (iterations, R, L) expert ids — iteration-major.
    home_gpu:
        (R,) data-parallel home of each request.
    num_experts:
        Experts per layer.
    prompt_len:
        Context length at the first decode iteration (attention cost grows
        from here).
    """

    paths: np.ndarray
    home_gpu: np.ndarray
    num_experts: int
    prompt_len: int
    secondary_paths: np.ndarray | None = None

    def __post_init__(self) -> None:
        paths = np.asarray(self.paths, dtype=np.int64)
        home = np.asarray(self.home_gpu, dtype=np.int64)
        if paths.ndim != 3:
            raise ValueError(f"paths must be (iters, requests, layers), got {paths.shape}")
        if home.shape != (paths.shape[1],):
            raise ValueError("home_gpu must have one entry per request")
        if home.size and home.min() < 0:
            raise ValueError(f"home_gpu ranks must be >= 0, got {int(home.min())}")
        if paths.size and (paths.min() < 0 or paths.max() >= self.num_experts):
            raise ValueError("expert id out of range")
        if self.prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        object.__setattr__(self, "paths", paths)
        object.__setattr__(self, "home_gpu", home)
        if self.secondary_paths is not None:
            sec = np.asarray(self.secondary_paths, dtype=np.int64)
            if sec.shape != paths.shape:
                raise ValueError("secondary_paths must match paths shape")
            if sec.size and (sec.min() < 0 or sec.max() >= self.num_experts):
                raise ValueError("secondary expert id out of range")
            object.__setattr__(self, "secondary_paths", sec)

    @property
    def iterations(self) -> int:
        return self.paths.shape[0]

    @property
    def num_requests(self) -> int:
        return self.paths.shape[1]

    @property
    def num_layers(self) -> int:
        return self.paths.shape[2]

    def flat_trace(self) -> RoutingTrace:
        """All iterations' paths stacked into one trace (for locality eval)."""
        flat = self.paths.reshape(-1, self.num_layers)
        return RoutingTrace(flat, self.num_experts, source="workload")


def make_decode_workload(
    model: ModelConfig,
    cluster: ClusterConfig,
    infer: InferenceConfig,
    routing: MarkovRoutingModel | None = None,
    affinity: float = 0.85,
    rng: np.random.Generator | None = None,
) -> DecodeWorkload:
    """Synthesise a decode workload with realistic affinity structure.

    When ``routing`` is omitted, a Markov model with the given ``affinity``
    strength is built over the model's MoE layer count — 0.85 matches the
    concentration the paper's heatmaps show for trained checkpoints.  With
    top-2 gating, secondary experts are drawn from the same transition rows
    (so the second choice shares the primary's affinity structure).
    """
    rng = rng or np.random.default_rng(infer.seed)
    if routing is None:
        routing = MarkovRoutingModel.with_affinity(
            model.num_experts, model.num_moe_layers, affinity, rng=rng
        )
    if routing.num_experts != model.num_experts:
        raise ValueError("routing model expert count differs from model config")
    if routing.num_layers != model.num_moe_layers:
        raise ValueError("routing model layer count differs from model config")

    r = infer.total_requests(cluster.num_gpus)
    iters = infer.generate_len
    trace = routing.sample(r * iters, rng)
    paths = trace.paths.reshape(iters, r, model.num_moe_layers)
    home = np.repeat(np.arange(cluster.num_gpus), infer.requests_per_gpu)

    secondary = None
    if model.gating.k == 2:
        alt = routing.sample(r * iters, rng).paths
        secondary = alt.reshape(iters, r, model.num_moe_layers)
    return DecodeWorkload(paths, home, model.num_experts, infer.prompt_len, secondary)


def workload_from_trace(
    trace: RoutingTrace,
    cluster: ClusterConfig,
    infer: InferenceConfig,
) -> DecodeWorkload:
    """Slice a recorded trace into per-iteration decode batches.

    Rows are consumed iteration-major; the trace must contain at least
    ``iterations * total_requests`` rows.
    """
    r = infer.total_requests(cluster.num_gpus)
    need = r * infer.generate_len
    if trace.num_tokens < need:
        raise ValueError(
            f"trace has {trace.num_tokens} tokens; workload needs {need} "
            f"({infer.generate_len} iterations x {r} requests)"
        )
    paths = trace.paths[:need].reshape(infer.generate_len, r, trace.num_layers)
    home = np.repeat(np.arange(cluster.num_gpus), infer.requests_per_gpu)
    return DecodeWorkload(paths, home, trace.num_experts, infer.prompt_len)
