"""Decode workload construction for the engine.

A :class:`DecodeWorkload` gives each generation iteration an (R, L) expert
path matrix (R = total requests, L = MoE layers) plus each request's home
GPU.  Workloads can be synthesised from a Markov routing model (any size,
fast) or sliced from a real model generation trace.

The drift scenario family (:class:`DriftScenario` and friends) extends the
static Markov generators to *time-varying* routing: the online serving loop
asks ``scenario.model_at(t)`` for the routing model governing the decode
step at simulation time ``t``, which is how workload drift — the thing
online re-placement exists to absorb — enters the system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import ClusterConfig, InferenceConfig, ModelConfig
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel

__all__ = [
    "DecodeWorkload",
    "make_decode_workload",
    "workload_from_trace",
    "DriftScenario",
    "StaticRouting",
    "GradualDrift",
    "AbruptDrift",
    "DiurnalDrift",
    "DRIFT_KINDS",
    "make_drift_scenario",
]


@dataclass(frozen=True)
class DecodeWorkload:
    """Routing decisions of every request across all generation iterations.

    Attributes
    ----------
    paths:
        (iterations, R, L) expert ids — iteration-major.
    home_gpu:
        (R,) data-parallel home of each request.
    num_experts:
        Experts per layer.
    prompt_len:
        Context length at the first decode iteration (attention cost grows
        from here).
    """

    paths: np.ndarray
    home_gpu: np.ndarray
    num_experts: int
    prompt_len: int
    secondary_paths: np.ndarray | None = None

    def __post_init__(self) -> None:
        paths = np.asarray(self.paths, dtype=np.int64)
        home = np.asarray(self.home_gpu, dtype=np.int64)
        if paths.ndim != 3:
            raise ValueError(f"paths must be (iters, requests, layers), got {paths.shape}")
        if home.shape != (paths.shape[1],):
            raise ValueError("home_gpu must have one entry per request")
        if home.size and home.min() < 0:
            raise ValueError(f"home_gpu ranks must be >= 0, got {int(home.min())}")
        if paths.size and (paths.min() < 0 or paths.max() >= self.num_experts):
            raise ValueError("expert id out of range")
        if self.prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        object.__setattr__(self, "paths", paths)
        object.__setattr__(self, "home_gpu", home)
        if self.secondary_paths is not None:
            sec = np.asarray(self.secondary_paths, dtype=np.int64)
            if sec.shape != paths.shape:
                raise ValueError("secondary_paths must match paths shape")
            if sec.size and (sec.min() < 0 or sec.max() >= self.num_experts):
                raise ValueError("secondary expert id out of range")
            object.__setattr__(self, "secondary_paths", sec)

    @property
    def iterations(self) -> int:
        return self.paths.shape[0]

    @property
    def num_requests(self) -> int:
        return self.paths.shape[1]

    @property
    def num_layers(self) -> int:
        return self.paths.shape[2]

    def flat_trace(self) -> RoutingTrace:
        """All iterations' paths stacked into one trace (for locality eval)."""
        flat = self.paths.reshape(-1, self.num_layers)
        return RoutingTrace(flat, self.num_experts, source="workload")


def make_decode_workload(
    model: ModelConfig,
    cluster: ClusterConfig,
    infer: InferenceConfig,
    routing: MarkovRoutingModel | None = None,
    affinity: float = 0.85,
    rng: np.random.Generator | None = None,
) -> DecodeWorkload:
    """Synthesise a decode workload with realistic affinity structure.

    When ``routing`` is omitted, a Markov model with the given ``affinity``
    strength is built over the model's MoE layer count — 0.85 matches the
    concentration the paper's heatmaps show for trained checkpoints.  With
    top-2 gating, secondary experts are drawn from the same transition rows
    (so the second choice shares the primary's affinity structure).
    """
    rng = rng or np.random.default_rng(infer.seed)
    if routing is None:
        routing = MarkovRoutingModel.with_affinity(
            model.num_experts, model.num_moe_layers, affinity, rng=rng
        )
    if routing.num_experts != model.num_experts:
        raise ValueError("routing model expert count differs from model config")
    if routing.num_layers != model.num_moe_layers:
        raise ValueError("routing model layer count differs from model config")

    r = infer.total_requests(cluster.num_gpus)
    iters = infer.generate_len
    trace = routing.sample(r * iters, rng)
    paths = trace.paths.reshape(iters, r, model.num_moe_layers)
    home = np.repeat(np.arange(cluster.num_gpus), infer.requests_per_gpu)

    secondary = None
    if model.gating.k == 2:
        alt = routing.sample(r * iters, rng).paths
        secondary = alt.reshape(iters, r, model.num_moe_layers)
    return DecodeWorkload(paths, home, model.num_experts, infer.prompt_len, secondary)


def workload_from_trace(
    trace: RoutingTrace,
    cluster: ClusterConfig,
    infer: InferenceConfig,
) -> DecodeWorkload:
    """Slice a recorded trace into per-iteration decode batches.

    Rows are consumed iteration-major; the trace must contain at least
    ``iterations * total_requests`` rows.
    """
    r = infer.total_requests(cluster.num_gpus)
    need = r * infer.generate_len
    if trace.num_tokens < need:
        raise ValueError(
            f"trace has {trace.num_tokens} tokens; workload needs {need} "
            f"({infer.generate_len} iterations x {r} requests)"
        )
    paths = trace.paths[:need].reshape(infer.generate_len, r, trace.num_layers)
    home = np.repeat(np.arange(cluster.num_gpus), infer.requests_per_gpu)
    return DecodeWorkload(paths, home, trace.num_experts, infer.prompt_len)


# -- drift scenarios ----------------------------------------------------------


class DriftScenario:
    """Time-varying routing: ``model_at(t)`` is the regime at sim time ``t``.

    Implementations must be deterministic functions of ``t`` (the online
    serving simulation may evaluate the same instant more than once — e.g.
    to score both the static and online placements against one regime).
    """

    def model_at(self, t: float) -> MarkovRoutingModel:
        raise NotImplementedError

    @property
    def num_experts(self) -> int:
        return self.model_at(0.0).num_experts

    @property
    def num_layers(self) -> int:
        return self.model_at(0.0).num_layers


@dataclass
class StaticRouting(DriftScenario):
    """No drift: the same routing model at every instant (control arm)."""

    model: MarkovRoutingModel

    def model_at(self, t: float) -> MarkovRoutingModel:
        return self.model


@dataclass
class _BlendedDrift(DriftScenario):
    """Shared machinery: convex blend between two regimes, cached.

    ``weight_at(t)`` in [0, 1] selects the mix: 0 is pure ``start``, 1 is
    pure ``end``.  Row-stochasticity survives convex combination, so every
    intermediate blend is itself a valid Markov router.  Blends are
    quantised to 1/64 steps and cached — the serving loop asks for a model
    every decode step, and rebuilding (L-1, E, E) stacks per step would
    dominate the simulation.
    """

    start: MarkovRoutingModel
    end: MarkovRoutingModel
    _cache: dict[int, MarkovRoutingModel] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _QUANT = 64

    def __post_init__(self) -> None:
        if (
            self.start.num_experts != self.end.num_experts
            or self.start.num_layers != self.end.num_layers
        ):
            raise ValueError("drift endpoints disagree on trace shape")

    def weight_at(self, t: float) -> float:
        raise NotImplementedError

    def model_at(self, t: float) -> MarkovRoutingModel:
        w = min(1.0, max(0.0, self.weight_at(t)))
        q = int(round(w * self._QUANT))
        cached = self._cache.get(q)
        if cached is not None:
            return cached
        wq = q / self._QUANT
        if wq == 0.0:
            model = self.start
        elif wq == 1.0:
            model = self.end
        else:
            transitions = (1.0 - wq) * self.start.transitions + wq * self.end.transitions
            e = self.start.num_experts
            pa = self.start.prior if self.start.prior is not None else np.full(e, 1.0 / e)
            pb = self.end.prior if self.end.prior is not None else np.full(e, 1.0 / e)
            model = MarkovRoutingModel(transitions, (1.0 - wq) * pa + wq * pb)
        self._cache[q] = model
        return model


@dataclass
class GradualDrift(_BlendedDrift):
    """Linear Markov interpolation from ``start`` to ``end`` over a ramp.

    Before ``t_start`` the routing is purely the old regime; between
    ``t_start`` and ``t_end`` the transition stacks interpolate linearly;
    after ``t_end`` the new regime holds.  Models slow preference shifts
    (topic mix rotating over hours).
    """

    t_start: float = 0.0
    t_end: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.t_end > self.t_start:
            raise ValueError("t_end must be after t_start")

    def weight_at(self, t: float) -> float:
        return (t - self.t_start) / (self.t_end - self.t_start)


@dataclass
class AbruptDrift(_BlendedDrift):
    """Regime switch: old routing before ``switch_t``, new after.

    The hardest case for a static placement — all affinity structure the
    solve relied on is invalidated in one step (a viral prompt template, a
    model-facing product launch).
    """

    switch_t: float = 0.0

    def weight_at(self, t: float) -> float:
        return 0.0 if t < self.switch_t else 1.0


@dataclass
class DiurnalDrift(_BlendedDrift):
    """Smooth periodic mixture between two regimes (day/night traffic).

    The blend weight is ``(1 - cos(2*pi*t / period)) / 2`` — starts at the
    ``start`` regime, peaks at ``end`` mid-period, returns.  Tests whether
    the policy re-adapts repeatedly without thrashing.
    """

    period_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def weight_at(self, t: float) -> float:
        return 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period_s))


DRIFT_KINDS: tuple[str, ...] = ("none", "gradual", "abrupt", "diurnal")


def make_drift_scenario(
    kind: str,
    num_experts: int,
    num_layers: int,
    horizon_s: float,
    affinity: float = 0.85,
    seed: int = 0,
) -> DriftScenario:
    """Build a named drift scenario over a serving horizon.

    Two independent Markov regimes of equal affinity *strength* but
    unrelated *structure* (different successor permutations) are drawn from
    ``seed`` and ``seed + 101``; the drift kind decides how traffic moves
    between them across ``horizon_s`` (the expected serving span — e.g.
    ``num_requests / arrival_rate``):

    * ``none`` — regime A throughout (control arm).
    * ``gradual`` — linear interpolation across the middle half.
    * ``abrupt`` — hard switch at the midpoint.
    * ``diurnal`` — cosine mixture with period ``horizon_s / 2`` (two full
      day/night cycles per run).
    """
    if kind not in DRIFT_KINDS:
        raise ValueError(f"unknown drift kind {kind!r}; choose from {DRIFT_KINDS}")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    a = MarkovRoutingModel.with_affinity(
        num_experts, num_layers, affinity, rng=np.random.default_rng(seed)
    )
    if kind == "none":
        return StaticRouting(a)
    b = MarkovRoutingModel.with_affinity(
        num_experts, num_layers, affinity, rng=np.random.default_rng(seed + 101)
    )
    if kind == "gradual":
        return GradualDrift(a, b, t_start=0.25 * horizon_s, t_end=0.75 * horizon_s)
    if kind == "abrupt":
        return AbruptDrift(a, b, switch_t=0.5 * horizon_s)
    return DiurnalDrift(a, b, period_s=0.5 * horizon_s)
