"""Step-by-step reference executor — the vectorized engine's oracle.

This is the original discrete-event loop implementation of the engine: a
Python loop over iterations x layers, one ``bincount`` and one collective
costing per step.  It is deliberately simple — every simulated quantity is
computed at the moment its real counterpart would happen — which makes it
easy to audit against the paper's Fig 4 execution diagram.

It stays in the tree for exactly one purpose: the equivalence suite runs
both engines on identical inputs and asserts the batched
:func:`repro.engine.executor.simulate_inference` reproduces this oracle's
:class:`~repro.engine.metrics.RunResult` bit for bit.  Use the vectorized
engine everywhere else; this one is one-to-two orders of magnitude slower.

Fig 4 top-2 semantics (shared with the vectorized engine): the secondary
expert receives its payload directly from the token's current location and
sends its output to the *primary* expert's GPU, where the weighted
combination happens.  The vanilla combine therefore returns exactly one
combined token per request to its home GPU — an earlier revision
double-charged the primary-to-home return path here.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

from repro.cluster.collectives import allgather_cost, alltoall_matrix
from repro.cluster.topology import Topology
from repro.cluster.traffic import TrafficLedger
from repro.config import ClusterConfig, InferenceConfig, ModelConfig
from repro.core.placement.base import Placement
from repro.engine.costs import CostModel
from repro.engine.executor import _traffic_from_moves, validate_inference_inputs
from repro.engine.metrics import OpBreakdown, RunResult
from repro.engine.workload import DecodeWorkload

__all__ = ["simulate_inference_reference"]


def simulate_inference_reference(
    model: ModelConfig,
    cluster: ClusterConfig,
    infer: InferenceConfig,
    placement: Placement,
    workload: DecodeWorkload,
    cost_model: CostModel | None = None,
) -> RunResult:
    """Simulate one serving run with the step-by-step loop engine.

    Same contract as :func:`repro.engine.executor.simulate_inference`; kept
    as the correctness oracle for the vectorized engine.
    """
    validate_inference_inputs(model, cluster, placement, workload)

    cost = cost_model or CostModel(model, gpu_flops=cluster.gpu_flops)
    topo = Topology(cluster)
    ledger = TrafficLedger()
    mode = infer.mode
    g = cluster.num_gpus
    token_bytes = cost.token_bytes(infer.dtype_bytes)
    top2 = model.gating.k == 2 and workload.secondary_paths is not None

    attention_s = gating_s = ffn_s = alltoall_s = allgather_s = 0.0
    same_gpu_transitions = 0
    same_node_transitions = 0
    total_transitions = 0
    node_of = topo.node_of_gpu

    home = workload.home_gpu
    r = workload.num_requests
    layers = model.num_moe_layers

    def compute_max(counts: np.ndarray, fn: Callable[[int], float]) -> float:
        """Lockstep time: the slowest GPU's share of a compute op."""
        return float(fn(int(counts.max()))) if counts.size else 0.0

    # initial context replication (before-inference AllGather, Fig 4)
    if mode.uses_context_coherence:
        prompt_payload = np.bincount(home, minlength=g).astype(np.float64)
        prompt_payload *= infer.prompt_len * token_bytes
        res = allgather_cost(topo, prompt_payload)
        ledger.record(res, "allgather")
        allgather_s += res.time_s

    for it in range(workload.iterations):
        ctx_len = workload.prompt_len + it  # context grows one token/iter
        paths = workload.paths[it]  # (R, L)
        loc = home.copy()  # every iteration's token starts at its home GPU

        for j in range(layers):
            expert_gpu = placement.gpu_of[j][paths[:, j]]  # (R,)

            # attention + gating happen where tokens currently reside
            resident = np.bincount(loc, minlength=g)
            attention_s += compute_max(
                resident, partial(cost.attention_time, context_len=ctx_len)
            )
            gating_s += compute_max(resident, cost.gating_time)

            # dispatch Alltoall: current location -> expert's GPU
            traffic = _traffic_from_moves(loc, expert_gpu, g, token_bytes)
            if top2:
                sec_gpu = placement.gpu_of[j][workload.secondary_paths[it][:, j]]
                # secondary expert: payload out and result back to primary
                traffic += _traffic_from_moves(loc, sec_gpu, g, token_bytes)
                traffic += _traffic_from_moves(sec_gpu, expert_gpu, g, token_bytes)
            res = alltoall_matrix(topo, traffic)
            ledger.record(res, "alltoall")
            alltoall_s += res.time_s

            # locality bookkeeping (transition = a potential token move)
            moved = expert_gpu != loc
            crossed_node = node_of[expert_gpu] != node_of[loc]
            same_gpu_transitions += int((~moved).sum())
            same_node_transitions += int((~crossed_node).sum())
            total_transitions += r

            # expert FFN on the owning GPUs
            ffn_load = np.bincount(expert_gpu, minlength=g)
            if top2:
                ffn_load = ffn_load + np.bincount(sec_gpu, minlength=g)
            ffn_s += compute_max(ffn_load, cost.ffn_time)

            if mode.uses_context_coherence:
                loc = expert_gpu  # token stays with its expert's GPU
            else:
                # combine Alltoall: expert GPU -> home.  Under top-2 the
                # secondary output already travelled to the primary's GPU
                # during dispatch, so one combined token returns home.
                back = _traffic_from_moves(expert_gpu, home, g, token_bytes)
                res = alltoall_matrix(topo, back)
                ledger.record(res, "alltoall")
                alltoall_s += res.time_s
                loc = home.copy()

        # end of iteration: coherent modes AllGather the new tokens
        if mode.uses_context_coherence:
            step_payload = np.bincount(home, minlength=g).astype(np.float64) * token_bytes
            res = allgather_cost(topo, step_payload)
            ledger.record(res, "allgather")
            allgather_s += res.time_s

    breakdown = OpBreakdown(
        attention_s=attention_s,
        gating_s=gating_s,
        expert_ffn_s=ffn_s,
        alltoall_s=alltoall_s,
        allgather_s=allgather_s,
    )
    return RunResult(
        mode=mode,
        breakdown=breakdown,
        ledger=ledger,
        generated_tokens=workload.iterations * r,
        iterations=workload.iterations,
        gpu_stay_fraction=(
            same_gpu_transitions / total_transitions if total_transitions else 1.0
        ),
        node_stay_fraction=(
            same_node_transitions / total_transitions if total_transitions else 1.0
        ),
    )
