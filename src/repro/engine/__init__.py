"""Distributed MoE inference engine (simulation).

Replays routing workloads over a simulated cluster under the three
execution strategies the paper compares:

* ``vanilla`` — DeepSpeed-MoE pattern: two Alltoalls per MoE layer, tokens
  return home after every layer.
* ``context_coherent`` — ExFlow w/o affinity: one Alltoall per layer plus a
  per-iteration context AllGather.
* ``exflow`` — context coherence + affinity placement.

The engine is trace-driven: a workload assigns each request's token an
expert path per iteration; the executor converts paths + placement into
per-layer traffic matrices, prices them with
:mod:`repro.cluster.collectives`, prices compute with
:mod:`repro.engine.costs`, and accumulates a
:class:`~repro.cluster.traffic.TrafficLedger`.

Two executors share one contract: the vectorized batched engine in
:mod:`repro.engine.executor` (the fast default) and the step-by-step loop
oracle in :mod:`repro.engine.reference` (kept for equivalence testing).
On top of the batch engine, :mod:`repro.engine.serving` adds request-level
serving: Poisson/bursty arrivals, continuous batching and tail-latency
metrics.
"""

from repro.engine.costs import CostModel
from repro.engine.metrics import RunResult, OpBreakdown, LatencyStats
from repro.engine.workload import (
    DecodeWorkload,
    make_decode_workload,
    DriftScenario,
    StaticRouting,
    GradualDrift,
    AbruptDrift,
    DiurnalDrift,
    DRIFT_KINDS,
    make_drift_scenario,
)
from repro.engine.executor import simulate_inference, validate_inference_inputs
from repro.engine.reference import simulate_inference_reference
from repro.engine.comparison import compare_modes, ComparisonRow
from repro.engine.serving import (
    Request,
    CompletedRequest,
    ServingResult,
    make_arrivals,
    poisson_arrivals,
    bursty_arrivals,
    simulate_serving,
    engine_step_time,
    simulate_cluster_serving,
    PlacementStepTimer,
    KeptSample,
    OnlineServingResult,
    simulate_online_serving,
    simulate_online_cluster_serving,
)

__all__ = [
    "CostModel",
    "RunResult",
    "OpBreakdown",
    "LatencyStats",
    "DecodeWorkload",
    "make_decode_workload",
    "DriftScenario",
    "StaticRouting",
    "GradualDrift",
    "AbruptDrift",
    "DiurnalDrift",
    "DRIFT_KINDS",
    "make_drift_scenario",
    "simulate_inference",
    "simulate_inference_reference",
    "validate_inference_inputs",
    "compare_modes",
    "ComparisonRow",
    "Request",
    "CompletedRequest",
    "ServingResult",
    "make_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "simulate_serving",
    "engine_step_time",
    "simulate_cluster_serving",
    "PlacementStepTimer",
    "KeptSample",
    "OnlineServingResult",
    "simulate_online_serving",
    "simulate_online_cluster_serving",
]
