"""Distributed MoE inference engine (simulation).

Replays routing workloads over a simulated cluster under the three
execution strategies the paper compares:

* ``vanilla`` — DeepSpeed-MoE pattern: two Alltoalls per MoE layer, tokens
  return home after every layer.
* ``context_coherent`` — ExFlow w/o affinity: one Alltoall per layer plus a
  per-iteration context AllGather.
* ``exflow`` — context coherence + affinity placement.

The engine is trace-driven: a workload assigns each request's token an
expert path per iteration; the executor converts paths + placement into
per-layer traffic matrices, prices them with
:mod:`repro.cluster.collectives`, prices compute with
:mod:`repro.engine.costs`, and accumulates a
:class:`~repro.cluster.traffic.TrafficLedger`.
"""

from repro.engine.costs import CostModel
from repro.engine.metrics import RunResult, OpBreakdown
from repro.engine.workload import DecodeWorkload, make_decode_workload
from repro.engine.executor import simulate_inference
from repro.engine.comparison import compare_modes, ComparisonRow

__all__ = [
    "CostModel",
    "RunResult",
    "OpBreakdown",
    "DecodeWorkload",
    "make_decode_workload",
    "simulate_inference",
    "compare_modes",
    "ComparisonRow",
]
