"""Collective communication cost models over a :class:`Topology`.

MoE expert parallelism exercises four collectives:

* **Alltoall** — token dispatch/combine between expert-parallel ranks
  (the paper's bottleneck, Section II-A).
* **AllGather** — context replication in ExFlow's context-coherent design
  (one per generation iteration, Section IV-A).
* **AllReduce** — gradient/statistics reduction (training experiments).
* **Broadcast** — weight loading.

Costs follow the standard algorithmic decompositions (pairwise-exchange
Alltoall, ring AllGather/AllReduce, binomial-tree Broadcast) under the
alpha-beta link model, evaluated per-round with the *slowest participating
link* gating each round — the same synchronisation structure NCCL/MPI
implementations exhibit.  Everything is vectorised; no Python loop touches
individual ranks inside a round.

:func:`alltoall_matrix` and :func:`allgather_cost` additionally accept a
*stacked* batch of inputs — a (T, G, G) traffic tensor or a (T, G)
contribution matrix — and return one :class:`CollectiveResult` per slice.
The batched path shares its arithmetic with the single-collective path
(round loops run once across the whole batch), which is what lets the
vectorized engine cost every (iteration, layer) Alltoall of a run in a
handful of numpy passes while remaining bit-identical to costing them one
at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import Tier, Topology

__all__ = [
    "CollectiveResult",
    "alltoall_matrix",
    "alltoall_cost",
    "allgather_cost",
    "allreduce_cost",
    "broadcast_cost",
]


@dataclass(frozen=True)
class CollectiveResult:
    """Outcome of one simulated collective.

    Attributes
    ----------
    op:
        Collective name (``"alltoall"``, ``"allgather"``, ...).
    time_s:
        Simulated wall-clock seconds for the whole operation.
    bytes_by_tier:
        Total payload bytes carried over each :class:`Tier`.
    rounds:
        Number of communication rounds the algorithm used.
    """

    op: str
    time_s: float
    bytes_by_tier: dict[Tier, float] = field(default_factory=dict)
    rounds: int = 0

    @property
    def total_bytes(self) -> float:
        return float(sum(self.bytes_by_tier.values()))

    @property
    def cross_gpu_bytes(self) -> float:
        """Bytes that actually left a GPU (everything except LOCAL)."""
        return float(
            self.bytes_by_tier.get(Tier.INTRA, 0.0) + self.bytes_by_tier.get(Tier.INTER, 0.0)
        )

    @property
    def inter_node_bytes(self) -> float:
        return float(self.bytes_by_tier.get(Tier.INTER, 0.0))

    def combine(self, other: "CollectiveResult", op: str | None = None) -> "CollectiveResult":
        """Sequential composition of two collectives (times add)."""
        merged = dict(self.bytes_by_tier)
        for tier, b in other.bytes_by_tier.items():
            merged[tier] = merged.get(tier, 0.0) + b
        return CollectiveResult(
            op=op or f"{self.op}+{other.op}",
            time_s=self.time_s + other.time_s,
            bytes_by_tier=merged,
            rounds=self.rounds + other.rounds,
        )


ZERO_RESULT = CollectiveResult(op="noop", time_s=0.0, bytes_by_tier={}, rounds=0)


def _validate_traffic(topo: Topology, traffic: np.ndarray) -> np.ndarray:
    traffic = np.asarray(traffic, dtype=np.float64)
    g = topo.num_gpus
    if traffic.shape != (g, g):
        raise ValueError(f"traffic must be ({g}, {g}), got {traffic.shape}")
    if (traffic < 0).any():
        raise ValueError("traffic bytes must be non-negative")
    return traffic


def _alltoall_batched(
    topo: Topology, stack: np.ndarray
) -> tuple[np.ndarray, list[dict[Tier, float]], int]:
    """Cost a (T, G, G) traffic stack; returns (times, per-slice tier bytes, rounds).

    One pairwise-exchange round loop covers the whole batch: round ``r``
    gathers every slice's (rank, (rank + r) mod G) payloads into a (T, G)
    matrix and reduces over the rank axis.  Inactive rounds (zero payload)
    contribute exactly 0.0, matching the single-collective skip.
    """
    g = topo.num_gpus
    t_count = stack.shape[0]
    if g == 1:
        times = np.zeros(t_count)
        tier_bytes = [{Tier.LOCAL: float(stack[i].sum())} for i in range(t_count)]
        return times, tier_bytes, 0

    lat = topo.latency_matrix
    inv_bw = topo.inv_bandwidth_matrix
    ranks = np.arange(g)

    times = np.zeros(t_count)
    for r in range(1, g):
        dst = (ranks + r) % g
        nbytes = stack[:, ranks, dst]  # (T, G)
        per_pair = lat[ranks, dst][None, :] + nbytes * inv_bw[ranks, dst][None, :]
        round_t = np.where(nbytes > 0, per_pair, -np.inf).max(axis=1)
        times += np.where(np.isfinite(round_t), round_t, 0.0)

    tiers = topo.tier_matrix
    per_tier = {t: stack[:, tiers == t].sum(axis=1) for t in Tier}
    tier_bytes = [{t: float(per_tier[t][i]) for t in Tier} for i in range(t_count)]
    return times, tier_bytes, g - 1


def alltoall_matrix(
    topo: Topology, traffic: np.ndarray
) -> CollectiveResult | list[CollectiveResult]:
    """Personalised Alltoall with an arbitrary (G, G) byte matrix.

    ``traffic[a, b]`` = payload bytes rank ``a`` must deliver to rank ``b``.
    Diagonal entries stay local and cost nothing — this is exactly why
    affinity-aware placement helps: it concentrates mass on the diagonal
    (same GPU) and the intra-node blocks.

    Algorithm: G-1 pairwise-exchange rounds.  In round ``r`` every rank ``i``
    sends to ``(i + r) mod G`` and receives from ``(i - r) mod G``; the round
    completes when the slowest transfer finishes.

    A stacked (T, G, G) input costs T independent Alltoalls in one batched
    pass and returns a list of T results, one per slice, each identical to
    what the corresponding single (G, G) call would produce.
    """
    arr = np.asarray(traffic, dtype=np.float64)
    g = topo.num_gpus
    if arr.ndim == 2:
        arr = _validate_traffic(topo, arr)
        times, tier_bytes, rounds = _alltoall_batched(topo, arr[None])
        return CollectiveResult("alltoall", float(times[0]), tier_bytes[0], rounds)
    if arr.ndim == 3:
        if arr.shape[1:] != (g, g):
            raise ValueError(
                f"stacked traffic must be (T, {g}, {g}), got {arr.shape}"
            )
        if (arr < 0).any():
            raise ValueError("traffic bytes must be non-negative")
        times, tier_bytes, rounds = _alltoall_batched(topo, arr)
        return [
            CollectiveResult("alltoall", float(times[i]), tier_bytes[i], rounds)
            for i in range(arr.shape[0])
        ]
    raise ValueError(f"traffic must be (G, G) or (T, G, G), got shape {arr.shape}")


def alltoall_cost(topo: Topology, bytes_per_pair: float) -> CollectiveResult:
    """Uniform Alltoall where every off-diagonal pair exchanges equal bytes.

    Convenience wrapper for analytic comparisons (Table I): each of the G
    ranks sends ``bytes_per_pair`` to each of the other G-1 ranks.
    """
    if bytes_per_pair < 0:
        raise ValueError("bytes_per_pair must be >= 0")
    g = topo.num_gpus
    traffic = np.full((g, g), float(bytes_per_pair))
    np.fill_diagonal(traffic, 0.0)
    return alltoall_matrix(topo, traffic)


def _allgather_batched(
    topo: Topology, contrib: np.ndarray
) -> tuple[np.ndarray, list[dict[Tier, float]], int]:
    """Cost a (T, G) contribution stack; returns (times, per-slice tier bytes, rounds)."""
    g = topo.num_gpus
    t_count = contrib.shape[0]
    if g == 1:
        times = np.zeros(t_count)
        tier_bytes = [{Tier.LOCAL: float(contrib[i].sum())} for i in range(t_count)]
        return times, tier_bytes, 0

    ranks = np.arange(g)
    nxt = (ranks + 1) % g
    lat = topo.latency_matrix[ranks, nxt]
    inv_bw = topo.inv_bandwidth_matrix[ranks, nxt]
    tiers = topo.tier_matrix[ranks, nxt]
    tier_sel = {t: tiers == t for t in Tier}

    times = np.zeros(t_count)
    acc = {t: np.zeros(t_count) for t in Tier}
    for s in range(g - 1):
        chunk = contrib[:, (ranks - s) % g]  # (T, G)
        per_link = lat[None, :] + chunk * inv_bw[None, :]
        step_t = np.where(chunk > 0, per_link, -np.inf).max(axis=1)
        times += np.where(np.isfinite(step_t), step_t, 0.0)
        for t in Tier:
            if tier_sel[t].any():
                acc[t] += chunk[:, tier_sel[t]].sum(axis=1)

    tier_bytes = [
        {t: float(acc[t][i]) for t in Tier if acc[t][i] > 0} for i in range(t_count)
    ]
    return times, tier_bytes, g - 1


def allgather_cost(
    topo: Topology, bytes_per_rank: np.ndarray | float
) -> CollectiveResult | list[CollectiveResult]:
    """Ring AllGather where rank ``i`` contributes ``bytes_per_rank[i]``.

    G-1 steps; in step ``s`` rank ``i`` forwards the chunk that originated
    at rank ``(i - s) mod G`` to rank ``(i + 1) mod G``.  Heterogeneous
    contributions are supported because ExFlow's per-iteration context
    AllGather carries each GPU's newly generated tokens, which can differ.

    A stacked (T, G) input costs T independent AllGathers in one batched
    pass and returns a list of T results.
    """
    g = topo.num_gpus
    arr = np.asarray(bytes_per_rank, dtype=np.float64)
    if arr.ndim <= 1:
        contrib = np.broadcast_to(arr, (g,)).copy()
        if (contrib < 0).any():
            raise ValueError("bytes_per_rank must be non-negative")
        times, tier_bytes, rounds = _allgather_batched(topo, contrib[None])
        return CollectiveResult("allgather", float(times[0]), tier_bytes[0], rounds)
    if arr.ndim == 2:
        if arr.shape[1] != g:
            raise ValueError(f"stacked contributions must be (T, {g}), got {arr.shape}")
        if (arr < 0).any():
            raise ValueError("bytes_per_rank must be non-negative")
        times, tier_bytes, rounds = _allgather_batched(topo, arr)
        return [
            CollectiveResult("allgather", float(times[i]), tier_bytes[i], rounds)
            for i in range(arr.shape[0])
        ]
    raise ValueError(f"bytes_per_rank must be scalar, (G,) or (T, G), got {arr.shape}")


def allreduce_cost(topo: Topology, nbytes: float) -> CollectiveResult:
    """Ring AllReduce of an ``nbytes`` buffer (reduce-scatter + allgather).

    2(G-1) steps, each moving an ``nbytes / G`` chunk along the ring.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    g = topo.num_gpus
    if g == 1 or nbytes == 0:
        return CollectiveResult("allreduce", 0.0, {}, 0)

    ranks = np.arange(g)
    nxt = (ranks + 1) % g
    lat = topo.latency_matrix[ranks, nxt]
    inv_bw = topo.inv_bandwidth_matrix[ranks, nxt]
    tiers = topo.tier_matrix[ranks, nxt]

    chunk = nbytes / g
    step_time = float((lat + chunk * inv_bw).max())
    steps = 2 * (g - 1)
    total = steps * step_time

    bytes_by_tier: dict[Tier, float] = {}
    for t in Tier:
        count = int((tiers == t).sum())
        if count:
            bytes_by_tier[Tier(t)] = count * chunk * steps
    return CollectiveResult("allreduce", total, bytes_by_tier, rounds=steps)


def broadcast_cost(topo: Topology, nbytes: float, root: int = 0) -> CollectiveResult:
    """Binomial-tree Broadcast of ``nbytes`` from ``root``.

    ceil(log2 G) rounds; round ``k`` doubles the set of ranks holding the
    data.  Partner choice is rank-order, which on a node-contiguous layout
    sends the early (big) hops across nodes and later hops over NVLink —
    matching typical NCCL tree construction.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    g = topo.num_gpus
    if g == 1 or nbytes == 0:
        return CollectiveResult("broadcast", 0.0, {}, 0)
    if not 0 <= root < g:
        raise IndexError(f"root {root} out of range")

    # relabel so the root is rank 0 in the tree
    order = (np.arange(g) + root) % g
    total = 0.0
    bytes_by_tier: dict[Tier, float] = {}
    rounds = 0
    have = 1
    while have < g:
        senders = order[:have]
        receivers = order[have : min(2 * have, g)]
        senders = senders[: len(receivers)]
        lat = topo.latency_matrix[senders, receivers]
        inv_bw = topo.inv_bandwidth_matrix[senders, receivers]
        tiers = topo.tier_matrix[senders, receivers]
        total += float((lat + nbytes * inv_bw).max())
        for t in Tier:
            count = int((tiers == t).sum())
            if count:
                bytes_by_tier[Tier(t)] = bytes_by_tier.get(Tier(t), 0.0) + count * nbytes
        have += len(receivers)
        rounds += 1

    return CollectiveResult("broadcast", total, bytes_by_tier, rounds=rounds)
