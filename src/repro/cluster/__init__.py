"""Simulated GPU cluster substrate.

This package replaces the paper's physical testbed (multi-node A100 servers
with NVLink and InfiniBand) with an explicit model:

* :mod:`repro.cluster.topology` — the hardware graph: GPUs grouped into
  nodes, nodes joined by an inter-node fabric, with per-tier
  :class:`~repro.config.LinkSpec` performance.
* :mod:`repro.cluster.collectives` — cost models and data-movement
  simulation for the collectives MoE inference uses (Alltoall, AllGather,
  AllReduce, Broadcast), following mpi4py/NCCL algorithmic structure.
* :mod:`repro.cluster.traffic` — per-tier byte and time accounting across
  a whole simulated run.
"""

from repro.cluster.topology import Topology, Tier
from repro.cluster.collectives import (
    CollectiveResult,
    alltoall_cost,
    allgather_cost,
    allreduce_cost,
    broadcast_cost,
    alltoall_matrix,
)
from repro.cluster.traffic import TrafficLedger

__all__ = [
    "Topology",
    "Tier",
    "CollectiveResult",
    "alltoall_cost",
    "allgather_cost",
    "allreduce_cost",
    "broadcast_cost",
    "alltoall_matrix",
    "TrafficLedger",
]
