"""Cumulative traffic accounting across a simulated run.

The engine performs many collectives per generation iteration (one or two
Alltoalls per MoE layer plus the optional AllGather).  A
:class:`TrafficLedger` accumulates their :class:`CollectiveResult`s so the
benchmarks can report exactly the quantities the paper plots: total Alltoall
seconds, AllGather seconds, bytes per tier, and reduction ratios between
execution modes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cluster.collectives import CollectiveResult
from repro.cluster.topology import Tier

__all__ = ["TrafficLedger"]


@dataclass
class TrafficLedger:
    """Mutable accumulator of collective costs, grouped by operation name.

    ``record`` may be called with an optional ``label`` to separate phases
    (e.g. ``"dispatch"`` vs ``"combine"`` Alltoalls), falling back to the
    collective's own op name.
    """

    time_by_op: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    bytes_by_op_tier: dict[str, dict[Tier, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float))
    )
    count_by_op: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, result: CollectiveResult, label: str | None = None) -> None:
        """Add one collective's cost under ``label`` (default: its op)."""
        op = label or result.op
        self.time_by_op[op] += result.time_s
        self.count_by_op[op] += 1
        for tier, b in result.bytes_by_tier.items():
            self.bytes_by_op_tier[op][tier] += b

    # -- aggregate views ----------------------------------------------------

    @property
    def total_time_s(self) -> float:
        return float(sum(self.time_by_op.values()))

    def time_of(self, *ops: str) -> float:
        """Total seconds across the named operation labels."""
        return float(sum(self.time_by_op.get(op, 0.0) for op in ops))

    def bytes_of(self, op: str, tier: Tier | None = None) -> float:
        tiers = self.bytes_by_op_tier.get(op, {})
        if tier is None:
            return float(sum(tiers.values()))
        return float(tiers.get(tier, 0.0))

    @property
    def total_bytes(self) -> float:
        return float(
            sum(sum(tiers.values()) for tiers in self.bytes_by_op_tier.values())
        )

    def cross_gpu_bytes(self) -> float:
        """All bytes that crossed a GPU boundary (INTRA + INTER tiers)."""
        total = 0.0
        for tiers in self.bytes_by_op_tier.values():
            total += tiers.get(Tier.INTRA, 0.0) + tiers.get(Tier.INTER, 0.0)
        return float(total)

    def inter_node_bytes(self) -> float:
        return float(
            sum(tiers.get(Tier.INTER, 0.0) for tiers in self.bytes_by_op_tier.values())
        )

    def merge(self, other: "TrafficLedger") -> "TrafficLedger":
        """Return a new ledger combining two runs."""
        out = TrafficLedger()
        for src in (self, other):
            for op, t in src.time_by_op.items():
                out.time_by_op[op] += t
            for op, c in src.count_by_op.items():
                out.count_by_op[op] += c
            for op, tiers in src.bytes_by_op_tier.items():
                for tier, b in tiers.items():
                    out.bytes_by_op_tier[op][tier] += b
        return out

    def summary(self) -> dict[str, dict[str, float]]:
        """Plain-dict summary for reports and benchmark output."""
        return {
            op: {
                "time_s": self.time_by_op[op],
                "count": float(self.count_by_op[op]),
                "bytes": self.bytes_of(op),
                "inter_node_bytes": self.bytes_of(op, Tier.INTER),
            }
            for op in sorted(self.time_by_op)
        }
