"""Hardware topology graph for the simulated cluster.

The topology mirrors the paper's Wilkes3 testbed structure: GPUs are leaves,
grouped under node switches (NVLink domains), which hang off a single
cluster fabric (InfiniBand).  A :class:`Topology` wraps a
:class:`~repro.config.ClusterConfig` with:

* a :mod:`networkx` graph (useful for visualisation and path queries),
* vectorised tier / distance matrices used on hot paths, and
* helpers mapping GPU ranks to nodes and link tiers.

Communication cost never walks the graph at simulation time — the tier
matrix is precomputed so collectives can classify a whole Alltoall traffic
matrix with pure numpy indexing.
"""

from __future__ import annotations

from enum import IntEnum
from functools import cached_property

import networkx as nx
import numpy as np

from repro.config import ClusterConfig, LinkSpec

__all__ = ["Tier", "Topology"]


class Tier(IntEnum):
    """Communication tier between two GPU ranks, ordered by cost.

    ``LOCAL`` — same GPU (HBM-resident move, effectively free).
    ``INTRA`` — same node, different GPU (NVLink).
    ``INTER`` — different nodes (InfiniBand).
    """

    LOCAL = 0
    INTRA = 1
    INTER = 2


class Topology:
    """Queryable model of the cluster's communication hierarchy.

    Parameters
    ----------
    cluster:
        Shape and link performance of the simulated machine.

    Notes
    -----
    The heavy artefacts (tier matrix, node-of vector, graph) are cached
    properties — built once on first use, shared by all consumers.
    """

    def __init__(self, cluster: ClusterConfig) -> None:
        self.cluster = cluster

    # -- identity ---------------------------------------------------------

    @property
    def num_gpus(self) -> int:
        return self.cluster.num_gpus

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    @property
    def gpus_per_node(self) -> int:
        return self.cluster.gpus_per_node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.num_nodes} nodes x {self.gpus_per_node} GPUs, "
            f"intra={self.cluster.intra_link.name}, inter={self.cluster.inter_link.name})"
        )

    # -- vectorised structure ---------------------------------------------

    @cached_property
    def node_of_gpu(self) -> np.ndarray:
        """``node_of_gpu[g]`` is the node index of GPU rank ``g``."""
        return np.arange(self.num_gpus) // self.gpus_per_node

    @cached_property
    def tier_matrix(self) -> np.ndarray:
        """``tier_matrix[a, b]`` is the :class:`Tier` between ranks a and b."""
        nodes = self.node_of_gpu
        same_node = nodes[:, None] == nodes[None, :]
        tiers = np.where(same_node, Tier.INTRA, Tier.INTER).astype(np.int8)
        np.fill_diagonal(tiers, Tier.LOCAL)
        return tiers

    def tier(self, gpu_a: int, gpu_b: int) -> Tier:
        """Communication tier for a transfer from ``gpu_a`` to ``gpu_b``."""
        return Tier(int(self.tier_matrix[gpu_a, gpu_b]))

    def link(self, gpu_a: int, gpu_b: int) -> LinkSpec:
        """Alpha-beta link spec between two ranks."""
        return self.link_for_tier(self.tier(gpu_a, gpu_b))

    def link_for_tier(self, tier: Tier) -> LinkSpec:
        if tier is Tier.LOCAL:
            return self.cluster.local_link
        if tier is Tier.INTRA:
            return self.cluster.intra_link
        return self.cluster.inter_link

    @cached_property
    def latency_matrix(self) -> np.ndarray:
        """Per-pair alpha (seconds) — useful for vectorised cost sums."""
        lat = np.array(
            [
                self.cluster.local_link.latency_s,
                self.cluster.intra_link.latency_s,
                self.cluster.inter_link.latency_s,
            ]
        )
        return lat[self.tier_matrix]

    @cached_property
    def inv_bandwidth_matrix(self) -> np.ndarray:
        """Per-pair beta (seconds/byte)."""
        inv_bw = np.array(
            [
                1.0 / self.cluster.local_link.bandwidth_Bps,
                1.0 / self.cluster.intra_link.bandwidth_Bps,
                1.0 / self.cluster.inter_link.bandwidth_Bps,
            ]
        )
        return inv_bw[self.tier_matrix]

    # -- grouping helpers ---------------------------------------------------

    def gpus_of_node(self, node: int) -> np.ndarray:
        """Global GPU ranks on ``node`` as an integer array."""
        return np.asarray(self.cluster.gpus_of_node(node), dtype=np.int64)

    def node_groups(self) -> list[np.ndarray]:
        """GPU ranks grouped by node, in node order."""
        return [self.gpus_of_node(n) for n in range(self.num_nodes)]

    def classify_bytes(self, traffic: np.ndarray) -> dict[Tier, float]:
        """Partition a (G, G) byte matrix into per-tier totals.

        ``traffic[a, b]`` is the number of bytes rank ``a`` sends to rank
        ``b``.  Returns total bytes carried by each tier.
        """
        traffic = np.asarray(traffic, dtype=np.float64)
        if traffic.shape != (self.num_gpus, self.num_gpus):
            raise ValueError(
                f"traffic matrix must be ({self.num_gpus}, {self.num_gpus}), got {traffic.shape}"
            )
        if (traffic < 0).any():
            raise ValueError("traffic bytes must be non-negative")
        tiers = self.tier_matrix
        return {t: float(traffic[tiers == t].sum()) for t in Tier}

    # -- graph view ---------------------------------------------------------

    @cached_property
    def graph(self) -> nx.Graph:
        """networkx view: GPU leaves, node switches, one fabric root.

        Edge attribute ``tier`` names the link class; ``link`` carries the
        :class:`~repro.config.LinkSpec`.  Used for topology-aware debugging
        and the examples, never on the simulation hot path.
        """
        g = nx.Graph()
        g.add_node("fabric", kind="switch")
        for node in range(self.num_nodes):
            sw = f"node{node}"
            g.add_node(sw, kind="node")
            g.add_edge(sw, "fabric", tier="inter", link=self.cluster.inter_link)
            for gpu in self.cluster.gpus_of_node(node):
                leaf = f"gpu{gpu}"
                g.add_node(leaf, kind="gpu", rank=gpu, node=node)
                g.add_edge(leaf, sw, tier="intra", link=self.cluster.intra_link)
        return g

    def hop_path(self, gpu_a: int, gpu_b: int) -> list[str]:
        """Graph path between two GPU leaves (for inspection)."""
        return nx.shortest_path(self.graph, f"gpu{gpu_a}", f"gpu{gpu_b}")
