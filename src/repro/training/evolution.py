"""Affinity evolution tracking across training (Figs 11 and 12).

Runs a :class:`~repro.training.trainer.GateStackTrainer` and snapshots, at
each checkpoint, the scalar affinity metric (Fig 12's y-axis) and the last
layer's expert-share vector (Fig 11's stacked series).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.affinity import scaled_affinity
from repro.trace.datasets import TopicCorpus, make_corpus
from repro.training.balance import expert_share, load_imbalance
from repro.training.trainer import GateStackTrainer, TrainerConfig

__all__ = ["AffinityTimeline", "track_affinity_evolution"]


@dataclass(frozen=True)
class AffinityTimeline:
    """Checkpointed routing statistics across a training run.

    Attributes
    ----------
    iterations:
        (T,) checkpoint iteration numbers (0 = untrained).
    affinity:
        (T,) scaled affinity at each checkpoint.
    last_layer_share:
        (T, E) expert routing shares at the final MoE layer.
    imbalance:
        (T,) max-over-mean load at the final layer.
    """

    iterations: np.ndarray
    affinity: np.ndarray
    last_layer_share: np.ndarray
    imbalance: np.ndarray

    @property
    def num_checkpoints(self) -> int:
        return self.iterations.size

    def affinity_increased_overall(self) -> bool:
        """Did affinity end above its post-collapse minimum? (Fig 12b's claim)"""
        if self.affinity.size < 3:
            return False
        interior_min = float(self.affinity[1:-1].min())
        return bool(self.affinity[-1] > interior_min)


def track_affinity_evolution(
    num_experts: int,
    num_layers: int = 6,
    total_iterations: int = 200,
    checkpoints: int = 20,
    corpus: TopicCorpus | None = None,
    trainer_config: TrainerConfig | None = None,
    probe_tokens: int = 2048,
    seed: int = 0,
) -> AffinityTimeline:
    """Train gates from scratch and record the affinity timeline.

    Parameters mirror the paper's sweep: one curve per expert count
    (8/16/32/64 in Fig 12), trained with the GShard balance loss active.
    """
    corpus = corpus or make_corpus("pile", num_topics=max(8, num_experts), seed=seed)
    config = trainer_config or TrainerConfig(
        num_experts=num_experts, num_layers=num_layers, seed=seed
    )
    trainer = GateStackTrainer(config, corpus)

    marks = np.unique(
        np.linspace(0, total_iterations, num=max(checkpoints, 2)).astype(int)
    )
    iters: list[int] = []
    aff: list[float] = []
    share: list[np.ndarray] = []
    imb: list[float] = []

    def snapshot() -> None:
        trace = trainer.probe_trace(probe_tokens, seed=seed + 999)
        iters.append(trainer.iteration)
        aff.append(scaled_affinity(trace))
        last = trace.paths[:, -1]
        share.append(expert_share(last, num_experts))
        imb.append(load_imbalance(last, num_experts))

    snapshot()  # iteration 0: untrained
    done = 0
    for mark in marks[1:]:
        trainer.train(int(mark) - done)
        done = int(mark)
        snapshot()

    return AffinityTimeline(
        iterations=np.asarray(iters),
        affinity=np.asarray(aff),
        last_layer_share=np.stack(share),
        imbalance=np.asarray(imb),
    )
