"""Load-balance metrics for expert routing.

Quantifies the expert-usage skew the paper plots in Fig 11: at training
start a few experts receive most tokens; the GShard loss drives usage
toward uniformity.  ``gshard_balance_loss`` is re-exported from the model
package so training code has one import site.
"""

from __future__ import annotations

import numpy as np

from repro.model.gating import gshard_balance_loss
from repro.trace.events import RoutingTrace

__all__ = ["load_imbalance", "expert_share", "gshard_balance_loss", "entropy_balance"]


def expert_share(assignments: np.ndarray, num_experts: int) -> np.ndarray:
    """(E,) fraction of tokens routed to each expert (one layer)."""
    assignments = np.asarray(assignments)
    n = assignments.size
    if n == 0:
        return np.zeros(num_experts)
    return np.bincount(assignments.ravel(), minlength=num_experts) / n


def load_imbalance(assignments: np.ndarray, num_experts: int) -> float:
    """Max-over-mean expert load: 1.0 = perfectly balanced, E = collapsed."""
    share = expert_share(assignments, num_experts)
    mean = share.mean()
    if mean == 0:
        return 1.0
    return float(share.max() / mean)


def entropy_balance(assignments: np.ndarray, num_experts: int) -> float:
    """Normalised routing entropy: 1.0 = uniform usage, 0.0 = collapsed."""
    share = expert_share(assignments, num_experts)
    nz = share[share > 0]
    if nz.size <= 1 or num_experts <= 1:
        return 0.0
    h = float(-(nz * np.log(nz)).sum())
    return h / np.log(num_experts)


def trace_balance_series(trace: RoutingTrace) -> np.ndarray:
    """(L,) load imbalance of each layer in a trace."""
    return np.array(
        [
            load_imbalance(trace.paths[:, j], trace.num_experts)
            for j in range(trace.num_layers)
        ]
    )
