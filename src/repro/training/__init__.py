"""Training dynamics of expert affinity (paper Section V-F, Figs 11-12).

The paper traces how routing balance and inter-layer affinity evolve while
a GPT MoE model trains from scratch with the GShard balance loss.  This
package reproduces those dynamics with a gate-only trainer over the
synthetic topic corpus: token representations are fixed (the frozen
"backbone"), and per-layer gates train under a specialisation pressure
(sharpen routing) opposed by the GShard load-balancing loss — the two
forces whose interplay produces the paper's observed phases: early expert
collapse, re-balancing, then steadily strengthening affinity.
"""

from repro.training.trainer import GateStackTrainer, TrainerConfig
from repro.training.balance import load_imbalance, expert_share, gshard_balance_loss
from repro.training.evolution import AffinityTimeline, track_affinity_evolution

__all__ = [
    "GateStackTrainer",
    "TrainerConfig",
    "load_imbalance",
    "expert_share",
    "gshard_balance_loss",
    "AffinityTimeline",
    "track_affinity_evolution",
]
