"""Gate-only MoE trainer over a frozen backbone.

The full paper trains 350M-1.3B GPT MoE models; what Figs 11/12 actually
measure, though, is *router* behaviour.  We therefore train only the
per-layer gates, over fixed token representations derived from the topic
corpus — a frozen-backbone proxy that preserves the three forces shaping
routing dynamics:

1. **specialisation pressure** — a self-training sharpening loss (tokens
   are pulled toward their current best expert), the stand-in for the task
   loss's tendency to make routing confident and domain-specific;
2. **GShard balance loss** — pushes usage toward uniformity;
3. **shared representation drift across layers** — layer-j representations
   are smooth transforms of layer-(j-1) ones, so once experts specialise by
   topic, consecutive-layer selections correlate: affinity.

Token representations are topic clusters (each vocabulary slice belongs to
one topic of the corpus universe, mirroring
:mod:`repro.trace.datasets`) plus token noise and a shared mean component.
At random initialisation the shared mean dominates every gate's logits, so
one expert receives most tokens — the paper's observed early collapse —
until the balance loss spreads load across topic clusters.  A small weight
decay keeps the softmax from saturating (saturated routing has zero
gradient and would freeze the collapsed state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GatingKind
from repro.model.gating import TopKGate
from repro.model.tensors import normal_init, one_hot
from repro.trace.datasets import TopicCorpus
from repro.trace.events import RoutingTrace

__all__ = ["TrainerConfig", "GateStackTrainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the gate-only trainer.

    ``balance_weight`` scales the GShard gradient against the sharpening
    gradient; ``lr`` is plain SGD.  ``embed_mean_bias`` sets the shared
    component of token embeddings that produces the early collapse phase;
    ``topic_scale`` sets how strongly topics cluster in embedding space
    (the eventual driver of specialisation and affinity).
    """

    num_experts: int
    num_layers: int
    d_model: int = 32
    lr: float = 0.2
    balance_weight: float = 4.0
    sharpen_weight: float = 0.5
    weight_decay: float = 0.02
    batch_tokens: int = 256
    embed_mean_bias: float = 2.0
    topic_scale: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_experts < 2 or self.num_layers < 2:
            raise ValueError("need >= 2 experts and >= 2 layers")
        if self.lr <= 0 or self.batch_tokens < 1:
            raise ValueError("lr must be positive and batch_tokens >= 1")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")


class GateStackTrainer:
    """Trains one gate per layer over frozen layer representations.

    Parameters
    ----------
    config:
        Trainer hyper-parameters.
    corpus:
        Topic corpus supplying training tokens; its topic structure is what
        experts eventually specialise on.
    """

    def __init__(self, config: TrainerConfig, corpus: TopicCorpus) -> None:
        self.config = config
        self.corpus = corpus
        rng = np.random.default_rng(config.seed)
        self._rng = rng

        # frozen backbone: topic-clustered token embeddings.  Vocabulary
        # slice t belongs to topic t (same convention as the corpus
        # generator), so documents' tokens cluster by topic geometry.
        v, d, k = corpus.vocab_size, config.d_model, corpus.num_topics
        slice_size = max(1, v // k)
        topic_of_token = np.minimum(np.arange(v) // slice_size, k - 1)
        topic_centers = rng.normal(0.0, config.topic_scale, size=(k, d))
        shared_mean = rng.normal(0.0, config.embed_mean_bias, size=(1, d))
        self.token_embed = topic_centers[topic_of_token] + normal_init(
            rng, v, d, scale=1.0
        ) + shared_mean
        self.layer_mix = [
            normal_init(rng, d, d, scale=0.25) for _ in range(config.num_layers)
        ]

        # trainable gates, tiny init so early routing is decided by the
        # embeddings' shared mean direction (-> initial collapse)
        self.gates = [
            TopKGate(d, config.num_experts, GatingKind.TOP1, rng)
            for _ in range(config.num_layers)
        ]
        for gate in self.gates:
            gate.weight *= 0.05
        self.iteration = 0

    # -- representations ------------------------------------------------------

    def hidden_states(self, tokens: np.ndarray) -> list[np.ndarray]:
        """Frozen per-layer representations of a flat token batch.

        ``h_0 = embed(token)``; ``h_j = norm(h_{j-1} + h_{j-1} @ M_j)`` — a
        residual-stream proxy: representations drift smoothly across layers,
        which is what carries affinity between consecutive gates.
        """
        h = self.token_embed[np.asarray(tokens).ravel()]
        states = []
        for mix in self.layer_mix:
            h = h + h @ mix
            scale = np.linalg.norm(h, axis=1, keepdims=True).clip(min=1e-9)
            h = h / scale * np.sqrt(self.config.d_model)
            states.append(h)
        return states

    # -- training ----------------------------------------------------------------

    def _sample_batch(self) -> np.ndarray:
        docs, _ = self.corpus.sample_documents(
            max(1, self.config.batch_tokens // 16), 16, self._rng
        )
        return docs.ravel()[: self.config.batch_tokens]

    def step(self) -> dict[str, float]:
        """One SGD step on every gate; returns scalar diagnostics."""
        cfg = self.config
        tokens = self._sample_batch()
        states = self.hidden_states(tokens)

        total_balance = 0.0
        total_conf = 0.0
        for gate, h in zip(self.gates, states, strict=True):
            out = gate(h)
            n = h.shape[0]

            # sharpening: cross-entropy toward the current argmax expert
            target = one_hot(out.top1, cfg.num_experts)
            d_logits_sharp = (out.probs - target) / n

            # balance gradient, straight-through on the logits: push every
            # over-used expert's logit down by its excess usage.  Routing
            # through the saturated softmax would give a vanishing gradient
            # exactly when balancing matters most (full collapse), so the
            # straight-through form is what makes recovery possible.
            e = cfg.num_experts
            f = np.bincount(out.top1, minlength=e) / n
            d_logits_bal = np.tile((f - 1.0 / e) / n, (n, 1))

            grad = h.T @ (
                cfg.sharpen_weight * d_logits_sharp + cfg.balance_weight * d_logits_bal
            )
            gate.weight -= cfg.lr * grad
            # weight decay keeps logits out of softmax saturation, where all
            # routing gradients vanish and collapse would become permanent
            gate.weight *= 1.0 - cfg.lr * cfg.weight_decay

            total_balance += gate.balance_loss(out.probs, out.experts)
            total_conf += float(out.probs.max(axis=1).mean())

        self.iteration += 1
        L = cfg.num_layers
        return {
            "iteration": float(self.iteration),
            "balance_loss": total_balance / L,
            "confidence": total_conf / L,
        }

    def train(self, iterations: int) -> list[dict[str, float]]:
        """Run ``iterations`` steps; returns the per-step diagnostics."""
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        return [self.step() for _ in range(iterations)]

    # -- probing ---------------------------------------------------------------------

    def probe_trace(self, num_tokens: int = 2048, seed: int = 999) -> RoutingTrace:
        """Route a held-out probe batch through the current gates.

        The returned trace is what the affinity-evolution experiment scores
        at each checkpoint.
        """
        rng = np.random.default_rng(seed)
        docs, _ = self.corpus.sample_documents(max(1, num_tokens // 16), 16, rng)
        tokens = docs.ravel()[:num_tokens]
        states = self.hidden_states(tokens)
        paths = np.stack(
            [gate(h).top1 for gate, h in zip(self.gates, states, strict=True)], axis=1
        )
        return RoutingTrace(paths, self.config.num_experts, source="probe")
