"""Fig 13 — how many profiled tokens are needed to capture affinity.

Sweeps the profiling-set size (50 - 5000 tokens) for each expert count,
fits a placement from each subset, and measures the relative Alltoall
speedup on a large held-out workload (paper's y-axis: "Relative Speedup in
Alltoall").

Shape checks: speedup saturates by a few thousand tokens (paper: 1000 for
MoE-8, 3000 for MoE-64), and larger expert counts need more tokens to reach
their plateau.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import (
    ClusterConfig,
    ExecutionMode,
    InferenceConfig,
    MarkovRoutingModel,
    paper_model,
    simulate_inference,
    vanilla_placement,
)
from repro.analysis.report import format_series
from repro.core.placement.registry import solve_placement
from repro.engine.workload import make_decode_workload

from conftest import publish

TOKEN_BUDGETS = (50, 500, 1000, 2000, 3000, 5000)
EXPERT_COUNTS = (8, 16, 32, 64)


def _alltoall_speedup(
    experts: int, profile_tokens: int, routing, workload, model, cluster, infer, repeats: int = 3
):
    """Alltoall speedup of affinity placement, averaged over profile draws.

    Averaging removes the sampling noise of small profiling sets so the
    saturation trend is visible (the paper's curves are similarly smooth)."""
    base_placement = vanilla_placement(model.num_moe_layers, model.num_experts, cluster.num_gpus)
    coherent = dataclasses.replace(infer, mode=ExecutionMode.CONTEXT_COHERENT)
    exflow = dataclasses.replace(infer, mode=ExecutionMode.EXFLOW)
    base = simulate_inference(model, cluster, coherent, base_placement, workload)

    speedups = []
    for r in range(repeats):
        profile = routing.sample(
            profile_tokens, np.random.default_rng(7000 + profile_tokens * (r + 1))
        )
        placement = solve_placement("staged", profile, cluster)
        opt = simulate_inference(model, cluster, exflow, placement, workload)
        speedups.append(base.breakdown.alltoall_s / opt.breakdown.alltoall_s)
    return float(np.mean(speedups))


def _cluster_for(experts: int) -> ClusterConfig:
    """Enough GPUs to spread the experts, capped at 4 nodes x 4 GPUs."""
    gpus = min(experts, 16)
    return ClusterConfig(num_nodes=max(1, gpus // 4), gpus_per_node=min(4, gpus))


def _sweep(experts: int, budgets) -> list[float]:
    infer = InferenceConfig(requests_per_gpu=4, prompt_len=64, generate_len=4)
    cluster = _cluster_for(experts)
    model = dataclasses.replace(paper_model("gpt-m-350m-e8"), num_experts=experts)
    routing = MarkovRoutingModel.with_affinity(
        experts, model.num_moe_layers, 0.85, rng=np.random.default_rng(experts)
    )
    workload = make_decode_workload(
        model, cluster, infer, routing=routing, rng=np.random.default_rng(1)
    )
    return [
        _alltoall_speedup(experts, n, routing, workload, model, cluster, infer)
        for n in budgets
    ]


def test_fig13_token_sampling(benchmark, results_dir):
    series = {
        f"{experts} experts": _sweep(experts, TOKEN_BUDGETS)
        for experts in EXPERT_COUNTS
    }
    benchmark.pedantic(lambda: _sweep(8, (1000,)), rounds=1, iterations=1)

    table = format_series(
        list(TOKEN_BUDGETS),
        series,
        x_label="profiled tokens",
        title="Fig 13 — relative Alltoall speedup vs profiling-set size",
    )
    publish(results_dir, "fig13_token_sampling", table)

    gaps = {}
    for label, vals in series.items():
        plateau = vals[-1]
        assert plateau > 1.1, f"{label}: placement never helped"
        # saturation: the 3000-token point is within 5 % of the 5000-token one
        assert abs(vals[4] - plateau) / plateau < 0.05, f"{label}: not saturated at 3k"
        gaps[label] = plateau - vals[0]

    # the paper's scaling law: models with more experts need more tokens, so
    # the 50-token shortfall grows with the expert count
    assert gaps["64 experts"] > gaps["8 experts"] + 0.05
    assert gaps["64 experts"] > 0.1  # MoE-64 visibly under-fitted at 50 tokens
