"""Ablation — ExFlow's memory-free placement vs Lina-style replication.

The paper's Related Work argues popularity replication buys locality with
extra expert memory while ExFlow gets it free via global placement.  This
bench sweeps the replication budget and places ExFlow's point on the same
locality axis at zero overhead.
"""

from __future__ import annotations

import numpy as np

from repro import MarkovRoutingModel
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.ilp import ilp_placement
from repro.core.placement.replication import popularity_replication, replicated_locality

from conftest import publish

REPLICA_BUDGETS = (0, 1, 2, 4, 8, 16)


def _setup():
    routing = MarkovRoutingModel.with_affinity(32, 24, 0.85, rng=np.random.default_rng(0))
    profile = routing.sample(3000, np.random.default_rng(1))
    serving = routing.sample(8000, np.random.default_rng(2))
    return profile, serving


def test_ablation_replication(benchmark, results_dir):
    profile, serving = benchmark.pedantic(_setup, rounds=1, iterations=1)
    gpus = 8  # 4 owned experts per GPU

    rows = []
    rep_stay_at_full_budget = None
    for k in REPLICA_BUDGETS:
        rep = popularity_replication(profile, gpus, k)
        stay = replicated_locality(rep, serving).gpu_stay_fraction
        rows.append([f"replication k={k}", rep.memory_overhead_fraction(), stay])
        if k == 4:  # 100 % memory overhead point
            rep_stay_at_full_budget = stay

    exflow = ilp_placement(profile, gpus)
    exflow_stay = placement_locality(exflow, serving).gpu_stay_fraction
    rows.append(["ExFlow (affinity ILP)", 0.0, exflow_stay])

    table = format_table(
        ["strategy", "memory overhead (x owned shard)", "GPU-stay"],
        rows,
        title="Ablation — locality per memory: replication vs affinity placement "
        "(MoE-32, 24 layers, 8 GPUs)",
    )
    publish(results_dir, "ablation_replication", table)

    # the paper's claim: ExFlow at zero overhead beats replication even when
    # replication doubles each GPU's expert memory
    assert rep_stay_at_full_budget is not None
    assert exflow_stay > rep_stay_at_full_budget
