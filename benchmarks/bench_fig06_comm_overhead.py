"""Fig 6 — scaled communication latency: baseline vs context coherence.

For each paper model variant and expert-parallel size, measures the
baseline's total Alltoall time against the context-coherent design's
single-Alltoall time plus the AllGather it introduces.  Values are scaled
to the baseline (=1.0), matching the paper's normalisation.

Shape checks: the coherent Alltoall is well under half the baseline (the
removed combine Alltoall plus incidental local hits), and the AllGather
term shrinks relative to the total as models get deeper (32L/40L variants).
"""

from __future__ import annotations

import dataclasses


from repro import (
    ExecutionMode,
    InferenceConfig,
    make_decode_workload,
    paper_model,
    simulate_inference,
    vanilla_placement,
    wilkes3,
)
from repro.analysis.report import format_table

from conftest import publish

# (label, model key, gpus) following the paper's two panels
CASES = [
    ("8E / 8 GPUs", "gpt-m-350m-e8", 8),
    ("16E / 8 GPUs", "gpt-m-350m-e16", 8),
    ("16E / 16 GPUs", "gpt-m-350m-e16", 16),
    ("32E / 16 GPUs", "gpt-m-350m-e32", 16),
    ("32E / 32 GPUs", "gpt-m-350m-e32", 32),
    ("64E / 32 GPUs", "gpt-m-350m-e64", 32),
    ("64E / 64 GPUs", "gpt-m-350m-e64", 64),
    ("32E-32L / 32 GPUs", "gpt-m-470m-e32", 32),
    ("32E-40L / 32 GPUs", "gpt-m-590m-e32", 32),
]


def _run_case(key: str, gpus: int):
    model = paper_model(key)
    cluster = wilkes3(max(1, gpus // 4), gpus_per_node=min(4, gpus))
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8)
    placement = vanilla_placement(model.num_moe_layers, model.num_experts, gpus)
    workload = make_decode_workload(model, cluster, infer)

    base = simulate_inference(
        model, cluster, dataclasses.replace(infer, mode=ExecutionMode.VANILLA),
        placement, workload,
    )
    coh = simulate_inference(
        model, cluster, dataclasses.replace(infer, mode=ExecutionMode.CONTEXT_COHERENT),
        placement, workload,
    )
    return base, coh


def test_fig06_comm_overhead(benchmark, results_dir):
    benchmark.pedantic(lambda: _run_case("gpt-m-350m-e8", 8), rounds=1, iterations=1)

    rows = []
    checks = []
    for label, key, gpus in CASES:
        base, coh = _run_case(key, gpus)
        scale = base.breakdown.alltoall_s
        rows.append(
            [
                label,
                1.0,
                coh.breakdown.alltoall_s / scale,
                coh.breakdown.allgather_s / scale,
                (coh.breakdown.comm_s) / scale,
            ]
        )
        checks.append((coh.breakdown.alltoall_s / scale, coh.breakdown.comm_s / scale))

    table = format_table(
        [
            "configuration",
            "baseline alltoall",
            "coherent alltoall",
            "coherent allgather",
            "coherent total",
        ],
        rows,
        title="Fig 6 — communication latency scaled to the baseline Alltoall",
    )
    publish(results_dir, "fig06_comm_overhead", table)

    for a2a_ratio, total_ratio in checks:
        assert a2a_ratio < 0.55  # >50 % Alltoall reduction (paper Section V-B)
        assert total_ratio < 1.0  # total comm still below baseline

    # AllGather amortisation with depth: 24L vs 40L at the same width/GPUs
    ag_24 = rows[4][3]  # 32E (24L) / 32 GPUs
    ag_40 = rows[8][3]  # 32E-40L / 32 GPUs
    assert ag_40 < ag_24
