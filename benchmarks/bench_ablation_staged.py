"""Ablation — staged (node-first) vs flat single-stage placement.

The paper's Section IV-C argues inter-node crossings must be minimised
*first* because the inter-node tier is an order of magnitude slower.  This
ablation quantifies that: on a hierarchical cluster, the staged solver must
match or beat the flat solver on node locality and on actual simulated
communication time, even if its raw GPU locality is slightly lower.
"""

from __future__ import annotations


import numpy as np

from repro import (
    ExecutionMode,
    InferenceConfig,
    MarkovRoutingModel,
    paper_model,
    simulate_inference,
    wilkes3,
)
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import solve_placement
from repro.engine.workload import make_decode_workload

from conftest import publish


def _setup():
    model = paper_model("gpt-m-350m-e64")
    cluster = wilkes3(4)
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts, model.num_moe_layers, 0.85, rng=np.random.default_rng(0)
    )
    profile = routing.sample(3000, np.random.default_rng(1))
    infer = InferenceConfig(
        requests_per_gpu=8, prompt_len=64, generate_len=8, mode=ExecutionMode.EXFLOW
    )
    workload = make_decode_workload(model, cluster, infer, routing=routing)
    return model, cluster, infer, profile, workload


def test_ablation_staged(benchmark, results_dir):
    model, cluster, infer, profile, workload = benchmark.pedantic(
        _setup, rounds=1, iterations=1
    )

    rows = []
    outcomes = {}
    for strategy in ("ilp", "staged"):
        placement = solve_placement(strategy, profile, cluster)
        stats = placement_locality(placement, workload.flat_trace(), cluster)
        res = simulate_inference(model, cluster, infer, placement, workload)
        rows.append(
            [
                strategy,
                stats.gpu_stay_fraction,
                stats.node_stay_fraction,
                res.ledger.inter_node_bytes() / 2**20,
                res.breakdown.alltoall_s * 1e3,
            ]
        )
        outcomes[strategy] = (stats, res)

    table = format_table(
        ["solver", "GPU-stay", "node-stay", "inter-node MiB", "alltoall ms"],
        rows,
        title="Ablation — flat vs staged placement (MoE-64, 4 nodes x 4 GPUs)",
        precision=4,
    )
    publish(results_dir, "ablation_staged", table)

    flat_stats, flat_res = outcomes["ilp"]
    staged_stats, staged_res = outcomes["staged"]
    # stage 1's whole point: no worse on the expensive tier
    assert staged_stats.node_stay_fraction >= flat_stats.node_stay_fraction - 0.01
    assert staged_res.ledger.inter_node_bytes() <= flat_res.ledger.inter_node_bytes() * 1.05
