"""Ablation — placement solver quality vs the exact joint ILP.

On an instance small enough for the exact joint formulation (formulas 8-12
via HiGHS), compares every solver's kept-transition mass and locality.
Checks the design claims DESIGN.md makes: the chained-assignment solver
recovers (nearly) the joint optimum at a fraction of the cost, and both
dominate the greedy local heuristic.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ClusterConfig, MarkovRoutingModel
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.ilp import chain_objective
from repro.core.placement.registry import solve_placement

from conftest import publish

STRATEGIES = ("vanilla", "greedy", "local-search", "ilp", "ilp-joint", "staged")


def _instance():
    routing = MarkovRoutingModel.with_affinity(8, 4, 0.8, rng=np.random.default_rng(0))
    trace = routing.sample(1500, np.random.default_rng(1))
    cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
    return trace, cluster


def test_ablation_solvers(benchmark, results_dir):
    trace, cluster = _instance()
    weights = [trace.transition_counts(j).astype(float) for j in range(trace.num_layers - 1)]
    total_mass = sum(w.sum() for w in weights)

    benchmark.pedantic(
        lambda: solve_placement("ilp", trace, cluster), rounds=3, iterations=1
    )

    rows = []
    objectives = {}
    for strategy in STRATEGIES:
        kwargs = {"time_limit_s": 10.0} if strategy == "ilp-joint" else {}
        start = time.perf_counter()
        p = solve_placement(strategy, trace, cluster, **kwargs)
        solve_s = time.perf_counter() - start
        obj = chain_objective(p.gpu_of, weights)
        stats = placement_locality(p, trace, cluster)
        rows.append(
            [strategy, solve_s, obj / total_mass, stats.gpu_stay_fraction, stats.node_stay_fraction]
        )
        objectives[strategy] = obj

    table = format_table(
        ["solver", "solve time (s)", "kept mass fraction", "GPU-stay", "node-stay"],
        rows,
        title="Ablation — solver quality on MoE-8, 6 layers, 4 GPUs (2 nodes)",
        precision=4,
    )
    publish(results_dir, "ablation_solvers", table)

    joint = objectives["ilp-joint"]
    assert objectives["ilp"] >= 0.95 * joint  # chained solver near-optimal
    assert joint >= objectives["greedy"] - 1e-9  # joint ILP is the ceiling
    assert objectives["ilp"] >= objectives["vanilla"]
