"""Fig 12 — scaled expert affinity across training, per expert count.

Shape checks: affinity oscillates/dips in the early balancing phase and
then climbs steadily as experts specialise (Fig 12b: "expert affinity
steadily increases"), ending well above the memoryless floor.
"""

from __future__ import annotations


from repro.analysis.report import format_series
from repro.training.evolution import track_affinity_evolution

from conftest import publish

EXPERT_COUNTS = (8, 16, 32)


def _run(experts: int):
    return track_affinity_evolution(
        num_experts=experts,
        num_layers=4,
        total_iterations=240,
        checkpoints=13,
        probe_tokens=1024,
        seed=100 + experts,
    )


def test_fig12_affinity_evolution(benchmark, results_dir):
    benchmark.pedantic(lambda: _run(8), rounds=1, iterations=1)

    timelines = {e: _run(e) for e in EXPERT_COUNTS}
    any_tl = timelines[8]
    table = format_series(
        any_tl.iterations.tolist(),
        {f"{e} experts": tl.affinity.tolist() for e, tl in timelines.items()},
        x_label="iteration",
        title="Fig 12 — scaled expert affinity during training",
    )
    publish(results_dir, "fig12_affinity_evolution", table)

    for e, tl in timelines.items():
        # final affinity recovers above the post-collapse interior minimum
        assert tl.affinity_increased_overall(), f"{e} experts: no recovery"
        # and ends far above the memoryless floor of 0
        assert tl.affinity[-1] > 0.5, f"{e} experts: weak final affinity"
