"""Fleet-scale benchmark — vectorized tick engine vs event-heap oracle.

Two measurements, one artefact (``BENCH_fleet_scale.json``):

* **Tick vs oracle speedup** on two pinned mid-scale fleets.  The
  ``steady`` row is a partially overloaded 128-replica fleet where the
  shared per-step cost model dominates both engines (speedup is modest by
  construction); the ``surge`` row is a flash-overload spike where
  admission control sheds most of the offered load and the tick engine's
  windowed bulk-shed path does in one numpy pass what the oracle does one
  heap pop at a time.  The acceptance bar — a >= 10x speedup — is set on
  the surge row.  ``tests/test_fleet_equivalence.py`` separately proves
  both engines return identical ``FleetResult``s, so this table is pure
  performance accounting (the benchmark still cross-checks the headline
  counts of every timed pair).

* **Full-scale completion**: the ``fleet-scale-day`` preset — one million
  requests over 128 autoscaled replicas with a diurnal regime mix — run
  end to end on the tick engine, recording wall time and the day's
  serving account.  The oracle is not timed here (it takes tens of
  minutes); completing this scenario at all is the tick engine's
  acceptance test.

Runnable directly (``python benchmarks/bench_fleet_scale.py``, add
``--smoke`` for the CI-sized variant) or through pytest
(``pytest benchmarks/bench_fleet_scale.py -s``).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.analysis.report import format_table
from repro.config import ClusterConfig, FleetConfig, ModelConfig, ServingConfig
from repro.core.placement.registry import solve_placement
from repro.engine.serving import PlacementStepTimer, make_arrivals
from repro.fleet.engine import simulate_fleet_tick
from repro.fleet.reference import simulate_fleet_reference
from repro.fleet.requests import make_fleet_requests
from repro.trace.markov import MarkovRoutingModel

_MODEL = ModelConfig(
    name="bench-fleet", num_layers=4, num_experts=8, d_model=64, num_heads=4
)
_CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)
_SEED = 0
_TARGET_SPEEDUP = 10.0  # surge row, full scale
_SMOKE_TARGET_SPEEDUP = 1.5  # surge row, CI scale

# The two pinned comparison fleets.  ``steady`` keeps queues shallow so
# per-step model evaluation (shared by both engines) dominates; ``surge``
# offers ~40x capacity so bulk shedding dominates.
_COMPARISONS = {
    "steady": {
        "full": dict(num_requests=60_000, rate=2e7, replicas=128, slo_ms=20.0, max_queue=16),
        "smoke": dict(num_requests=2_000, rate=8e5, replicas=16, slo_ms=20.0, max_queue=16),
    },
    "surge": {
        "full": dict(num_requests=300_000, rate=2e8, replicas=128, slo_ms=5.0, max_queue=8),
        "smoke": dict(num_requests=20_000, rate=3e7, replicas=32, slo_ms=5.0, max_queue=8),
    },
}


def _build_fleet_workload(cfg: dict):
    """Arrivals, regimes, and placements for one pinned comparison fleet."""
    serving = ServingConfig(
        arrival="bursty",
        arrival_rate_rps=float(cfg["rate"]),
        num_requests=int(cfg["num_requests"]),
        generate_len=4,
        max_batch_requests=16,
        prompt_len=16,
        seed=_SEED,
    )
    fleet = FleetConfig(
        num_replicas=int(cfg["replicas"]),
        max_replicas=int(cfg["replicas"]),
        router="jsq",
        num_regimes=2,
        slo_ms=float(cfg["slo_ms"]),
        batch_slo_ms=10 * float(cfg["slo_ms"]),
        max_queue_per_replica=int(cfg["max_queue"]),
    )
    regimes = [
        MarkovRoutingModel.with_affinity(
            _MODEL.num_experts,
            _MODEL.num_moe_layers,
            0.9,
            rng=np.random.default_rng(_SEED + 101 * k),
        )
        for k in range(fleet.num_regimes)
    ]
    placements = [
        solve_placement(
            "staged",
            regimes[k].sample(2048, np.random.default_rng(_SEED + 7 + k)),
            _CLUSTER,
        )
        for k in range(fleet.num_regimes)
    ]
    base = make_arrivals(serving, np.random.default_rng(_SEED))
    requests = make_fleet_requests(base, fleet, rng=np.random.default_rng(_SEED + 5))
    return serving, fleet, regimes, placements, requests


def _time_engine(engine_fn, serving, fleet, regimes, placements, requests):
    """One timed run: fresh timer and rng so rounds are independent."""
    timer = PlacementStepTimer(_MODEL, _CLUSTER)
    t0 = time.perf_counter()
    result = engine_fn(
        requests,
        _MODEL,
        _CLUSTER,
        regimes,
        placements,
        fleet,
        max_batch_requests=serving.max_batch_requests,
        timer=timer,
        rng=np.random.default_rng(serving.seed + 9),
    )
    return time.perf_counter() - t0, result


def run_engine_comparison(smoke: bool = False, tick_rounds: int = 2):
    """Time both engines on the pinned fleets; return (rows, speedups dict).

    The oracle is timed once per fleet (it is the slow side and its noise
    only perturbs the speedup, not the winner); the tick engine takes the
    best of ``tick_rounds`` so its first-touch allocation cost is not
    billed to the comparison.
    """
    variant = "smoke" if smoke else "full"
    rows = []
    speedups: dict[str, float] = {}
    for regime_name, configs in _COMPARISONS.items():
        setup = _build_fleet_workload(configs[variant])
        serving = setup[0]
        t_tick, r_tick = _time_engine(simulate_fleet_tick, *setup)
        for _ in range(tick_rounds - 1):
            t_again, _ = _time_engine(simulate_fleet_tick, *setup)
            t_tick = min(t_tick, t_again)
        t_event, r_event = _time_engine(simulate_fleet_reference, *setup)
        if (len(r_tick.completed), len(r_tick.shed), r_tick.gpu_hours) != (
            len(r_event.completed),
            len(r_event.shed),
            r_event.gpu_hours,
        ):
            raise AssertionError(
                f"engines disagree on {regime_name!r} — equivalence suite should have caught this"
            )
        speedups[regime_name] = t_event / t_tick
        rows.append(
            [
                regime_name,
                serving.num_requests,
                len(r_tick.completed),
                len(r_tick.shed),
                t_event,
                t_tick,
                t_event / t_tick,
            ]
        )
    return rows, speedups


def run_full_day(smoke: bool = False):
    """Run the fleet-scale-day preset end to end; return (wall_s, report)."""
    import repro

    name = "fleet-scale-day-smoke" if smoke else "fleet-scale-day"
    t0 = time.perf_counter()
    report = repro.run(name)
    return time.perf_counter() - t0, report


def _json_payload(rows, speedups, day_wall_s, day_report, smoke: bool) -> dict:
    """The ``BENCH_fleet_scale.json`` record: pinned configs + timings.

    Schema keys asserted by CI: ``bench``, ``smoke``, ``comparisons``,
    ``surge_speedup``, ``target_speedup``, ``full_day``.  Wall times are
    machine-dependent; the speedup column and the full-day serving account
    are the cross-machine-comparable signals.
    """
    return {
        "bench": "fleet_scale",
        "smoke": smoke,
        "comparisons": [
            {
                "regime": regime,
                "offered_requests": offered,
                "served": served,
                "shed": shed,
                "event_engine_s": t_event,
                "tick_engine_s": t_tick,
                "speedup": speedup,
            }
            for regime, offered, served, shed, t_event, t_tick, speedup in rows
        ],
        "surge_speedup": speedups["surge"],
        "target_speedup": _SMOKE_TARGET_SPEEDUP if smoke else _TARGET_SPEEDUP,
        "full_day": {
            "scenario": day_report.scenario,
            "wall_s": day_wall_s,
            "completed": day_report.completed,
            "shed": day_report.shed,
            "shed_fraction": day_report.shed_fraction,
            "peak_replicas": day_report.peak_replicas,
            "slo_attainment": day_report.slo_attainment,
            "makespan_s": day_report.makespan_s,
            "generated_tokens": day_report.generated_tokens,
            "gpu_hours": day_report.gpu_hours,
        },
    }


def _format(rows, day_wall_s, day_report, smoke: bool) -> str:
    table = format_table(
        ["fleet", "offered", "served", "shed", "event engine s", "tick engine s", "speedup"],
        rows,
        title="Fleet engine speed — tick vs event-heap oracle"
        + (" (smoke)" if smoke else ""),
    )
    day = (
        f"\nfull day ({day_report.scenario}): {day_report.completed:,} served / "
        f"{day_report.shed:,} shed, peak {day_report.peak_replicas} replicas, "
        f"{day_wall_s:.1f}s wall"
    )
    return table + day


def test_fleet_scale(benchmark, results_dir):
    from conftest import publish, publish_json

    rows, speedups = run_engine_comparison(smoke=True)
    benchmark.pedantic(
        lambda: run_engine_comparison(smoke=True, tick_rounds=1), rounds=1, iterations=1
    )
    day_wall_s, day_report = run_full_day(smoke=True)
    publish(results_dir, "fleet_scale_smoke", _format(rows, day_wall_s, day_report, smoke=True))
    payload = _json_payload(rows, speedups, day_wall_s, day_report, smoke=True)
    publish_json(results_dir, "BENCH_fleet_scale_smoke", payload)

    # acceptance (CI scale): the vectorized engine must clearly win the
    # surge fleet even at smoke size; the >= 10x bar is enforced on the
    # committed full-scale artefact by the CI artefact check.
    assert speedups["surge"] >= _SMOKE_TARGET_SPEEDUP
    assert day_report.completed + day_report.shed == 2000


def main() -> int:
    import argparse

    from conftest import publish_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: small fleets, the smoke day preset",
    )
    args = parser.parse_args()

    rows, speedups = run_engine_comparison(smoke=args.smoke)
    day_wall_s, day_report = run_full_day(smoke=args.smoke)
    table = _format(rows, day_wall_s, day_report, smoke=args.smoke)
    print(table)
    target = _SMOKE_TARGET_SPEEDUP if args.smoke else _TARGET_SPEEDUP
    print(f"\nsurge speedup: {speedups['surge']:.1f}x (target >= {target:g}x)")

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    name = "BENCH_fleet_scale_smoke" if args.smoke else "BENCH_fleet_scale"
    payload = _json_payload(rows, speedups, day_wall_s, day_report, smoke=args.smoke)
    out = publish_json(results, name, payload)
    (results / ("fleet_scale_smoke.txt" if args.smoke else "fleet_scale.txt")).write_text(
        table + "\n"
    )
    print(f"machine-readable trajectory: {out}")
    return 0 if speedups["surge"] >= target else 1


if __name__ == "__main__":
    raise SystemExit(main())
