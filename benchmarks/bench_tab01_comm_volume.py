"""Table I — forward communication volume per framework.

Evaluates the analytic volume formulas with the routing fractions the
engine actually *measures* on the paper's MoE-32 / 4-node configuration,
so the table's ``p`` and ``p*`` are empirical, not assumed.
"""

from __future__ import annotations


from repro import InferenceConfig, compare_modes, paper_model, wilkes3
from repro.analysis.report import format_table
from repro.analysis.tables import comm_volume_table

from conftest import publish


def _measured_fractions(seed: int = 0) -> tuple[float, float, dict]:
    """Measure p (baseline cross-GPU fraction) and p* (ExFlow's) by running
    both modes on one workload."""
    model = paper_model("gpt-m-350m-e32")
    cluster = wilkes3(4)
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8)
    rows = compare_modes(model, cluster, infer, seed=seed)
    p = 1.0 - rows["deepspeed"].result.gpu_stay_fraction
    p_star = 1.0 - rows["exflow"].result.gpu_stay_fraction
    meta = {
        "G": cluster.num_gpus,
        "N": infer.requests_per_gpu,
        "L": model.num_moe_layers,
    }
    return p, p_star, meta


def test_tab01_comm_volume(benchmark, results_dir):
    p, p_star, meta = benchmark(_measured_fractions)
    g, n, L = meta["G"], meta["N"], meta["L"]
    rows = comm_volume_table(g, n, L, p=p, p_star=p_star)

    table = format_table(
        ["framework", "top-1 volume", "top-2 volume", "inference-ready"],
        [
            [r.framework, r.top1, r.top2, "yes" if r.applicable_in_inference else "no"]
            for r in rows
        ],
        title=(
            f"Table I — forward comm volume (token units), G={g} N={n} L={L}, "
            f"measured p={p:.3f}, p*={p_star:.3f}"
        ),
        precision=0,
    )
    publish(results_dir, "tab01_comm_volume", table)

    ds = next(r for r in rows if r.framework == "Deepspeed-MoE")
    ex = next(r for r in rows if r.framework == "ExFlow")
    # the paper's structural claim: ExFlow volume below DeepSpeed's in both
    # gating modes at measured fractions
    assert ex.top1 < ds.top1
    assert ex.top2 < ds.top2
    assert ex.applicable_in_inference
