"""Ablation — top-1 vs top-2 gating under ExFlow.

Table I shows top-2 gating doubles the Alltoall volume term; this ablation
measures how the extra secondary-expert traffic changes the absolute
communication cost and whether affinity placement still pays off (it
should: secondary choices share the primary's affinity structure).
"""

from __future__ import annotations

import dataclasses


from repro import GatingKind, InferenceConfig, compare_modes, paper_model, wilkes3
from repro.analysis.report import format_table

from conftest import publish


def _run(gating: GatingKind):
    model = dataclasses.replace(paper_model("gpt-m-350m-e32"), gating=gating)
    cluster = wilkes3(4)
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8)
    return compare_modes(model, cluster, infer, seed=0)


def test_ablation_topk(benchmark, results_dir):
    benchmark.pedantic(lambda: _run(GatingKind.TOP1), rounds=1, iterations=1)

    rows = []
    results = {}
    for gating in (GatingKind.TOP1, GatingKind.TOP2):
        comparison = _run(gating)
        ds, ex = comparison["deepspeed"], comparison["exflow"]
        rows.append(
            [
                gating.value,
                ds.result.ledger.bytes_of("alltoall") / 2**20,
                ex.result.ledger.bytes_of("alltoall") / 2**20,
                ex.speedup,
                comparison["exflow-noaff"].speedup,
            ]
        )
        results[gating] = comparison

    table = format_table(
        [
            "gating",
            "DeepSpeed alltoall MiB",
            "ExFlow alltoall MiB",
            "ExFlow speedup",
            "coherence-only speedup",
        ],
        rows,
        title="Ablation — gating arity (MoE-32, 4 nodes x 4 GPUs)",
    )
    publish(results_dir, "ablation_topk", table)

    # top-2 moves substantially more Alltoall bytes than top-1 in the baseline
    assert results[GatingKind.TOP2]["deepspeed"].result.ledger.bytes_of(
        "alltoall"
    ) > 1.5 * results[GatingKind.TOP1]["deepspeed"].result.ledger.bytes_of("alltoall")
    # context coherence keeps paying off under top-2; the affinity increment
    # shrinks because secondary-expert hops are not placement-optimised (the
    # paper's own models are top-1, Table II) — allow it to be a wash
    assert results[GatingKind.TOP2]["exflow"].speedup > 1.1
    assert (
        results[GatingKind.TOP2]["exflow"].speedup
        >= results[GatingKind.TOP2]["exflow-noaff"].speedup - 0.05
    )
    # top-1's affinity increment is the clear one
    assert (
        results[GatingKind.TOP1]["exflow"].speedup
        > results[GatingKind.TOP1]["exflow-noaff"].speedup
    )
