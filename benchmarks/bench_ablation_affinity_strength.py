"""Ablation — how much affinity must the model have before placement pays?

Sweeps the routing model's affinity dial from memoryless (0.0) to
near-deterministic (0.95) and measures ExFlow's advantage over the
context-coherent baseline.  Checks the intuition DESIGN.md records: with no
affinity there is (almost) nothing to exploit; the advantage grows
monotonically with affinity strength.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import (
    ExecutionMode,
    InferenceConfig,
    MarkovRoutingModel,
    paper_model,
    simulate_inference,
    vanilla_placement,
    wilkes3,
)
from repro.analysis.report import format_table
from repro.core.placement.registry import solve_placement
from repro.engine.workload import make_decode_workload

from conftest import publish

AFFINITIES = (0.0, 0.3, 0.6, 0.85, 0.95)


def _advantage(affinity: float) -> tuple[float, float]:
    model = paper_model("gpt-m-350m-e32")
    cluster = wilkes3(4)
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=6)
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts, model.num_moe_layers, affinity, rng=np.random.default_rng(7)
    )
    profile = routing.sample(3000, np.random.default_rng(8))
    workload = make_decode_workload(model, cluster, infer, routing=routing)

    base_placement = vanilla_placement(
        model.num_moe_layers, model.num_experts, cluster.num_gpus
    )
    aff_placement = solve_placement("staged", profile, cluster)
    coherent = dataclasses.replace(infer, mode=ExecutionMode.CONTEXT_COHERENT)
    exflow = dataclasses.replace(infer, mode=ExecutionMode.EXFLOW)
    base = simulate_inference(model, cluster, coherent, base_placement, workload)
    opt = simulate_inference(model, cluster, exflow, aff_placement, workload)
    return base.breakdown.alltoall_s / opt.breakdown.alltoall_s, opt.gpu_stay_fraction


def test_ablation_affinity_strength(benchmark, results_dir):
    benchmark.pedantic(lambda: _advantage(0.85), rounds=1, iterations=1)

    rows = []
    speedups = []
    for a in AFFINITIES:
        speedup, stay = _advantage(a)
        rows.append([a, speedup, stay])
        speedups.append(speedup)

    table = format_table(
        ["routing affinity", "alltoall speedup vs coherent baseline", "GPU-stay"],
        rows,
        title="Ablation — placement payoff vs model affinity strength (MoE-32)",
    )
    publish(results_dir, "ablation_affinity_strength", table)

    # memoryless routing leaves placement nearly nothing to exploit
    assert speedups[0] < 1.1
    # payoff grows with affinity and is substantial at trained-model levels
    assert all(b >= a - 0.03 for a, b in zip(speedups, speedups[1:], strict=False))
    assert speedups[-1] > 1.25
