"""Ablation — successor collisions and the capacity-1 crossover.

Real checkpoints' routing funnels several experts into shared popular
successors; our Markov router exposes this as a ``collision`` dial.  The
paper observes that ExFlow's gains shrink when each GPU holds a single
expert per layer — precisely the regime where colliding successors cannot
all be co-located.  This bench measures the affinity placement's locality
across (collision, experts-per-GPU) and checks the interaction: collisions
hurt much more at capacity 1 than at capacity 8.
"""

from __future__ import annotations

import numpy as np

from repro import MarkovRoutingModel
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.ilp import ilp_placement

from conftest import publish

COLLISIONS = (0.0, 0.3, 0.6)
GPU_COUNTS = (4, 8, 16, 32)  # MoE-32: 8, 4, 2, 1 experts per GPU


def _stay(collision: float, gpus: int) -> float:
    routing = MarkovRoutingModel.with_affinity(
        32, 24, 0.85, rng=np.random.default_rng(5), collision=collision
    )
    profile = routing.sample(3000, np.random.default_rng(6))
    serving = routing.sample(6000, np.random.default_rng(7))
    placement = ilp_placement(profile, gpus)
    return placement_locality(placement, serving).gpu_stay_fraction


def test_ablation_collision(benchmark, results_dir):
    benchmark.pedantic(lambda: _stay(0.3, 8), rounds=1, iterations=1)

    grid = {c: [_stay(c, g) for g in GPU_COUNTS] for c in COLLISIONS}
    rows = [
        [f"collision={c}", *grid[c]]
        for c in COLLISIONS
    ]
    table = format_table(
        ["router", *(f"{g} GPUs ({32 // g}/GPU)" for g in GPU_COUNTS)],
        rows,
        title="Ablation — ExFlow GPU-stay vs successor collisions and capacity",
    )
    publish(results_dir, "ablation_collision", table)

    # collisions always cost locality...
    for i, _g in enumerate(GPU_COUNTS):
        assert grid[0.0][i] >= grid[0.6][i] - 0.02
    # ...and cost *relatively* more at capacity 1 than at capacity 8 —
    # the mechanism behind the paper's shrinking gains at scale
    loss_cap8 = (grid[0.0][0] - grid[0.6][0]) / grid[0.0][0]
    loss_cap1 = (grid[0.0][-1] - grid[0.6][-1]) / grid[0.0][-1]
    assert loss_cap1 > loss_cap8
