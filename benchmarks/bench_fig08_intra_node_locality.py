"""Fig 8 — % tokens staying on their current node, 1-16 nodes.

Same replay as Fig 7 but at node granularity, exercising the staged
placement's first stage (inter-node crossing minimisation).  Shape checks:
node locality falls with node count; ExFlow roughly doubles the baseline's
intra-node fraction (the paper: "tokens are average 2x more likely to stay
within the same node").
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, MarkovRoutingModel, paper_model
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement

from conftest import publish

NODE_COUNTS = (1, 2, 4, 8, 16)


def _setup():
    model = paper_model("gpt-m-350m-e64")
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts, model.num_moe_layers, 0.85, rng=np.random.default_rng(0)
    )
    profile = routing.sample(3000, np.random.default_rng(1))
    serving = routing.sample(8000, np.random.default_rng(2))
    return model, profile, serving


def test_fig08_intra_node_locality(benchmark, results_dir):
    model, profile, serving = benchmark.pedantic(_setup, rounds=1, iterations=1)

    rows = []
    ratios = []
    node_series = []
    for nodes in NODE_COUNTS:
        cluster = ClusterConfig(num_nodes=nodes, gpus_per_node=4)
        van = vanilla_placement(model.num_moe_layers, model.num_experts, cluster.num_gpus)
        aff = solve_placement("staged", profile, cluster)
        s_van = placement_locality(van, serving, cluster)
        s_aff = placement_locality(aff, serving, cluster)
        reduction = 1.0 - (
            s_aff.inter_node_crossings_per_token / s_van.inter_node_crossings_per_token
            if s_van.inter_node_crossings_per_token
            else 0.0
        )
        rows.append([nodes, s_van.node_stay_fraction, s_aff.node_stay_fraction, reduction])
        node_series.append(s_aff.node_stay_fraction)
        if nodes > 1:
            ratios.append(s_aff.node_stay_fraction / max(s_van.node_stay_fraction, 1e-9))

    table = format_table(
        ["nodes", "DeepSpeed node-stay", "ExFlow node-stay", "inter-node comm reduction"],
        rows,
        title="Fig 8 — tokens staying on the same node (MoE-64, 4 GPUs/node)",
    )
    publish(results_dir, "fig08_intra_node_locality", table)

    assert all(a >= b - 1e-9 for a, b in zip(node_series, node_series[1:], strict=False))
    # paper: ~2x more likely to stay in-node; require a clear multiple
    assert np.mean(ratios) > 1.5
