"""Schema + invariant checks for the committed ``BENCH_*.json`` artefacts.

One checker per benchmark family, dispatched on the ``bench`` key every
payload carries.  CI runs this over the committed artefacts and the
fresh smoke ones the workflow just regenerated, so a PR that changes a
payload shape or regresses a pinned floor (tick-engine speedup, chaos
availability ordering, profiler accounting, detection recall) fails
loudly instead of silently rotting the trajectory files.

Pure stdlib on purpose: the checks must hold on the artefacts as bytes
on disk, independent of the library that produced them.

Usage::

    python benchmarks/check_artifacts.py             # every results/BENCH_*.json
    python benchmarks/check_artifacts.py PATH [...]  # specific artefacts
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def check_fleet_scale(doc: dict, path: str) -> str:
    keys = {"bench", "smoke", "comparisons", "surge_speedup", "target_speedup", "full_day"}
    row_keys = {
        "regime",
        "offered_requests",
        "served",
        "shed",
        "event_engine_s",
        "tick_engine_s",
        "speedup",
    }
    missing = keys - doc.keys()
    assert not missing, f"{path}: missing keys {sorted(missing)}"
    assert {"steady", "surge"} == {c["regime"] for c in doc["comparisons"]}
    for row in doc["comparisons"]:
        assert row_keys <= row.keys(), f"{path}: bad comparison row {row}"
    floor = 1.5 if doc["smoke"] else 10.0
    assert doc["surge_speedup"] >= floor, (
        f"{path}: surge speedup {doc['surge_speedup']:.2f} < {floor}"
    )
    assert doc["full_day"]["completed"] + doc["full_day"]["shed"] > 0
    return f"surge {doc['surge_speedup']:.1f}x"


def check_chaos(doc: dict, path: str) -> str:
    keys = {"bench", "smoke", "wall_s", "arms", "autoscaled_availability", "static_availability"}
    arm_keys = {
        "scenario",
        "completed",
        "shed",
        "shed_fraction",
        "failures",
        "lost",
        "retries",
        "availability",
        "goodput_rps",
        "latency_p95_s",
        "usd_per_million_tokens",
        "mean_time_to_recover_s",
        "peak_replicas",
    }
    missing = keys - doc.keys()
    assert not missing, f"{path}: missing keys {sorted(missing)}"
    assert {"autoscaled", "static"} == set(doc["arms"])
    for arm, rec in doc["arms"].items():
        assert arm_keys <= rec.keys(), f"{path}: bad {arm} record"
        assert rec["goodput_rps"] > 0, f"{path}: {arm} goodput is zero"
    assert doc["autoscaled_availability"] >= doc["static_availability"], (
        f"{path}: autoscaling lost the bad day"
    )
    assert doc["arms"]["autoscaled"]["failures"] >= 1
    assert doc["arms"]["autoscaled"]["mean_time_to_recover_s"] > 0
    return (
        f"availability {doc['autoscaled_availability']:.2%} autoscaled vs "
        f"{doc['static_availability']:.2%} static"
    )


def check_profile(doc: dict, path: str) -> str:
    keys = {"bench", "smoke", "scenario", "total_s", "phase_s", "fractions", "overhead"}
    phases = {"routing", "admission", "pricing", "bookkeeping"}
    missing = keys - doc.keys()
    assert not missing, f"{path}: missing keys {sorted(missing)}"
    assert set(doc["phase_s"]) == phases, f"{path}: phases {sorted(doc['phase_s'])}"
    assert doc["total_s"] > 0.0, f"{path}: empty profile"
    total_frac = sum(doc["fractions"].values())
    assert abs(total_frac - 1.0) < 1e-6, f"{path}: fractions sum to {total_frac}"
    assert all(f >= 0.0 for f in doc["fractions"].values()), f"{path}: negative fraction"
    overhead = doc["overhead"]
    overhead_keys = {
        "bare_wall_s",
        "recorded_wall_s",
        "monitored_wall_s",
        "overhead_frac",
        "detector_overhead_frac",
    }
    missing = overhead_keys - overhead.keys()
    assert not missing, f"{path}: overhead missing {sorted(missing)}"
    # the detector's stated bound: its marginal cost stays under one bare run
    assert overhead["detector_overhead_frac"] < 1.0, (
        f"{path}: detector overhead {overhead['detector_overhead_frac']:.1%} >= 100%"
    )
    return (
        f"pricing {doc['fractions']['pricing']:.0%} of {doc['total_s']:.1f}s, "
        f"detector {overhead['detector_overhead_frac']:+.1%}"
    )


def check_detect(doc: dict, path: str) -> str:
    keys = {
        "bench",
        "smoke",
        "wall_s",
        "arms",
        "outage_recall",
        "outage_precision",
        "median_detection_latency_s",
        "brownout_recall",
        "clean_false_alarms",
    }
    missing = keys - doc.keys()
    assert not missing, f"{path}: missing keys {sorted(missing)}"
    assert {"bad_day", "steady"} == set(doc["arms"])
    bad = doc["arms"]["bad_day"]
    assert bad["outages"]["observable_events"] >= 1, f"{path}: nothing observable"
    assert doc["outage_recall"] >= 0.9, (
        f"{path}: outage recall {doc['outage_recall']:.2f} < 0.9"
    )
    assert doc["median_detection_latency_s"] > 0.0, f"{path}: zero detection latency"
    assert bad["pages"] >= 1, f"{path}: the bad day never paged"
    assert doc["clean_false_alarms"] == 0, (
        f"{path}: {doc['clean_false_alarms']} false alarm(s) on the clean arm"
    )
    assert doc["arms"]["steady"]["slo_ok"], f"{path}: clean arm violated its SLO"
    return (
        f"recall {doc['outage_recall']:.0%}, "
        f"MTTD {doc['median_detection_latency_s'] * 1e3:.2f} ms, clean arm silent"
    )


def check_engine_speed(doc: dict, path: str) -> str:
    missing = {"bench", "config", "geomean_speedup", "modes", "target_speedup"} - doc.keys()
    assert not missing, f"{path}: missing keys {sorted(missing)}"
    assert doc["modes"], f"{path}: no modes measured"
    assert doc["geomean_speedup"] > 0.0, f"{path}: nonpositive speedup"
    return f"geomean {doc['geomean_speedup']:.2f}x"


def check_fig16_fleet(doc: dict, path: str) -> str:
    missing = {"bench", "config", "flash", "routing", "smoke"} - doc.keys()
    assert not missing, f"{path}: missing keys {sorted(missing)}"
    assert doc["routing"], f"{path}: no routing rows"
    return f"{len(doc['routing'])} routing rows"


CHECKERS = {
    "fleet_scale": check_fleet_scale,
    "chaos": check_chaos,
    "profile": check_profile,
    "detect": check_detect,
    "engine_speed": check_engine_speed,
    "fig16_fleet": check_fig16_fleet,
}


def check_path(path: Path) -> str:
    with open(path) as fh:
        doc = json.load(fh)
    assert isinstance(doc, dict), f"{path}: not a JSON object"
    bench = doc.get("bench")
    checker = CHECKERS.get(bench)
    assert checker is not None, f"{path}: unknown bench kind {bench!r}"
    return checker(doc, str(path))


def main(argv: list[str]) -> int:
    paths = [Path(a) for a in argv] or sorted(RESULTS_DIR.glob("BENCH_*.json"))
    if not paths:
        print(f"error: no BENCH_*.json artefacts under {RESULTS_DIR}", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        try:
            detail = check_path(path)
        except AssertionError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failed = True
        else:
            print(f"ok   {path}: {detail}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
