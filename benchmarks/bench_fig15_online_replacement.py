"""Fig 15 (extension) — online drift-aware re-placement during serving.

The paper solves expert placement once from a static profiling trace; its
own Fig 12 (affinity evolving across training) and Tab 3 (affinity shifting
across corpora) show the assumption decaying.  This benchmark quantifies
what that costs a live serving system and what the online re-placement loop
(streaming affinity estimator -> kept-mass degradation trigger ->
warm-started local-search re-solve -> explicit migration charge) buys back.

For each drift scenario (gradual Markov interpolation, abrupt regime
switch, diurnal mixture) the same bursty arrival sequence is served twice:
once with the offline placement frozen (static arm) and once with a
:class:`~repro.core.online.ReplacementPolicy` active (online arm).  Both
arms pay identical scheduling; the online arm additionally pays every
migration stall on its latency timeline.

Shape checks: under the abrupt switch — the adversarial case, where the
offline placement's entire affinity structure is invalidated mid-run — the
online arm must recover at least 50% of the kept-transition-mass the static
arm loses, while completing every request with migration cost included in
the reported p95.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.scenarios import get_scenario
from repro.scenarios import run as run_scenario

from conftest import publish

DRIFTS = ("gradual", "abrupt", "diurnal")


def _run_pair(drift: str, smoke: bool = False):
    """Serve one drift scenario with the placement frozen vs online.

    Both arms come from the registry: the online arm is the
    ``fig15-<drift>`` preset itself; the static arm is the same spec with
    the replacement section stripped (placement frozen, identical drift
    and scheduling).
    """
    online_spec = get_scenario(f"fig15-{drift}" + ("-smoke" if smoke else ""))
    static_spec = dataclasses.replace(
        online_spec, name=f"{online_spec.name}-static", replacement=None
    )
    static = run_scenario(static_spec).raw
    online = run_scenario(online_spec).raw
    return online_spec.serving, static, online


def _kept_phases(result, switch_t: float):
    """Mean true kept mass before the drift midpoint and at the run's tail."""
    pre = [s.true_kept for s in result.kept_timeline if s.time_s < switch_t]
    tail = [s.true_kept for s in result.kept_timeline[-10:]]
    before = float(np.mean(pre[3:] if len(pre) > 3 else pre)) if pre else float("nan")
    return before, float(np.mean(tail))


def run(smoke: bool = False) -> tuple[str, dict]:
    rows = []
    checks: dict = {}
    for drift in DRIFTS:
        serving, static, online = _run_pair(drift, smoke)
        switch_t = 0.5 * serving.num_requests / serving.arrival_rate_rps
        kept_before, static_after = _kept_phases(static, switch_t)
        _, online_after = _kept_phases(online, switch_t)
        lost = kept_before - static_after
        recovery = (online_after - static_after) / lost if lost > 1e-9 else float("nan")
        rows.append(
            [
                drift,
                f"{static.serving.latency.p95_s * 1e3:.2f}",
                f"{online.serving.latency.p95_s * 1e3:.2f}",
                f"{kept_before:.1%}",
                f"{static_after:.1%}",
                f"{online_after:.1%}",
                f"{recovery:.0%}" if np.isfinite(recovery) else "-",
                online.num_replacements,
                sum(e.moved_experts for e in online.events),
                f"{online.migration_stall_s * 1e3:.2f}",
            ]
        )
        checks[drift] = {
            "serving": serving,
            "static": static,
            "online": online,
            "kept_before": kept_before,
            "static_after": static_after,
            "online_after": online_after,
            "recovery": recovery,
        }

    from repro.analysis.report import format_table

    table = format_table(
        [
            "drift",
            "static p95 ms",
            "online p95 ms",
            "kept before",
            "static after",
            "online after",
            "recovered",
            "migrations",
            "moved experts",
            "stall ms",
        ],
        rows,
        title=(
            "Fig 15 — static vs online re-placement under routing drift "
            "(migration stalls charged to the online latency timeline)"
        ),
    )
    return table, checks


def _assert_claims(checks: dict) -> None:
    for drift, c in checks.items():
        static, online, serving = c["static"], c["online"], c["serving"]
        # both arms serve every request; the static arm never migrates
        assert len(static.serving.completed) == serving.num_requests, drift
        assert len(online.serving.completed) == serving.num_requests, drift
        assert static.num_replacements == 0 and static.migration_stall_s == 0.0
        # every migration is accounted: events carry positive stalls that sum
        # to the timeline charge the latency percentiles already include
        assert online.migration_stall_s == sum(e.stall_s for e in online.events)
        for e in online.events:
            assert e.stall_s > 0 and e.moved_experts > 0

    abrupt = checks["abrupt"]
    # the headline claim: online re-placement claws back >= 50% of the
    # kept-transition mass the abrupt switch destroyed
    assert abrupt["online"].num_replacements >= 1
    assert abrupt["online"].migration_stall_s > 0
    assert abrupt["kept_before"] - abrupt["static_after"] > 0.1  # drift really hurt
    assert abrupt["recovery"] >= 0.5, f"recovered only {abrupt['recovery']:.0%}"


def test_fig15_online_replacement(benchmark, results_dir):
    benchmark.pedantic(lambda: _run_pair("abrupt", smoke=True), rounds=1, iterations=1)

    table, checks = run(smoke=False)
    publish(results_dir, "fig15_online_replacement", table)
    _assert_claims(checks)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI: same pipeline, seconds not minutes",
    )
    args = parser.parse_args()
    table, checks = run(smoke=args.smoke)
    print(table)
    _assert_claims(checks)
    print("fig15 claims hold")
