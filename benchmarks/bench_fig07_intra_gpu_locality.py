"""Fig 7 — % tokens staying on their current GPU, MoE-64 across 1-64 GPUs.

Replays serving traffic under DeepSpeed's placement and ExFlow's affinity
placement and reports, per expert-parallel size, the fraction of layer
transitions that stay on the token's current GPU plus the resulting
reduction in cross-GPU communication volume.

Shape checks (paper Section V-C): locality falls as GPUs increase; ExFlow
stays far above the baseline at every size (paper: >50 % on 4 GPUs, 40 % on
8, 28 % on 32); the cross-GPU traffic reduction is substantial throughout.
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, MarkovRoutingModel, paper_model
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement

from conftest import publish

GPU_COUNTS = (1, 4, 8, 16, 32, 64)


def _setup():
    model = paper_model("gpt-m-350m-e64")
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts, model.num_moe_layers, 0.85, rng=np.random.default_rng(0)
    )
    profile = routing.sample(3000, np.random.default_rng(1))
    serving = routing.sample(8000, np.random.default_rng(2))
    return model, profile, serving


def test_fig07_intra_gpu_locality(benchmark, results_dir):
    model, profile, serving = benchmark.pedantic(_setup, rounds=1, iterations=1)

    rows = []
    series = {}
    for gpus in GPU_COUNTS:
        cluster = ClusterConfig(num_nodes=max(1, gpus // 4), gpus_per_node=min(4, gpus))
        van = vanilla_placement(model.num_moe_layers, model.num_experts, gpus)
        aff = solve_placement("staged", profile, cluster)
        s_van = placement_locality(van, serving, cluster)
        s_aff = placement_locality(aff, serving, cluster)
        reduction = 1.0 - (
            s_aff.crossings_per_token / s_van.crossings_per_token
            if s_van.crossings_per_token
            else 0.0
        )
        rows.append(
            [gpus, s_van.gpu_stay_fraction, s_aff.gpu_stay_fraction, reduction]
        )
        series[gpus] = (s_van.gpu_stay_fraction, s_aff.gpu_stay_fraction)

    table = format_table(
        ["GPUs", "DeepSpeed stay", "ExFlow w. affinity stay", "cross-GPU comm reduction"],
        rows,
        title="Fig 7 — tokens staying on the same GPU (MoE-64, 24 layers)",
    )
    publish(results_dir, "fig07_intra_gpu_locality", table)

    stays = [series[g][1] for g in GPU_COUNTS[1:]]
    assert all(a >= b - 1e-9 for a, b in zip(stays, stays[1:], strict=False))  # falls with scale
    for g in GPU_COUNTS[1:]:
        assert series[g][1] > series[g][0] + 0.1  # ExFlow >> baseline
    assert series[4][1] > 0.4  # paper: over half on 4 GPUs
    assert series[32][1] > 0.2  # paper: ~28 % on 32 GPUs
