"""Fig 11 — expert routing proportions at the last MoE layer during early
training (iterations 0-200 at proxy scale, one panel per expert count).

Shape checks (paper Section V-F): training starts with "a few experts
getting most of tokens" (pronounced skew within the first iterations) and
the GShard balance loss then produces a far more uniform distribution.
"""

from __future__ import annotations


from repro.analysis.report import format_series
from repro.training.evolution import track_affinity_evolution

from conftest import publish

EXPERT_COUNTS = (8, 16, 32, 64)


def _run(experts: int):
    return track_affinity_evolution(
        num_experts=experts,
        num_layers=4,
        total_iterations=200,
        checkpoints=11,
        probe_tokens=1024,
        seed=experts,
    )


def test_fig11_training_balance(benchmark, results_dir):
    benchmark.pedantic(lambda: _run(8), rounds=1, iterations=1)

    timelines = {e: _run(e) for e in EXPERT_COUNTS}
    any_tl = timelines[8]
    table = format_series(
        any_tl.iterations.tolist(),
        {f"{e}E max share": tl.last_layer_share.max(axis=1).tolist() for e, tl in timelines.items()},
        x_label="iteration",
        title="Fig 11 — hottest expert's token share at the last MoE layer",
    )
    imb = format_series(
        any_tl.iterations.tolist(),
        {f"{e}E imbalance": tl.imbalance.tolist() for e, tl in timelines.items()},
        x_label="iteration",
    )
    publish(results_dir, "fig11_training_balance", table + "\n\n" + imb)

    for e, tl in timelines.items():
        peak_early = tl.imbalance[: len(tl.imbalance) // 2].max()
        late = tl.imbalance[-3:].min()
        assert peak_early > 1.8, f"{e} experts: no early skew (peak {peak_early:.2f})"
        assert late < peak_early, f"{e} experts: balance never recovered"
