"""Fig 10 — end-to-end inference throughput across the seven model variants.

For each pre-trained variant of Table II and each expert-parallel size the
paper uses, runs DeepSpeed-style vanilla, ExFlow w/o affinity and full
ExFlow on one frozen workload and reports normalised throughput.

Every panel executes through the Scenario facade (``repro.run``); the
headline panels are the registered ``fig10-*`` presets, the rest are
inline :class:`~repro.Scenario` specs of the same shape — the
``compare_modes`` comparison dict each run produced is on ``report.raw``.

Shape checks: ExFlow w. affinity is the best strategy in every multi-node
configuration; its advantage comes on top of context coherence; and the
single-node (4 GPU) cases show little gain (the paper: "there is not much
performance gain" when Alltoall is NVLink-only).
"""

from __future__ import annotations


from repro import Scenario, get_scenario, paper_model, run
from repro.scenarios.registry import fig10_panel
from repro.analysis.report import format_table

from conftest import publish

# (model key, list of GPU counts) mirroring the paper's seven panels
PANELS = [
    ("gpt-m-350m-e8", [4, 8]),
    ("gpt-m-350m-e16", [4, 8, 16]),
    ("gpt-m-350m-e32", [8, 16, 32]),
    ("gpt-m-350m-e64", [8, 16, 32, 64]),
    ("gpt-m-470m-e32", [8, 16, 32]),
    ("gpt-m-590m-e32", [8, 16, 32]),
    ("gpt-xl-1.3b-e16", [8, 16]),
]

# panels that are registered scenario presets; the rest build inline specs
_REGISTERED = {
    ("gpt-m-350m-e32", 16): "fig10-end-to-end",
    ("gpt-xl-1.3b-e16", 8): "fig10-xl",
    ("gpt-m-350m-e8", 4): "fig10-single-node",
}


def _panel_scenario(key: str, gpus: int) -> Scenario:
    preset = _REGISTERED.get((key, gpus))
    if preset is not None:
        return get_scenario(preset)
    # same builder the registry presets use — panels can't silently diverge
    return fig10_panel(key, gpus)


def _run_panel(key: str, gpus: int):
    return run(_panel_scenario(key, gpus)).raw


def test_fig10_end_to_end(benchmark, results_dir):
    benchmark.pedantic(lambda: _run_panel("gpt-m-350m-e8", 8), rounds=1, iterations=1)

    rows = []
    multi_node_ok = []
    single_node_gain = []
    for key, gpu_list in PANELS:
        for gpus in gpu_list:
            comparison = _run_panel(key, gpus)
            ds = comparison["deepspeed"]
            na = comparison["exflow-noaff"]
            ex = comparison["exflow"]
            rows.append(
                [
                    paper_model(key).name,
                    gpus,
                    1.0,
                    na.speedup,
                    ex.speedup,
                    ex.result.gpu_stay_fraction,
                ]
            )
            if gpus > 4:
                # ExFlow's win scales with how comm-bound the baseline is;
                # the compute-heavy XL variant has less to save (its Fig 10
                # panel also shows the smallest gains in the paper)
                floor = 1.2 if ds.result.alltoall_fraction > 0.5 else 0.95
                multi_node_ok.append(
                    ex.speedup >= na.speedup - 1e-9 and ex.speedup > floor
                )
            else:
                single_node_gain.append(ex.speedup)

    table = format_table(
        [
            "model",
            "GPUs",
            "DeepSpeed",
            "ExFlow w/o affinity",
            "ExFlow w. affinity",
            "GPU-stay",
        ],
        rows,
        title="Fig 10 — normalised inference throughput (DeepSpeed = 1.0)",
    )
    publish(results_dir, "fig10_end_to_end", table)

    assert all(multi_node_ok)
    # 4-GPU single-node cases: modest effect either way (paper: ~no gain)
    for s in single_node_gain:
        assert 0.85 < s < 1.4
