"""Fig 10 — end-to-end inference throughput across the seven model variants.

For each pre-trained variant of Table II and each expert-parallel size the
paper uses, runs DeepSpeed-style vanilla, ExFlow w/o affinity and full
ExFlow on one frozen workload and reports normalised throughput.

Shape checks: ExFlow w. affinity is the best strategy in every multi-node
configuration; its advantage comes on top of context coherence; and the
single-node (4 GPU) cases show little gain (the paper: "there is not much
performance gain" when Alltoall is NVLink-only).
"""

from __future__ import annotations


from repro import InferenceConfig, compare_modes, paper_model, wilkes3
from repro.analysis.report import format_table

from conftest import publish

# (model key, list of GPU counts) mirroring the paper's seven panels
PANELS = [
    ("gpt-m-350m-e8", [4, 8]),
    ("gpt-m-350m-e16", [4, 8, 16]),
    ("gpt-m-350m-e32", [8, 16, 32]),
    ("gpt-m-350m-e64", [8, 16, 32, 64]),
    ("gpt-m-470m-e32", [8, 16, 32]),
    ("gpt-m-590m-e32", [8, 16, 32]),
    ("gpt-xl-1.3b-e16", [8, 16]),
]


def _run_panel(key: str, gpus: int):
    model = paper_model(key)
    cluster = wilkes3(max(1, gpus // 4), gpus_per_node=min(4, gpus))
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8)
    return compare_modes(model, cluster, infer, seed=gpus)


def test_fig10_end_to_end(benchmark, results_dir):
    benchmark.pedantic(lambda: _run_panel("gpt-m-350m-e8", 8), rounds=1, iterations=1)

    rows = []
    multi_node_ok = []
    single_node_gain = []
    for key, gpu_list in PANELS:
        for gpus in gpu_list:
            comparison = _run_panel(key, gpus)
            ds = comparison["deepspeed"]
            na = comparison["exflow-noaff"]
            ex = comparison["exflow"]
            rows.append(
                [
                    paper_model(key).name,
                    gpus,
                    1.0,
                    na.speedup,
                    ex.speedup,
                    ex.result.gpu_stay_fraction,
                ]
            )
            if gpus > 4:
                # ExFlow's win scales with how comm-bound the baseline is;
                # the compute-heavy XL variant has less to save (its Fig 10
                # panel also shows the smallest gains in the paper)
                floor = 1.2 if ds.result.alltoall_fraction > 0.5 else 0.95
                multi_node_ok.append(
                    ex.speedup >= na.speedup - 1e-9 and ex.speedup > floor
                )
            else:
                single_node_gain.append(ex.speedup)

    table = format_table(
        [
            "model",
            "GPUs",
            "DeepSpeed",
            "ExFlow w/o affinity",
            "ExFlow w. affinity",
            "GPU-stay",
        ],
        rows,
        title="Fig 10 — normalised inference throughput (DeepSpeed = 1.0)",
    )
    publish(results_dir, "fig10_end_to_end", table)

    assert all(multi_node_ok)
    # 4-GPU single-node cases: modest effect either way (paper: ~no gain)
    for s in single_node_gain:
        assert 0.85 < s < 1.4
