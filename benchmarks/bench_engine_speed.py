"""Engine micro-benchmark — vectorized batched executor vs loop oracle.

Times both executors on the Fig 10 end-to-end configuration (the largest
panel: MoE-GPT-M-350M-E64 on 16 nodes x 4 GPUs) under all three execution
modes, and records the wall-time speedup of the batched engine.  The
acceptance bar is a >= 5x geometric-mean speedup; the equivalence suite
separately guarantees both engines produce identical results, so this
table is pure performance accounting.

Runnable directly (``python benchmarks/bench_engine_speed.py``) or through
pytest (``pytest benchmarks/bench_engine_speed.py -s``).
"""

from __future__ import annotations

import dataclasses
import time
from functools import partial
from pathlib import Path

from repro import InferenceConfig, paper_model, wilkes3
from repro.analysis.report import format_table
from repro.config import ExecutionMode, geometric_mean
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.executor import simulate_inference
from repro.engine.reference import simulate_inference_reference
from repro.engine.workload import make_decode_workload


def _best_of(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def run_speed_comparison(rounds: int = 3):
    """Return (table rows, per-mode speedups) for the Fig 10 configuration."""
    model = paper_model("gpt-m-350m-e64")
    cluster = wilkes3(16)  # 64 GPUs — the paper's largest expert-parallel size
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8)
    placement = vanilla_placement(
        model.num_moe_layers, model.num_experts, cluster.num_gpus
    )
    workload = make_decode_workload(model, cluster, infer)

    rows = []
    speedups = []
    for mode in ExecutionMode:
        cfg = dataclasses.replace(infer, mode=mode)
        t_vec = _best_of(
            partial(simulate_inference, model, cluster, cfg, placement, workload),
            rounds,
        )
        t_ref = _best_of(
            partial(simulate_inference_reference, model, cluster, cfg, placement, workload),
            rounds,
        )
        speedups.append(t_ref / t_vec)
        rows.append([mode.value, t_ref * 1e3, t_vec * 1e3, t_ref / t_vec])
    return rows, speedups


def _json_payload(rows, speedups, rounds: int) -> dict:
    """The ``BENCH_engine.json`` record: config + wall times + speedups.

    This is the machine-readable perf trajectory: future PRs diff it to see
    whether the batched engine got faster or slower on the pinned Fig 10
    configuration (absolute times are machine-dependent; the speedup column
    is the cross-machine-comparable signal).
    """
    return {
        "bench": "engine_speed",
        "config": {
            "model": "gpt-m-350m-e64",
            "num_nodes": 16,
            "gpus_per_node": 4,
            "requests_per_gpu": 8,
            "prompt_len": 64,
            "generate_len": 8,
            "rounds": rounds,
        },
        "modes": [
            {
                "mode": mode,
                "loop_engine_ms": loop_ms,
                "batched_engine_ms": batched_ms,
                "speedup": speedup,
            }
            for mode, loop_ms, batched_ms, speedup in rows
        ],
        "geomean_speedup": geometric_mean(speedups),
        "target_speedup": 5.0,
    }


def _format(rows) -> str:
    return format_table(
        ["mode", "loop engine ms", "batched engine ms", "speedup"],
        rows,
        title="Engine speed — Fig 10 config (MoE-350M-E64, 16x4 GPUs, 8 iters)",
    )


def test_engine_speed(benchmark, results_dir):
    from conftest import publish, publish_json

    rows, speedups = run_speed_comparison()
    benchmark.pedantic(lambda: run_speed_comparison(rounds=1), rounds=1, iterations=1)
    publish(results_dir, "engine_speed", _format(rows))
    publish_json(results_dir, "BENCH_engine", _json_payload(rows, speedups, rounds=3))

    # acceptance: >= 5x on the Fig 10 end-to-end configuration
    assert geometric_mean(speedups) >= 5.0
    assert all(s > 1.0 for s in speedups)


def main() -> int:
    from conftest import publish_json

    rows, speedups = run_speed_comparison()
    table = _format(rows)
    print(table)
    gm = geometric_mean(speedups)
    print(f"\ngeometric-mean speedup: {gm:.1f}x (target >= 5x)")
    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "engine_speed.txt").write_text(table + "\n")
    out = publish_json(results, "BENCH_engine", _json_payload(rows, speedups, rounds=3))
    print(f"machine-readable trajectory: {out}")
    return 0 if gm >= 5.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
