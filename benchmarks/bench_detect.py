"""Detection benchmark — the SLO monitor scored against chaos ground truth.

Two SLO-monitored arms, same detector defaults:

* **bad-day** — the autoscaled ``fleet-bad-day`` preset (a crash, a spot
  preemption, a brownout window) with an :class:`~repro.obs.slo.SloSpec`
  attached.  The blind :class:`~repro.obs.detect.SignalDetector` watches
  only the benign hook stream; :func:`~repro.obs.detect.score_against_chaos`
  grades it against the injected schedule.
* **steady** — the adequately provisioned ``fleet-steady-day`` preset:
  chaos-free, zero shed.  The monitor must stay completely silent (no
  burn-rate alerts, no observed outages, no observed brownouts).

The committed artefact (``BENCH_detect.json``) records recall, precision
and detection latency on the bad day plus the clean arm's false-alarm
count; CI re-runs the smoke variant and schema-checks both artefacts
(recall >= 0.9 on observable outages, clean-arm false positives == 0).

Runnable directly (``python benchmarks/bench_detect.py``, add ``--smoke``
for the CI-sized variant) or through pytest
(``pytest benchmarks/bench_detect.py -s``).
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.obs.slo import SloSpec
from repro.scenarios import TelemetrySpec, run
from repro.scenarios.registry import fleet_bad_day, fleet_steady_day
from repro.scenarios.report import SimReport


def _arms(smoke: bool):
    bad_day = fleet_bad_day(autoscale=True, smoke=smoke)
    bad_day = dataclasses.replace(bad_day, telemetry=TelemetrySpec(slo=SloSpec()))
    steady = fleet_steady_day(smoke=smoke)
    assert steady.telemetry is not None and steady.telemetry.slo is not None
    return {"bad_day": bad_day, "steady": steady}


def run_detection(smoke: bool = False) -> dict[str, SimReport]:
    """Run both monitored arms; reports keyed by arm name."""
    return {
        arm: run(scenario, keep_raw=False)
        for arm, scenario in _arms(smoke).items()
    }


def _arm_record(r: SimReport) -> dict:
    scored = r.detection["scored"]
    pages = sum(1 for a in r.alerts if a.get("severity") == "page")
    warns = sum(1 for a in r.alerts if a.get("severity") == "warn")
    return {
        "scenario": r.scenario,
        "completed": r.completed,
        "shed": r.shed,
        "lost": r.lost,
        "failures": r.failures,
        "pages": pages,
        "warns": warns,
        "slo_ok": bool(r.slo.get("ok")),
        "outages": scored["outages"],
        "brownouts": scored["brownouts"],
    }


def _format(records: dict[str, dict], smoke: bool) -> str:
    rows = []
    for arm, rec in records.items():
        out, bro = rec["outages"], rec["brownouts"]
        rows.append(
            [
                arm,
                f"{rec['pages']}/{rec['warns']}",
                f"{out['detected']}/{out['observable_events']}",
                f"{out['recall']:.0%}",
                f"{out['precision']:.0%}",
                out["detection_latency"]["median_s"] * 1e3,
                f"{bro['detected']}/{bro['true_events']}",
                out["false_alarms"] + bro["false_alarms"],
                "yes" if rec["slo_ok"] else "no",
            ]
        )
    return format_table(
        [
            "arm",
            "pages/warns",
            "outages det",
            "recall",
            "precision",
            "MTTD ms",
            "brownouts det",
            "false alarms",
            "SLO met",
        ],
        rows,
        title="Signal-driven detection vs chaos ground truth"
        + (" (smoke)" if smoke else ""),
    )


def _json_payload(records: dict[str, dict], wall_s: float, smoke: bool) -> dict:
    """The ``BENCH_detect.json`` record.

    Schema keys asserted by CI (``benchmarks/check_artifacts.py``):
    ``bench``, ``smoke``, ``arms`` with ``bad_day``/``steady`` records,
    ``outage_recall`` >= 0.9, ``median_detection_latency_s`` > 0 and
    ``clean_false_alarms`` == 0.  Wall time is machine-dependent; the
    detection scores are the cross-machine-comparable signal.
    """
    bad, clean = records["bad_day"], records["steady"]
    return {
        "bench": "detect",
        "smoke": smoke,
        "wall_s": wall_s,
        "arms": records,
        "outage_recall": bad["outages"]["recall"],
        "outage_precision": bad["outages"]["precision"],
        "median_detection_latency_s": bad["outages"]["detection_latency"]["median_s"],
        "brownout_recall": bad["brownouts"]["recall"],
        "clean_false_alarms": (
            clean["pages"]
            + clean["warns"]
            + clean["outages"]["observed_events"]
            + clean["brownouts"]["observed_events"]
        ),
    }


def _check(records: dict[str, dict]) -> None:
    """The invariants CI re-asserts on the committed artefact."""
    bad, clean = records["bad_day"], records["steady"]
    # the bad day is actually observable, and the blind detector sees it
    assert bad["outages"]["observable_events"] >= 1
    assert bad["outages"]["recall"] >= 0.9
    assert bad["outages"]["detection_latency"]["median_s"] > 0.0
    assert bad["brownouts"]["detected"] >= 1
    assert bad["pages"] >= 1  # the burn evaluator pages on the incident
    # the clean arm stays completely silent
    assert clean["pages"] == 0 and clean["warns"] == 0
    assert clean["outages"]["observed_events"] == 0
    assert clean["brownouts"]["observed_events"] == 0
    assert clean["slo_ok"]


def test_detect(benchmark, results_dir):
    from conftest import publish, publish_json

    t0 = time.perf_counter()
    reports = run_detection(smoke=True)
    wall_s = time.perf_counter() - t0
    benchmark.pedantic(lambda: run_detection(smoke=True), rounds=1, iterations=1)
    records = {arm: _arm_record(r) for arm, r in reports.items()}
    _check(records)
    publish(results_dir, "detect_smoke", _format(records, smoke=True))
    publish_json(results_dir, "BENCH_detect_smoke", _json_payload(records, wall_s, smoke=True))


def main() -> int:
    import argparse

    from conftest import publish_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized variant of both arms"
    )
    args = parser.parse_args()

    t0 = time.perf_counter()
    reports = run_detection(smoke=args.smoke)
    wall_s = time.perf_counter() - t0
    records = {arm: _arm_record(r) for arm, r in reports.items()}
    table = _format(records, smoke=args.smoke)
    print(table)
    _check(records)

    results = Path(__file__).parent / "results"
    name = "BENCH_detect_smoke" if args.smoke else "BENCH_detect"
    out = publish_json(results, name, _json_payload(records, wall_s, smoke=args.smoke))
    (results / ("detect_smoke.txt" if args.smoke else "detect.txt")).write_text(table + "\n")
    print(f"machine-readable trajectory: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
