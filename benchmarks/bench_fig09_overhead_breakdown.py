"""Fig 9 — Alltoall's share of runtime under vanilla expert parallelism.

Runs the baseline engine on 1/2/4/8 nodes and decomposes runtime into the
four operations the paper measures (gating, Alltoall, attention, expert
FFN).  Paper values: 15.3 % / 62.5 % / 70.2 % / 76.0 % Alltoall share —
the cost model is calibrated to land in this band, and the shape check
requires the steep single-node -> multi-node jump and monotone growth.
"""

from __future__ import annotations



from repro import (
    ExecutionMode,
    InferenceConfig,
    make_decode_workload,
    paper_model,
    simulate_inference,
    vanilla_placement,
    wilkes3,
)
from repro.analysis.report import format_table

from conftest import publish

NODE_COUNTS = (1, 2, 4, 8)
PAPER_SHARES = {1: 0.153, 2: 0.625, 4: 0.702, 8: 0.760}


def _run(nodes: int):
    model = paper_model("gpt-m-350m-e32")
    cluster = wilkes3(nodes)
    infer = InferenceConfig(
        requests_per_gpu=8, prompt_len=64, generate_len=8, mode=ExecutionMode.VANILLA
    )
    placement = vanilla_placement(
        model.num_moe_layers, model.num_experts, cluster.num_gpus
    )
    workload = make_decode_workload(model, cluster, infer)
    return simulate_inference(model, cluster, infer, placement, workload)


def test_fig09_overhead_breakdown(benchmark, results_dir):
    benchmark.pedantic(lambda: _run(2), rounds=1, iterations=1)

    rows = []
    shares = {}
    for nodes in NODE_COUNTS:
        res = _run(nodes)
        b = res.breakdown
        total = b.total_s
        rows.append(
            [
                nodes,
                b.gating_s / total,
                b.alltoall_s / total,
                b.attention_s / total,
                b.expert_ffn_s / total,
                PAPER_SHARES[nodes],
            ]
        )
        shares[nodes] = b.alltoall_s / total

    table = format_table(
        ["nodes", "gating", "alltoall", "attention", "expert FFN", "paper alltoall"],
        rows,
        title="Fig 9 — vanilla runtime decomposition (GPT 350M MoE-32)",
    )
    publish(results_dir, "fig09_overhead_breakdown", table)

    # monotone growth and the steep 1 -> 2 node jump
    vals = [shares[n] for n in NODE_COUNTS]
    assert all(a < b for a, b in zip(vals, vals[1:], strict=False))
    assert shares[2] > 2.5 * shares[1]
    # calibrated band: within 15 percentage points of the paper at each size
    for n in NODE_COUNTS:
        assert abs(shares[n] - PAPER_SHARES[n]) < 0.15
