"""Figs 14-16 (appendix) — multi-hop affinity: layer j to all later layers.

Estimates ``P(E_{p, j'} | E_{i, j})`` for every forward layer pair of the
12-layer MoE-32 proxy model and reports each pair's top-2 row concentration.
Shape checks: affinity is strongest between adjacent layers and decays (but
stays above chance) as the hop distance grows — the appendix heatmaps'
visual message.
"""

from __future__ import annotations

import numpy as np

from repro import ModelConfig, MoETransformer, collect_trace, make_corpus
from repro.analysis.heatmap import ascii_heatmap
from repro.analysis.report import format_table
from repro.core.affinity import multi_hop_affinity

from conftest import publish


def _profile():
    config = ModelConfig(
        name="gpt-350m-moe32-proxy",
        num_layers=12,
        num_experts=32,
        d_model=64,
        vocab_size=512,
        num_heads=4,
    )
    model = MoETransformer(config, np.random.default_rng(0))
    corpus = make_corpus("pile", vocab_size=512, num_topics=32)
    return collect_trace(model, corpus, 4000, rng=np.random.default_rng(1))


def _weighted_top2(matrix: np.ndarray, trace, layer: int) -> float:
    mass = trace.layer_histogram(layer).astype(float)
    mass /= mass.sum()
    top2 = np.sort(matrix, axis=1)[:, -2:].sum(axis=1)
    return float((top2 * mass).sum())


def test_fig14_multihop_affinity(benchmark, results_dir):
    trace = benchmark.pedantic(_profile, rounds=1, iterations=1)
    L = trace.num_layers
    chance = 2 / trace.num_experts

    rows = []
    by_distance: dict[int, list[float]] = {}
    for j in range(L - 1):
        row = [j]
        for jp in range(1, L):
            if jp <= j:
                row.append(float("nan"))
                continue
            conc = _weighted_top2(multi_hop_affinity(trace, j, jp), trace, j)
            row.append(conc)
            by_distance.setdefault(jp - j, []).append(conc)
        rows.append(row)

    table = format_table(
        ["from\\to", *(str(j) for j in range(1, L))],
        rows,
        title="Figs 14-16 — top-2 affinity mass, layer j -> layer j' "
        f"(chance {chance:.3f})",
    )
    sample = ascii_heatmap(
        multi_hop_affinity(trace, 0, L - 1),
        title=f"layer 0 -> layer {L - 1} affinity heatmap",
    )
    publish(results_dir, "fig14_multihop_affinity", table + "\n" + sample)

    means = {d: float(np.mean(v)) for d, v in by_distance.items()}
    assert means[1] > means[max(means)]  # adjacent > farthest
    for d, m in means.items():
        assert m > chance, f"distance {d}: affinity fell to chance"
