"""Fig 2 — inter-layer expert affinity heatmaps (12-layer MoE-32).

Profiles synthetic-Pile tokens through a real numpy MoE decoder with the
paper's layer/expert shape and renders the four consecutive-layer
conditional-probability matrices.  The quantitative claim checked: every
heatmap row concentrates most of its mass on a few columns — far above the
memoryless baseline.
"""

from __future__ import annotations

import numpy as np

from repro import ModelConfig, MoETransformer, collect_trace, make_corpus
from repro.analysis.heatmap import ascii_heatmap
from repro.core.affinity import affinity_concentration, affinity_matrix

from conftest import publish

LAYER_PAIRS = [(0, 1), (3, 4), (7, 8), (10, 11)]


def _profile_trace():
    config = ModelConfig(
        name="gpt-350m-moe32-proxy",
        num_layers=12,
        num_experts=32,
        d_model=64,
        vocab_size=512,
        num_heads=4,
    )
    model = MoETransformer(config, np.random.default_rng(0))
    corpus = make_corpus("pile", vocab_size=512, num_topics=32)
    return collect_trace(model, corpus, 3000, doc_len=32, rng=np.random.default_rng(1))


def test_fig02_affinity_heatmaps(benchmark, results_dir):
    trace = benchmark.pedantic(_profile_trace, rounds=1, iterations=1)

    blocks = []
    concentrations = []
    chance = 2 / trace.num_experts
    for prev, nxt in LAYER_PAIRS:
        conc = affinity_concentration(trace, prev, top=2)
        concentrations.append(conc)
        blocks.append(
            ascii_heatmap(
                affinity_matrix(trace, prev),
                title=(
                    f"Fig 2 panel: layers {prev} -> {nxt} "
                    f"(top-2 row mass {conc:.2f}, chance {chance:.2f})"
                ),
            )
        )
    publish(results_dir, "fig02_affinity_heatmaps", "\n".join(blocks))

    # paper's claim: "for each row ... only a few columns are red"
    for conc in concentrations:
        assert conc > 3 * chance
