"""Shared benchmark helpers.

Every benchmark regenerates one paper table/figure: it computes the
rows/series, prints them (run with ``-s`` to see them live), and persists
them under ``benchmarks/results/`` so EXPERIMENTS.md can be assembled from
the exact artefacts.  The ``benchmark`` fixture times a representative
kernel of each experiment so ``pytest benchmarks/ --benchmark-only`` doubles
as a performance regression suite for the library itself.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a result block and persist it for EXPERIMENTS.md."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def publish_json(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist a machine-readable result next to the human-readable table.

    ``BENCH_*.json`` files are the perf trajectory future PRs diff against:
    sorted keys and a trailing newline keep the artefacts byte-stable for a
    given (config, machine), so a regression shows up as a clean diff.
    """
    results_dir.mkdir(exist_ok=True)
    path = results_dir / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
