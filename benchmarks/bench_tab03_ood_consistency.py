"""Table III — affinity consistency on out-of-distribution datasets.

Profiles expert affinity on the synthetic "pile" corpus through a real
numpy MoE model, fits the staged placement, then measures intra-GPU and
intra-node locality on "c4", "dolma" and "yelp" token streams.  Numbers are
row-normalised to the pile column, exactly like the paper's table, whose
values all sit between 0.98 and 1.01.
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, ModelConfig, MoETransformer, collect_trace, make_corpus
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import solve_placement

from conftest import publish

DATASETS = ("pile", "c4", "dolma", "yelp")


def _setup():
    config = ModelConfig(
        name="gpt-350m-moe32-proxy",
        num_layers=12,
        num_experts=32,
        d_model=64,
        vocab_size=512,
        num_heads=4,
    )
    model = MoETransformer(config, np.random.default_rng(0))
    cluster = ClusterConfig(num_nodes=2, gpus_per_node=4)
    pile = make_corpus("pile", vocab_size=512, num_topics=32)
    profile = collect_trace(model, pile, 3000, rng=np.random.default_rng(1))
    placement = solve_placement("staged", profile, cluster)
    return model, cluster, placement


def test_tab03_ood_consistency(benchmark, results_dir):
    model, cluster, placement = benchmark.pedantic(_setup, rounds=1, iterations=1)

    gpu_stay = {}
    node_stay = {}
    for i, name in enumerate(DATASETS):
        corpus = make_corpus(name, vocab_size=512, num_topics=32)
        trace = collect_trace(model, corpus, 2000, rng=np.random.default_rng(10 + i))
        stats = placement_locality(placement, trace, cluster)
        gpu_stay[name] = stats.gpu_stay_fraction
        node_stay[name] = stats.node_stay_fraction

    rows = [
        ["Intra-GPU", *(gpu_stay[d] / gpu_stay["pile"] for d in DATASETS)],
        ["Intra-Node", *(node_stay[d] / node_stay["pile"] for d in DATASETS)],
    ]
    table = format_table(
        ["locality", *DATASETS],
        rows,
        title="Table III — locality under the pile-profiled placement, "
        "row-normalised to pile (paper: 0.98-1.01 everywhere)",
    )
    raw = format_table(
        ["locality", *DATASETS],
        [
            ["Intra-GPU (raw)", *(gpu_stay[d] for d in DATASETS)],
            ["Intra-Node (raw)", *(node_stay[d] for d in DATASETS)],
        ],
    )
    publish(results_dir, "tab03_ood_consistency", table + "\n\n" + raw)

    # affinity is an intrinsic model property: OOD ratios stay near 1.0
    for d in ("c4", "dolma", "yelp"):
        assert gpu_stay[d] / gpu_stay["pile"] > 0.85
        assert node_stay[d] / node_stay["pile"] > 0.85
