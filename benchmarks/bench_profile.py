"""Simulator self-profiling — where does fleet-engine wall time go?

Runs the ``fleet-scale-day`` preset (tick engine) with a
:class:`repro.obs.profile.PhaseProfiler` attached and publishes the
wall-time split across the engine's phases — ``routing`` (router
choose calls), ``admission`` (SLO assessment), ``pricing`` (placement
step/admission cost evaluation plus expert-path sampling) and
``bookkeeping`` (the derived remainder) — as ``BENCH_profile.json``.
The four fractions sum to exactly 1.0 by construction; CI asserts this
on the artefact, so the payload doubles as a schema check for the
profiler itself.

A second measurement times the same preset bare, with a
:class:`~repro.obs.recorder.TimelineRecorder` attached, and with the
full monitoring stack (recorder plus the blind
:class:`~repro.obs.detect.SignalDetector` behind a ``TeeRecorder``),
recording the telemetry layer's observation overhead and the detector's
marginal cost on top of it.  The recorder overhead has no pinned
acceptance bar (wall times are machine-dependent); the detector's
marginal overhead is bounded — it must stay under 100% of the bare run
(``detector_overhead_frac < 1.0``, asserted here and on the committed
artefact), since it does O(1) work per hook and an O(replicas) sweep per
expected step.

Runnable directly (``python benchmarks/bench_profile.py``, add
``--smoke`` for the CI-sized variant) or through pytest
(``pytest benchmarks/bench_profile.py -s``).
"""

from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.analysis.report import format_table
from repro.obs.detect import SignalDetector
from repro.obs.profile import PROFILE_PHASES, PhaseProfiler
from repro.obs.recorder import TeeRecorder, TimelineRecorder

_FULL_SCENARIO = "fleet-scale-day"
_SMOKE_SCENARIO = "fleet-scale-day-smoke"


def run_profile(smoke: bool = False):
    """Profile one full run; return (scenario_name, report, PhaseProfile)."""
    name = _SMOKE_SCENARIO if smoke else _FULL_SCENARIO
    profiler = PhaseProfiler()
    report = repro.run(name, keep_raw=False, profiler=profiler)
    return name, report, profiler.profile()


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` calls — the robust estimator
    for short runs, where OS scheduling noise only ever adds time."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_overhead(smoke: bool = False, repeats: int | None = None):
    """Time the preset bare, recorded, and fully monitored.

    The third arm tees the hook stream to a :class:`SignalDetector` next
    to the recorder — the exact wiring ``run()`` uses when a scenario
    declares an SLO — so ``detector_overhead_frac`` is the detector's
    marginal cost relative to the bare run.

    Each arm is timed best-of-``repeats``: default 3 for the sub-second
    smoke preset (whose single-shot timings are noise-dominated on shared
    CI runners, where one slow monitored run against one fast bare run
    could flake the detector bound) and 1 for the full preset, whose
    multi-minute arms are stable without the 3x wall-time cost.
    """
    name = _SMOKE_SCENARIO if smoke else _FULL_SCENARIO
    if repeats is None:
        repeats = 3 if smoke else 1
    bare_s = _best_of(lambda: repro.run(name, keep_raw=False), repeats)
    recorded_s = _best_of(
        lambda: repro.run(name, keep_raw=False, recorder=TimelineRecorder()),
        repeats,
    )
    monitored_s = _best_of(
        lambda: repro.run(
            name,
            keep_raw=False,
            recorder=TeeRecorder((TimelineRecorder(), SignalDetector())),
        ),
        repeats,
    )
    return {
        "bare_wall_s": bare_s,
        "recorded_wall_s": recorded_s,
        "monitored_wall_s": monitored_s,
        "overhead_frac": (recorded_s - bare_s) / bare_s if bare_s > 0 else 0.0,
        "detector_overhead_frac": (
            (monitored_s - recorded_s) / bare_s if bare_s > 0 else 0.0
        ),
    }


def _json_payload(name: str, report, profile, overhead: dict, smoke: bool) -> dict:
    """The ``BENCH_profile.json`` record.

    Schema keys asserted by CI: ``bench``, ``smoke``, ``scenario``,
    ``total_s``, ``phase_s``, ``fractions`` (must sum to ~1.0),
    ``overhead``.  Wall seconds are machine-dependent; the fractions and
    the overhead ratio are the cross-machine-comparable signals.
    """
    return {
        "bench": "profile",
        "smoke": smoke,
        "scenario": name,
        "completed": report.completed,
        "shed": report.shed,
        "makespan_s": report.makespan_s,
        "total_s": profile.total_s,
        "phase_s": dict(profile.phase_s),
        "fractions": profile.fractions,
        "overhead": overhead,
    }


def _format(name: str, profile, overhead: dict, smoke: bool) -> str:
    rows = [
        [phase, profile.phase_s[phase], profile.fractions[phase]]
        for phase in PROFILE_PHASES
    ]
    rows.append(["total", profile.total_s, sum(profile.fractions.values())])
    table = format_table(
        ["phase", "wall s", "fraction"],
        rows,
        title=f"Simulator self-profile — {name}" + (" (smoke)" if smoke else ""),
    )
    extra = (
        f"\ntelemetry overhead: bare {overhead['bare_wall_s']:.2f}s vs recorded "
        f"{overhead['recorded_wall_s']:.2f}s ({overhead['overhead_frac']:+.1%})"
        f"\ndetector overhead: monitored {overhead['monitored_wall_s']:.2f}s "
        f"({overhead['detector_overhead_frac']:+.1%} of bare, bound < 100%)"
    )
    return table + extra


def test_profile(benchmark, results_dir):
    from conftest import publish, publish_json

    name, report, profile = run_profile(smoke=True)
    benchmark.pedantic(lambda: run_profile(smoke=True), rounds=1, iterations=1)
    overhead = run_overhead(smoke=True)
    publish(results_dir, "profile_smoke", _format(name, profile, overhead, smoke=True))
    payload = _json_payload(name, report, profile, overhead, smoke=True)
    publish_json(results_dir, "BENCH_profile_smoke", payload)

    # the profiler's core contract: every phase reported, fractions sum to 1
    assert set(profile.phase_s) == set(PROFILE_PHASES)
    assert profile.total_s > 0.0
    assert abs(sum(profile.fractions.values()) - 1.0) < 1e-9
    assert report.completed + report.shed == 2000
    # the detector's stated bound: its marginal cost stays under one bare run
    assert overhead["detector_overhead_frac"] < 1.0


def main() -> int:
    import argparse

    from conftest import publish_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized variant: the smoke day preset"
    )
    args = parser.parse_args()

    name, report, profile = run_profile(smoke=args.smoke)
    overhead = run_overhead(smoke=args.smoke)
    table = _format(name, profile, overhead, smoke=args.smoke)
    print(table)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    out_name = "BENCH_profile_smoke" if args.smoke else "BENCH_profile"
    payload = _json_payload(name, report, profile, overhead, smoke=args.smoke)
    out = publish_json(results, out_name, payload)
    (results / ("profile_smoke.txt" if args.smoke else "profile.txt")).write_text(table + "\n")
    print(f"machine-readable trajectory: {out}")
    return 0 if abs(sum(profile.fractions.values()) - 1.0) < 1e-9 else 1


if __name__ == "__main__":
    raise SystemExit(main())
