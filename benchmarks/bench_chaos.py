"""Bad-day benchmark — autoscaled vs static fleet under the same faults.

One seeded "bad day" (a replica crash, a spot preemption, a brownout
window) is replayed against two arms that differ only in autoscaling:

* **autoscaled** — the registered ``fleet-bad-day`` preset: three
  replicas with reactive queue-depth scaling up to eight, retry-with-
  backoff serving, and replacement replicas ordered through the priced
  cold-start path the moment a fault lands.
* **static** — the same scenario with autoscaling off, derived with
  ``dataclasses.replace`` so the workload, fault schedule and retry
  policy are byte-identical.

The offered load overloads the initial three replicas, so the static arm
spends the day shedding at the queue cap while the autoscaled arm grows
past the faults.  The committed artefact (``BENCH_chaos.json``) records
both arms' shed fraction, goodput, p95, unit cost and mean
time-to-recover; CI schema-checks it (goodput > 0 on both arms,
autoscaled availability >= static) and re-runs the smoke variant.

Runnable directly (``python benchmarks/bench_chaos.py``, add ``--smoke``
for the CI-sized variant) or through pytest
(``pytest benchmarks/bench_chaos.py -s``).
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.scenarios import run
from repro.scenarios.registry import fleet_bad_day
from repro.scenarios.report import SimReport


def _arms(smoke: bool):
    """The two scenario arms: identical bad day, autoscaling on/off."""
    autoscaled = fleet_bad_day(autoscale=True, smoke=smoke)
    static = fleet_bad_day(autoscale=False, smoke=smoke)
    assert autoscaled.chaos == static.chaos  # same faults, by construction
    assert autoscaled.serving == static.serving
    return {"autoscaled": autoscaled, "static": static}


def run_bad_day(smoke: bool = False) -> dict[str, SimReport]:
    """Run both arms; reports keyed by arm name."""
    return {
        arm: run(scenario, keep_raw=False)
        for arm, scenario in _arms(smoke).items()
    }


def _row(arm: str, r: SimReport) -> list:
    return [
        arm,
        r.completed,
        r.shed,
        f"{r.shed_fraction:.2%}",
        r.lost,
        r.retries,
        f"{r.availability:.2%}",
        r.goodput_rps,
        r.latency_p95_s * 1e3,
        r.usd_per_million_tokens,
        r.mean_time_to_recover_s * 1e3,
    ]


def _format(reports: dict[str, SimReport], smoke: bool) -> str:
    rows = [_row(arm, r) for arm, r in reports.items()]
    return format_table(
        [
            "arm",
            "served",
            "shed",
            "shed %",
            "lost",
            "retries",
            "avail",
            "goodput r/s",
            "p95 ms",
            "$/1Mtok",
            "recover ms",
        ],
        rows,
        title="Bad day: autoscaled vs static fleet under identical faults"
        + (" (smoke)" if smoke else ""),
    )


def _json_payload(reports: dict[str, SimReport], wall_s: float, smoke: bool) -> dict:
    """The ``BENCH_chaos.json`` record.

    Schema keys asserted by CI: ``bench``, ``smoke``, ``arms`` (each with
    ``availability``/``goodput_rps`` > 0), ``autoscaled_availability``,
    ``static_availability``.  Wall time is machine-dependent; the serving
    accounts are the cross-machine-comparable signal.
    """
    return {
        "bench": "chaos",
        "smoke": smoke,
        "wall_s": wall_s,
        "arms": {
            arm: {
                "scenario": r.scenario,
                "completed": r.completed,
                "shed": r.shed,
                "shed_fraction": r.shed_fraction,
                "failures": r.failures,
                "lost": r.lost,
                "retries": r.retries,
                "availability": r.availability,
                "goodput_rps": r.goodput_rps,
                "latency_p95_s": r.latency_p95_s,
                "usd_per_million_tokens": r.usd_per_million_tokens,
                "mean_time_to_recover_s": r.mean_time_to_recover_s,
                "peak_replicas": r.peak_replicas,
            }
            for arm, r in reports.items()
        },
        "autoscaled_availability": reports["autoscaled"].availability,
        "static_availability": reports["static"].availability,
    }


def _check(reports: dict[str, SimReport]) -> None:
    """The invariants CI re-asserts on the committed artefact."""
    auto, static = reports["autoscaled"], reports["static"]
    assert auto.goodput_rps > 0 and static.goodput_rps > 0
    assert auto.availability >= static.availability
    assert auto.failures >= 1  # the bad day actually happened
    assert auto.mean_time_to_recover_s > 0


def test_chaos(benchmark, results_dir):
    from conftest import publish, publish_json

    t0 = time.perf_counter()
    reports = run_bad_day(smoke=True)
    wall_s = time.perf_counter() - t0
    benchmark.pedantic(lambda: run_bad_day(smoke=True), rounds=1, iterations=1)
    _check(reports)
    publish(results_dir, "chaos_smoke", _format(reports, smoke=True))
    publish_json(results_dir, "BENCH_chaos_smoke", _json_payload(reports, wall_s, smoke=True))


def main() -> int:
    import argparse

    from conftest import publish_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized variant of the bad day"
    )
    args = parser.parse_args()

    t0 = time.perf_counter()
    reports = run_bad_day(smoke=args.smoke)
    wall_s = time.perf_counter() - t0
    table = _format(reports, smoke=args.smoke)
    print(table)
    _check(reports)

    results = Path(__file__).parent / "results"
    name = "BENCH_chaos_smoke" if args.smoke else "BENCH_chaos"
    out = publish_json(results, name, _json_payload(reports, wall_s, smoke=args.smoke))
    (results / ("chaos_smoke.txt" if args.smoke else "chaos.txt")).write_text(table + "\n")
    print(f"machine-readable trajectory: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
