"""Fig 16 (extension) — fleet-scale routing and reactive autoscaling.

The single-replica serving stack (PR 1) and its online re-placement loop
(PR 2) stop at one cluster; production MoE serving runs *fleets* of
replicas behind a request router, and the paper's placement angle makes
routing itself placement-aware: replicas carry placements fit to
different routing regimes, so the router's choice decides how often a
request's tokens cross GPUs.  This benchmark measures both fleet claims:

**Part A — routing policies.**  Four replicas (placements alternately fit
to two drifting regimes) serve one bursty arrival sequence whose regime
mix rotates diurnally, under each router: round-robin, join-shortest-
queue, power-of-two-choices, and affinity-aware (kept-mass scoring with a
congestion penalty).  Shape check: p2c and affinity strictly beat
round-robin on p95 latency — queue-aware beats blind cycling once load is
real, and placement-aware beats queue-aware because matched batches take
measurably cheaper decode steps.

**Part B — reactive autoscaling.**  A 4x flash crowd hits a two-replica
fleet.  The static fleet can only shed (admission keeps the SLO honest);
the autoscaled fleet boots replicas — paying the modelled cold start of
weight load + placement shuffle — and absorbs the wave.  Shape check: the
autoscaled fleet sheds < 1% of offered requests while the static fleet
sheds measurably more, and the autoscaled p95 stays below the static p95.
"""

from __future__ import annotations

from repro.scenarios import get_scenario
from repro.scenarios import run as run_scenario

from conftest import publish

ROUTERS = ("round-robin", "jsq", "p2c", "affinity")


def _run_routing(smoke: bool):
    """Part A through the registry: one ``fig16-routing-*`` preset per router."""
    suffix = "-smoke" if smoke else ""
    results = {}
    serving = None
    for router in ROUTERS:
        spec = get_scenario(f"fig16-routing-{router}{suffix}")
        serving = spec.serving
        results[router] = run_scenario(spec).raw
    return serving, results


def _run_flash(smoke: bool):
    """Part B through the registry: the two ``fig16-flash-*`` presets."""
    suffix = "-smoke" if smoke else ""
    auto_spec = get_scenario(f"fig16-flash-autoscale{suffix}")
    static_spec = get_scenario(f"fig16-flash-static{suffix}")
    auto = run_scenario(auto_spec).raw
    static = run_scenario(static_spec).raw
    return auto_spec.serving, {"auto": auto, "static": static}


def run(smoke: bool = False) -> tuple[str, dict]:
    routing_serving, routing = _run_routing(smoke)
    flash_serving, flash = _run_flash(smoke)

    from repro.analysis.report import format_table

    rows_a = [
        [
            router,
            res.served,
            len(res.shed),
            f"{res.latency.p50_s * 1e3:.2f}",
            f"{res.latency.p95_s * 1e3:.2f}",
            f"{res.latency.p99_s * 1e3:.2f}",
            f"{res.latency.p95_s / routing['round-robin'].latency.p95_s:.2f}x",
        ]
        for router, res in routing.items()
    ]
    table_a = format_table(
        ["router", "served", "shed", "p50 ms", "p95 ms", "p99 ms", "p95 vs rr"],
        rows_a,
        title=(
            "Fig 16a — routing policies, 4 heterogeneous replicas, bursty "
            f"arrivals at {routing_serving.arrival_rate_rps:g} req/s with a "
            "diurnally rotating two-regime mix"
        ),
    )

    rows_b = [
        [
            arm,
            res.offered,
            len(res.shed),
            f"{res.shed_fraction:.2%}",
            f"{res.latency.p95_s * 1e3:.2f}",
            sum(1 for e in res.scale_events if e.kind == "up"),
            res.peak_replicas,
            f"{max((e.cold_start_s for e in res.scale_events), default=0.0) * 1e3:.2f}",
            f"{res.gpu_hours * 3600:.3f}",
            f"{res.usd_per_million_tokens:.3f}",
        ]
        for arm, res in (("static", flash["static"]), ("autoscaled", flash["auto"]))
    ]
    table_b = format_table(
        ["fleet", "offered", "shed", "shed %", "p95 ms", "scale-ups", "peak",
         "cold start ms", "GPU-s", "$/1Mtok"],
        rows_b,
        title=(
            "Fig 16b — 4x flash crowd on a 2-replica fleet, reactive "
            "autoscaling vs static (cold start = weight load + placement "
            "shuffle, charged before the replica serves; spend priced at "
            "ClusterConfig.gpu_hour_usd)"
        ),
    )

    checks = {
        "routing": routing,
        "routing_serving": routing_serving,
        "flash": flash,
        "flash_serving": flash_serving,
        "smoke": smoke,
    }
    return table_a + "\n\n" + table_b, checks


def _json_payload(checks: dict) -> dict:
    """The ``BENCH_fleet.json`` record: config + tails + unit economics.

    Mirrors ``BENCH_engine.json``: a machine-readable perf trajectory so
    future fleet PRs (vectorized event loop, predictive autoscaling) can
    diff p95/shed/$-per-token instead of eyeballing the table.
    """
    routing = checks["routing"]
    serving = checks["routing_serving"]
    rr_p95_s = routing["round-robin"].latency.p95_s
    flash = checks["flash"]
    return {
        "bench": "fig16_fleet",
        "smoke": checks["smoke"],
        "config": {
            "arrival": serving.arrival,
            "arrival_rate_rps": serving.arrival_rate_rps,
            "num_requests": serving.num_requests,
            "prompt_len": serving.prompt_len,
            "generate_len": serving.generate_len,
        },
        "routing": {
            router: {
                "served": res.served,
                "shed": len(res.shed),
                "p50_ms": res.latency.p50_s * 1e3,
                "p95_ms": res.latency.p95_s * 1e3,
                "p99_ms": res.latency.p99_s * 1e3,
                "p95_vs_round_robin": res.latency.p95_s / rr_p95_s,
            }
            for router, res in routing.items()
        },
        "flash": {
            arm: {
                "offered": res.offered,
                "shed_fraction": res.shed_fraction,
                "p95_ms": res.latency.p95_s * 1e3,
                "peak_replicas": res.peak_replicas,
                "scale_ups": sum(1 for e in res.scale_events if e.kind == "up"),
                "gpu_hours": res.gpu_hours,
                "usd_per_million_tokens": res.usd_per_million_tokens,
                "makespan_s": res.makespan_s,
            }
            for arm, res in (("static", flash["static"]), ("autoscaled", flash["auto"]))
        },
    }


def _assert_claims(checks: dict) -> None:
    routing = checks["routing"]
    serving = checks["routing_serving"]
    for router, res in routing.items():
        # latency study: nothing shed, every request accounted for
        assert res.served == serving.num_requests, router
        assert res.shed == (), router
    rr = routing["round-robin"].latency.p95_s
    # the headline routing claim: queue-aware and placement-aware routing
    # strictly beat blind cycling on tail latency under loaded bursty traffic
    assert routing["p2c"].latency.p95_s < rr, "p2c must beat round-robin on p95"
    assert routing["affinity"].latency.p95_s < rr, "affinity must beat round-robin on p95"

    auto, static = checks["flash"]["auto"], checks["flash"]["static"]
    total = checks["flash_serving"].num_requests
    assert auto.offered == static.offered == total
    # the autoscaling claim: < 1% shed with scaling, measurably more without
    assert auto.shed_fraction < 0.01, f"autoscaled fleet shed {auto.shed_fraction:.2%}"
    assert static.shed_fraction > max(0.02, 2.0 * auto.shed_fraction), (
        f"static fleet shed only {static.shed_fraction:.2%}"
    )
    assert auto.latency.p95_s < static.latency.p95_s
    ups = [e for e in auto.scale_events if e.kind == "up"]
    assert ups and all(e.cold_start_s > 0 for e in ups)
    assert auto.peak_replicas > static.peak_replicas
    assert static.scale_events == ()
    # cost accounting: both arms bill real GPU-hours and unit economics;
    # the autoscaled fleet runs strictly more replica-hours per wall-second
    assert auto.gpu_hours > 0 and static.gpu_hours > 0
    assert auto.usd_per_million_tokens > 0 and static.usd_per_million_tokens > 0
    assert (auto.gpu_hours / auto.makespan_s) > (static.gpu_hours / static.makespan_s)


def test_fig16_fleet_routing(benchmark, results_dir):
    from conftest import publish_json

    benchmark.pedantic(lambda: _run_flash(smoke=True), rounds=1, iterations=1)

    table, checks = run(smoke=False)
    publish(results_dir, "fig16_fleet_routing", table)
    publish_json(results_dir, "BENCH_fleet", _json_payload(checks))
    _assert_claims(checks)


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    from conftest import publish_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI: same pipeline, seconds not minutes",
    )
    args = parser.parse_args()
    table, checks = run(smoke=args.smoke)
    print(table)
    _assert_claims(checks)
    out = publish_json(
        Path(__file__).parent / "results", "BENCH_fleet", _json_payload(checks)
    )
    print(f"machine-readable trajectory: {out}")
    print("fig16 claims hold")
