"""Quickstart: profile a MoE model, solve expert placement, compare serving.

This walks the ExFlow pipeline exactly as the paper deploys it:

1. pick a pre-trained model (Table II preset) and a cluster shape;
2. collect an offline routing trace (here: from the Markov routing model
   standing in for the pre-trained checkpoint's router);
3. fit an affinity-aware expert placement (staged ILP);
4. simulate serving under DeepSpeed-style vanilla expert parallelism,
   ExFlow without affinity, and full ExFlow.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ExFlowOptimizer,
    InferenceConfig,
    MarkovRoutingModel,
    compare_modes,
    paper_model,
    wilkes3,
)
from repro.analysis.report import format_table


def main() -> None:
    model = paper_model("gpt-m-350m-e32")
    cluster = wilkes3(num_nodes=4)  # 4 nodes x 4 GPUs, the paper's testbed shape
    print(f"model: {model.name} ({model.num_moe_layers} MoE layers, {model.num_experts} experts)")
    print(f"cluster: {cluster.num_nodes} nodes x {cluster.gpus_per_node} GPUs\n")

    # --- offline profiling -------------------------------------------------
    routing = MarkovRoutingModel.with_affinity(
        model.num_experts, model.num_moe_layers, affinity=0.85,
        rng=np.random.default_rng(1),
    )
    profile = routing.sample(3000, np.random.default_rng(2))  # Fig 13: 3k tokens suffice

    opt = ExFlowOptimizer(model, cluster, strategy="staged")
    plan = opt.fit(profile)
    print(f"profiling trace: {plan.profile_tokens} tokens, "
          f"scaled affinity {plan.profile_affinity:.3f}")
    print("expected locality under placement: "
          f"{plan.expected_locality.gpu_stay_fraction:.1%} same-GPU, "
          f"{plan.expected_locality.node_stay_fraction:.1%} same-node\n")

    # --- serving comparison ---------------------------------------------------
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=16)
    rows = compare_modes(
        model, cluster, infer, routing=routing, profile_trace=profile, seed=3
    )

    table = [
        [
            label,
            row.result.throughput_tokens_per_s,
            row.speedup,
            row.comm_reduction,
            row.result.alltoall_fraction,
            row.result.gpu_stay_fraction,
        ]
        for label, row in rows.items()
    ]
    print(
        format_table(
            ["strategy", "tokens/s", "speedup", "comm reduction", "alltoall share", "GPU-stay"],
            table,
            title="End-to-end serving comparison",
        )
    )


if __name__ == "__main__":
    main()
