"""Quickstart: one declarative Scenario, one ``run()``, every simulator.

The Scenario API is the front door of the reproduction: a frozen spec
names a model, a cluster and a workload; ``repro.run`` dispatches it to
the right simulator (batch comparison, continuous-batching serving,
online re-placement, or fleet) and returns one ``SimReport`` schema.

This walks the same ExFlow pipeline as the paper, facade-first:

1. enumerate the registered presets (every paper figure + the drift and
   flash-crowd workloads, each with a CI-sized ``-smoke`` variant);
2. run the end-to-end comparison preset and read the speedups;
3. declare a custom serving scenario and sweep its arrival rate across a
   multiprocessing pool;
4. round-trip a scenario through JSON — the reproduction artifact that
   ``repro run --scenario file.json`` replays.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import dataclasses

from repro import (
    ClusterConfig,
    Scenario,
    ServingConfig,
    get_scenario,
    list_scenarios,
    paper_model,
    run,
    run_sweep,
)
from repro.analysis.report import format_table


def main() -> None:
    # --- the registry: scenarios are enumerable, not hand-wired ------------
    names = list_scenarios(smoke=False)
    print(f"{len(names)} full-size presets registered "
          f"({len(list_scenarios())} incl. -smoke variants):")
    for kind in ("batch", "serving", "online", "fleet"):
        print(f"  {kind:8s} {', '.join(list_scenarios(kind=kind, smoke=False))}")
    print()

    # --- one call runs a paper figure --------------------------------------
    report = run("fig10-end-to-end-smoke")
    print(f"scenario `{report.scenario}` ({report.kind}): "
          f"{report.throughput_tokens_per_s:,.0f} tokens/s, "
          f"ExFlow speedup {report.extra['speedup_exflow']:.2f}x "
          f"(w/o affinity {report.extra['speedup_noaff']:.2f}x)\n")

    # --- declare your own scenario and sweep a parameter grid --------------
    base = Scenario(
        name="quickstart-serve",
        model=paper_model("gpt-m-350m-e8"),
        cluster=ClusterConfig(num_nodes=2, gpus_per_node=2),
        serving=ServingConfig(
            arrival="bursty",
            arrival_rate_rps=200.0,
            num_requests=64,
            generate_len=8,
            max_batch_requests=16,
            prompt_len=32,
        ),
    )
    grid = [
        dataclasses.replace(
            base,
            name=f"quickstart-rate{int(rate)}",
            serving=dataclasses.replace(base.serving, arrival_rate_rps=rate),
        )
        for rate in (100.0, 200.0, 400.0, 800.0)
    ]
    rows = [
        [
            rep.scenario,
            rep.completed,
            rep.latency_p50_s * 1e3,
            rep.latency_p95_s * 1e3,
            rep.throughput_tokens_per_s,
            rep.usd_per_million_tokens,
        ]
        for rep in run_sweep(grid)  # multiprocessing over the grid
    ]
    print(
        format_table(
            ["scenario", "served", "p50 ms", "p95 ms", "tokens/s", "$/1Mtok"],
            rows,
            title="arrival-rate sweep (continuous batching, bursty arrivals)",
        )
    )

    # --- scenarios serialize: the reproduction artifact --------------------
    spec = get_scenario("fig15-abrupt-smoke")
    restored = Scenario.from_json(spec.to_json())
    assert restored == spec
    print(f"\n`{spec.name}` round-trips through JSON "
          f"({len(spec.to_json())} bytes); replay it with:\n"
          "    python -m repro run fig15-abrupt-smoke")


if __name__ == "__main__":
    main()
