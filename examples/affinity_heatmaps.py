"""Reproduce Fig 2's affinity heatmaps from a real (numpy) MoE model.

Builds a 12-layer MoE-32 decoder (the paper's GPT 350M MoE-32 shape at
proxy width), runs synthetic-Pile documents through it, estimates the
conditional routing probability between consecutive layers, and renders the
four layer pairs the paper shows as ASCII heatmaps.  The visual claim to
check: each *row* has only a few hot columns — strong inter-layer affinity.

Run:  python examples/affinity_heatmaps.py
"""

from __future__ import annotations

import numpy as np

from repro import ModelConfig, MoETransformer, collect_trace, make_corpus
from repro.analysis.heatmap import ascii_heatmap
from repro.core.affinity import affinity_concentration, affinity_matrix


def main() -> None:
    # 12 MoE layers x 32 experts as in Fig 2, at proxy hidden width
    config = ModelConfig(
        name="gpt-350m-moe32-proxy",
        num_layers=12,
        num_experts=32,
        d_model=64,
        vocab_size=512,
        num_heads=4,
    )
    model = MoETransformer(config, np.random.default_rng(0))
    corpus = make_corpus("pile", vocab_size=512, num_topics=32)

    print("profiling 4000 tokens through the model's gates...\n")
    trace = collect_trace(model, corpus, 4000, doc_len=32, rng=np.random.default_rng(1))

    for prev, nxt in [(0, 1), (3, 4), (7, 8), (10, 11)]:
        matrix = affinity_matrix(trace, prev)
        conc = affinity_concentration(trace, prev, top=2)
        chance = 2 / config.num_experts
        print(
            ascii_heatmap(
                matrix,
                title=(
                    f"Expert affinity between layer {prev} and layer {nxt} "
                    f"(top-2 row mass {conc:.2f}, memoryless chance {chance:.2f})"
                ),
                row_label=f"experts at layer {prev}",
                col_label=f"experts at layer {nxt}",
            )
        )


if __name__ == "__main__":
    main()
