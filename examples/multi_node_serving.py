"""Multi-node serving study: where does the time go as the cluster grows?

Scales the paper's GPT MoE-32 across 1..8 nodes and reports, per node
count, the vanilla runtime decomposition (Fig 9: Alltoall share explodes
with node count) and the ExFlow speedup (Fig 10: biggest wins where each
GPU holds several experts).

Run:  python examples/multi_node_serving.py
"""

from __future__ import annotations

from repro import InferenceConfig, compare_modes, paper_model, wilkes3
from repro.analysis.report import format_table


def main() -> None:
    model = paper_model("gpt-m-350m-e32")
    infer = InferenceConfig(requests_per_gpu=8, prompt_len=64, generate_len=8)

    rows = []
    for nodes in (1, 2, 4, 8):
        cluster = wilkes3(nodes)
        if model.num_experts % cluster.num_gpus:
            continue
        comparison = compare_modes(model, cluster, infer, seed=0)
        vanilla = comparison["deepspeed"].result
        exflow = comparison["exflow"]
        experts_per_gpu = model.num_experts // cluster.num_gpus
        rows.append(
            [
                nodes,
                cluster.num_gpus,
                experts_per_gpu,
                vanilla.alltoall_fraction,
                exflow.result.gpu_stay_fraction,
                exflow.speedup,
                comparison["exflow-noaff"].speedup,
            ]
        )

    print(
        format_table(
            [
                "nodes",
                "GPUs",
                "experts/GPU",
                "vanilla alltoall share",
                "ExFlow GPU-stay",
                "ExFlow speedup",
                "coherence-only speedup",
            ],
            rows,
            title=f"{model.name}: scaling across nodes (4 GPUs per node)",
        )
    )
    print(
        "\nReading guide: the Alltoall share of the vanilla runtime should rise"
        "\nsteeply with node count (Fig 9), and ExFlow's advantage should be"
        "\nlargest while each GPU still holds several experts (Fig 10)."
    )


if __name__ == "__main__":
    main()
