"""Placement solver playground: quality vs cost across strategies.

Runs every placement solver on one profiling trace and compares the
locality each achieves (in-sample and out-of-sample) plus solve time.
Useful for choosing a solver for your own deployment — and for seeing why
the paper's global optimisation beats the local greedy heuristic.

Run:  python examples/placement_playground.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import MarkovRoutingModel, wilkes3
from repro.analysis.report import format_table
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import solve_placement


def main() -> None:
    cluster = wilkes3(num_nodes=2)  # 8 GPUs
    experts, layers = 32, 24
    routing = MarkovRoutingModel.with_affinity(
        experts, layers, affinity=0.85, rng=np.random.default_rng(0)
    )
    profile = routing.sample(3000, np.random.default_rng(1))
    fresh = routing.sample(5000, np.random.default_rng(2))

    rows = []
    for strategy in ("vanilla", "greedy", "local-search", "ilp", "staged"):
        start = time.perf_counter()
        placement = solve_placement(strategy, profile, cluster)
        solve_s = time.perf_counter() - start
        ins = placement_locality(placement, profile, cluster)
        oos = placement_locality(placement, fresh, cluster)
        rows.append(
            [
                strategy,
                solve_s,
                ins.gpu_stay_fraction,
                oos.gpu_stay_fraction,
                oos.node_stay_fraction,
                oos.inter_node_crossings_per_token,
            ]
        )

    print(
        format_table(
            [
                "solver",
                "solve time (s)",
                "in-sample GPU-stay",
                "out-of-sample GPU-stay",
                "out-of-sample node-stay",
                "inter-node crossings/token",
            ],
            rows,
            title=f"MoE-{experts}, {layers} layers on {cluster.num_gpus} GPUs "
            f"({cluster.num_nodes} nodes)",
        )
    )


if __name__ == "__main__":
    main()
