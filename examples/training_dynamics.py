"""Training dynamics of expert affinity (the paper's Figs 11 and 12).

Trains gate stacks from scratch (GShard balance loss + specialisation
pressure) for several expert counts and prints two timelines per run:

* the final layer's expert-usage shares (Fig 11: early skew, later balance);
* the scaled affinity metric (Fig 12: early oscillation/dip, then a steady
  climb as experts become domain-specific).

Run:  python examples/training_dynamics.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_series
from repro.training.evolution import track_affinity_evolution


def main() -> None:
    timelines = {}
    for experts in (8, 16, 32):
        timelines[experts] = track_affinity_evolution(
            num_experts=experts,
            num_layers=6,
            total_iterations=200,
            checkpoints=11,
            probe_tokens=1024,
            seed=experts,
        )

    any_tl = next(iter(timelines.values()))
    print(
        format_series(
            any_tl.iterations.tolist(),
            {f"{e} experts": tl.affinity.tolist() for e, tl in timelines.items()},
            x_label="iteration",
            title="Scaled expert affinity during training (Fig 12)",
        )
    )

    print("\nLoad imbalance (max/mean expert usage) at the last MoE layer (Fig 11):")
    print(
        format_series(
            any_tl.iterations.tolist(),
            {f"{e} experts": tl.imbalance.tolist() for e, tl in timelines.items()},
            x_label="iteration",
        )
    )

    tl8 = timelines[8]
    hot = np.argsort(-tl8.last_layer_share[1])[:3]
    print(
        "\n8-expert run detail: top-3 experts at iteration "
        f"{tl8.iterations[1]} held {tl8.last_layer_share[1][hot].sum():.0%} of tokens; "
        f"by iteration {tl8.iterations[-1]} the same experts hold "
        f"{tl8.last_layer_share[-1][hot].sum():.0%}."
    )


if __name__ == "__main__":
    main()
