"""Unit tests for cold-start pricing, the reactive autoscaler, scale-down
request migration and fleet cost accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, FleetConfig, ModelConfig, ServingConfig
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.fleet.autoscaler import ReactiveAutoscaler, price_cold_start
from repro.fleet.replica import ReplicaState
from repro.fleet.simulate import _simulate_fleet_cluster_serving
from repro.trace.markov import MarkovRoutingModel


@pytest.fixture(scope="module")
def model():
    return ModelConfig(name="as-test", num_layers=4, num_experts=8, d_model=64, num_heads=4)


@pytest.fixture(scope="module")
def cluster():
    return ClusterConfig(num_nodes=2, gpus_per_node=2)


class TestColdStart:
    def test_vanilla_target_has_no_shuffle(self, model, cluster):
        flat = vanilla_placement(model.num_moe_layers, model.num_experts, cluster.num_gpus)
        cost = price_cold_start(model, cluster, flat)
        assert cost.placement_shuffle_s == 0.0
        assert cost.weight_load_s > 0.0
        assert cost.total_s == cost.weight_load_s

    def test_weight_load_is_one_shard_over_inter_link(self, model, cluster):
        flat = vanilla_placement(model.num_moe_layers, model.num_experts, cluster.num_gpus)
        cost = price_cold_start(model, cluster, flat)
        shard = (
            cluster.experts_per_gpu(model.num_experts)
            * model.num_moe_layers
            * model.expert_bytes()
        )
        assert cost.weight_load_s == pytest.approx(cluster.inter_link.transfer_time(shard))

    def test_affinity_target_pays_shuffle(self, model, cluster):
        trace = MarkovRoutingModel.with_affinity(8, 4, 0.9).sample(
            1000, np.random.default_rng(0)
        )
        fitted = greedy_placement(trace, cluster.num_gpus)
        assert (fitted.gpu_of != vanilla_placement(4, 8, 4).gpu_of).any()
        cost = price_cold_start(model, cluster, fitted)
        assert cost.placement_shuffle_s > 0.0

    def test_overhead_adds(self, model, cluster):
        flat = vanilla_placement(model.num_moe_layers, model.num_experts, cluster.num_gpus)
        base = price_cold_start(model, cluster, flat)
        padded = price_cold_start(model, cluster, flat, boot_overhead_s=0.5)
        assert padded.total_s == pytest.approx(base.total_s + 0.5)
        with pytest.raises(ValueError):
            price_cold_start(model, cluster, flat, boot_overhead_s=-1.0)


def _fleet(**kwargs) -> FleetConfig:
    defaults = dict(
        num_replicas=2,
        autoscale=True,
        min_replicas=1,
        max_replicas=4,
        scale_up_queue_per_replica=4.0,
        scale_down_queue_per_replica=0.5,
        scale_dwell_checks=2,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


class TestReactiveAutoscaler:
    def test_requires_dwell_before_up(self):
        scaler = ReactiveAutoscaler(_fleet())
        assert scaler.decide(queued=20, live=2, booting=0) is None  # 1st over
        assert scaler.decide(queued=20, live=2, booting=0) == "up"  # 2nd over

    def test_calm_tick_resets_dwell(self):
        scaler = ReactiveAutoscaler(_fleet())
        assert scaler.decide(20, 2, 0) is None
        assert scaler.decide(4, 2, 0) is None  # between thresholds: reset
        assert scaler.decide(20, 2, 0) is None  # counting from scratch
        assert scaler.decide(20, 2, 0) == "up"

    def test_booting_counts_toward_capacity(self):
        scaler = ReactiveAutoscaler(_fleet(scale_dwell_checks=1))
        # 20 queued over 2 live would trigger, but 3 booting absorb it
        assert scaler.decide(20, 2, 3) is None

    def test_max_replicas_caps_up(self):
        scaler = ReactiveAutoscaler(_fleet(scale_dwell_checks=1, max_replicas=2))
        assert scaler.decide(50, 2, 0) is None

    def test_scale_down_after_dwell(self):
        scaler = ReactiveAutoscaler(_fleet())
        assert scaler.decide(0, 3, 0) is None
        assert scaler.decide(0, 3, 0) == "down"

    def test_never_below_min(self):
        scaler = ReactiveAutoscaler(_fleet(scale_dwell_checks=1, min_replicas=2))
        assert scaler.decide(0, 2, 0) is None

    def test_pending_boot_blocks_down(self):
        scaler = ReactiveAutoscaler(_fleet(scale_dwell_checks=1))
        assert scaler.decide(0, 3, 1) is None

    def test_action_resets_its_counter(self):
        scaler = ReactiveAutoscaler(_fleet())
        scaler.decide(20, 2, 0)
        assert scaler.decide(20, 2, 0) == "up"
        # immediately after acting, dwell starts over
        assert scaler.decide(20, 2, 1) is None


def _drain_run(model, cluster, migrate: bool, queue_cap: int = 1000):
    """A burst that leaves deep queues, then silence: scale-down fires while
    the victim replica still holds queued-but-unadmitted requests."""
    serving = ServingConfig(
        arrival_rate_rps=30000.0,
        num_requests=220,
        generate_len=6,
        max_batch_requests=4,
        prompt_len=8,
        seed=11,
    )
    fleet = FleetConfig(
        num_replicas=2,
        router="jsq",
        autoscale=True,
        min_replicas=1,
        max_replicas=2,
        slo_ms=10000.0,  # no shedding: isolate the drain behaviour
        batch_slo_ms=100000.0,
        max_queue_per_replica=queue_cap,
        autoscale_check_every_s=0.001,
        scale_up_queue_per_replica=500.0,
        scale_down_queue_per_replica=40.0,
        scale_dwell_checks=1,
        migrate_on_drain=migrate,
    )
    return _simulate_fleet_cluster_serving(model, cluster, serving, fleet)


class TestScaleDownMigration:
    @pytest.fixture(scope="class")
    def runs(self, model, cluster):
        with_migration = _drain_run(model, cluster, migrate=True)
        without = _drain_run(model, cluster, migrate=False)
        return with_migration, without

    def _drained(self, res):
        stopped = [
            r for r in res.replicas if r.final_state == ReplicaState.STOPPED.value
        ]
        assert stopped, "scenario must actually drain a replica"
        return stopped[0]

    def test_drain_time_shrinks(self, runs):
        with_migration, without = runs
        fast = self._drained(with_migration)
        slow = self._drained(without)
        # same replica drains in both arms (identical prefix up to the
        # decision); handing its queue back must stop it strictly earlier
        assert fast.replica_id == slow.replica_id
        assert fast.stopped_at_s < slow.stopped_at_s
        # the migrated queue moved elsewhere, so the victim serves fewer
        assert fast.served < slow.served

    def test_no_request_is_lost(self, runs):
        for res in runs:
            assert res.served == 220
            assert res.shed == ()

    def test_migration_preserves_total_service(self, runs):
        with_migration, without = runs
        assert with_migration.served == without.served
        # every migrated request completes on a surviving replica
        assert sum(r.served for r in with_migration.replicas) == with_migration.served

    def test_migration_with_tight_cap_conserves_requests(self, model, cluster):
        # a cap small enough that survivors can't absorb the whole orphan
        # queue: overflow stays on the victim and drains in place; requests
        # are never lost to migration (any shed is arrival-time admission)
        res = _drain_run(model, cluster, migrate=True, queue_cap=48)
        assert res.served + len(res.shed) == 220
        assert {s.reason for s in res.shed} <= {"queue-full", "deadline"}
        assert sum(r.served for r in res.replicas) == res.served


class TestFleetCostAccounting:
    def test_static_fleet_bills_replicas_for_makespan(self, model, cluster):
        serving = ServingConfig(
            arrival_rate_rps=900.0,
            num_requests=40,
            generate_len=4,
            max_batch_requests=8,
            prompt_len=8,
            seed=0,
        )
        res = _simulate_fleet_cluster_serving(
            model, cluster, serving, FleetConfig(num_replicas=2, router="jsq")
        )
        expected_hours = 2 * cluster.num_gpus * res.makespan_s / 3600.0
        assert res.gpu_hours == pytest.approx(expected_hours)
        assert res.cost_usd == pytest.approx(res.gpu_hours * cluster.gpu_hour_usd)
        assert res.usd_per_million_tokens == pytest.approx(
            res.cost_usd / (res.generated_tokens / 1e6)
        )
        assert res.generated_tokens == sum(
            c.request.generate_len for c in res.completed
        )
        per_replica = sum(r.gpu_hours for r in res.replicas)
        assert per_replica == pytest.approx(res.gpu_hours)

    def test_drained_replica_stops_billing(self, model, cluster):
        res = _drain_run(model, cluster, migrate=True)
        drained = [
            r for r in res.replicas if r.final_state == ReplicaState.STOPPED.value
        ][0]
        live = [
            r for r in res.replicas if r.final_state == ReplicaState.ACTIVE.value
        ][0]
        assert drained.gpu_hours < live.gpu_hours

    def test_zero_price_cluster_costs_nothing(self, model):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2, gpu_hour_usd=0.0)
        serving = ServingConfig(
            arrival_rate_rps=900.0,
            num_requests=20,
            generate_len=4,
            max_batch_requests=8,
            prompt_len=8,
        )
        res = _simulate_fleet_cluster_serving(
            model, cluster, serving, FleetConfig(num_replicas=1, router="jsq")
        )
        assert res.gpu_hours > 0
        assert res.cost_usd == 0.0
        assert res.usd_per_million_tokens == 0.0

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=1, gpus_per_node=2, gpu_hour_usd=-1.0)


class TestFleetConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_replicas": 0},
            {"router": "random"},
            {"num_regimes": 0},
            {"slo_ms": 0.0},
            {"slo_ms": 500.0, "batch_slo_ms": 100.0},
            {"interactive_fraction": 1.5},
            {"shed_slack": 0.0},
            {"max_queue_per_replica": 0},
            {"min_replicas": 0},
            {"num_replicas": 9, "max_replicas": 8},
            {"min_replicas": 5, "num_replicas": 4},
            {"scale_down_queue_per_replica": -1.0},
            {"scale_up_queue_per_replica": 0.2, "scale_down_queue_per_replica": 0.5},
            {"autoscale_check_every_s": 0.0},
            {"scale_dwell_checks": 0},
            {"boot_overhead_s": -0.1},
            {"affinity_load_weight": -0.1},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs)

    def test_defaults_valid(self):
        fleet = FleetConfig()
        assert fleet.router in ("round-robin", "jsq", "p2c", "affinity")
        assert fleet.slo_s == pytest.approx(0.4)
        assert fleet.batch_slo_s == pytest.approx(4.0)
