"""Unit tests for repro.model.tensors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.tensors import (
    cross_entropy,
    gelu,
    layer_norm,
    log_softmax,
    normal_init,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_stable_for_large_values(self):
        x = np.array([[1e4, 0.0]])
        out = softmax(x)
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_axis(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(2).normal(size=(4, 6))
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))


class TestLayerNorm:
    def test_zero_mean_unit_var(self):
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(10, 16))
        out = layer_norm(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_constant_row_stays_finite(self):
        out = layer_norm(np.full((2, 8), 3.0))
        assert np.isfinite(out).all()


class TestGelu:
    def test_zero_at_zero(self):
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_approximates_identity_for_large_x(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)

    def test_monotone_on_positive_axis(self):
        x = np.linspace(0, 5, 50)
        assert (np.diff(gelu(x)) > 0).all()


class TestInit:
    def test_shape(self):
        w = normal_init(np.random.default_rng(0), 4, 8)
        assert w.shape == (4, 8)

    def test_default_scale_fan_in(self):
        w = normal_init(np.random.default_rng(0), 1000, 10)
        assert w.std() == pytest.approx(1.0 / np.sqrt(1000), rel=0.1)

    def test_deterministic_given_seed(self):
        a = normal_init(np.random.default_rng(5), 3, 3)
        b = normal_init(np.random.default_rng(5), 3, 3)
        assert np.array_equal(a, b)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        assert out.tolist() == [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_multidim(self):
        out = one_hot(np.array([[0, 1], [1, 0]]), 2)
        assert out.shape == (2, 2, 2)
        assert out.sum() == 4.0


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_is_log_vocab(self):
        logits = np.zeros((4, 8))
        assert cross_entropy(logits, np.zeros(4, dtype=int)) == pytest.approx(np.log(8))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))
