"""Unit tests for repro.core.placement.replication (Lina-style baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, ModelConfig
from repro.core.placement.base import placement_locality
from repro.core.placement.replication import (
    ReplicatedPlacement,
    popularity_replication,
    replicated_locality,
    validate_replication_memory,
)
from repro.core.placement.vanilla import vanilla_placement
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel


@pytest.fixture
def trace():
    model = MarkovRoutingModel.with_affinity(8, 4, 0.85, rng=np.random.default_rng(1))
    return model.sample(2000, np.random.default_rng(2))


class TestConstruction:
    def test_popularity_picks_hot_experts(self, trace):
        rep = popularity_replication(trace, num_gpus=4, replicas_per_layer=2)
        for j in range(trace.num_layers):
            hist = trace.layer_histogram(j)
            hot = set(np.argsort(-hist)[:2].tolist())
            assert set(rep.replicated[j].tolist()) == hot

    def test_memory_overhead(self, trace):
        rep = popularity_replication(trace, num_gpus=4, replicas_per_layer=2)
        assert rep.replicas_per_gpu_per_layer == 2.0
        assert rep.memory_overhead_fraction() == pytest.approx(1.0)  # 2 replicas / 2 owned

    def test_zero_replicas(self, trace):
        rep = popularity_replication(trace, num_gpus=4, replicas_per_layer=0)
        assert rep.memory_overhead_fraction() == 0.0

    def test_rejects_too_many(self, trace):
        with pytest.raises(ValueError):
            popularity_replication(trace, num_gpus=4, replicas_per_layer=9)

    def test_rejects_negative(self, trace):
        with pytest.raises(ValueError):
            popularity_replication(trace, num_gpus=4, replicas_per_layer=-1)

    def test_rejects_out_of_range_replica(self):
        base = vanilla_placement(2, 4, 2)
        with pytest.raises(ValueError):
            ReplicatedPlacement(base, (np.array([0]), np.array([7])))

    def test_rejects_wrong_layer_count(self):
        base = vanilla_placement(2, 4, 2)
        with pytest.raises(ValueError):
            ReplicatedPlacement(base, (np.array([0]),))

    def test_is_local(self):
        base = vanilla_placement(1, 4, 2)  # experts 0,1 -> gpu0; 2,3 -> gpu1
        rep = ReplicatedPlacement(base, (np.array([3]),))
        assert rep.is_local(0, 0, 0)  # owned
        assert rep.is_local(0, 3, 0)  # replica
        assert not rep.is_local(0, 2, 0)


class TestLocality:
    def test_zero_replicas_matches_base(self, trace):
        """Without replicas the replay must agree with placement_locality."""
        base = vanilla_placement(trace.num_layers, trace.num_experts, 4)
        rep = popularity_replication(trace, 4, 0, base=base)
        a = replicated_locality(rep, trace)
        # replicated replay keeps tokens where routing sends them (context-
        # coherent movement), matching the placement-level locality metric
        b = placement_locality(base, trace)
        assert a.gpu_stay_fraction == pytest.approx(b.gpu_stay_fraction)

    def test_more_replicas_more_locality(self, trace):
        stays = []
        for k in (0, 2, 4, 8):
            rep = popularity_replication(trace, 4, k)
            stays.append(replicated_locality(rep, trace).gpu_stay_fraction)
        assert all(b >= a - 1e-12 for a, b in zip(stays, stays[1:], strict=False))

    def test_full_replication_is_fully_local(self, trace):
        rep = popularity_replication(trace, 4, trace.num_experts)
        assert replicated_locality(rep, trace).gpu_stay_fraction == pytest.approx(1.0)

    def test_empty_trace(self):
        base = vanilla_placement(2, 4, 2)
        rep = ReplicatedPlacement(base, (np.array([]), np.array([])))
        empty = RoutingTrace(np.zeros((0, 2), dtype=int), num_experts=4)
        assert replicated_locality(rep, empty).transitions == 0

    def test_shape_mismatch(self, trace):
        base = vanilla_placement(3, 8, 4)
        rep = ReplicatedPlacement(base, tuple(np.array([]) for _ in range(3)))
        with pytest.raises(ValueError):
            replicated_locality(rep, trace)


class TestMemoryBudget:
    @pytest.fixture
    def model(self):
        return ModelConfig(
            name="rep-mem", num_layers=4, num_experts=8, d_model=32, num_heads=4
        )

    @pytest.fixture
    def cluster(self):
        return ClusterConfig(num_nodes=2, gpus_per_node=2)

    def test_bytes_count_owned_plus_foreign_replicas(self):
        # vanilla on 2 GPUs: both layers own gpu0={0,1}, gpu1={2,3}.
        # layer-0 replica {0} is already owned by gpu0, layer-1 replica {2}
        # by gpu1 — each GPU stores 5 experts, not the naive 6
        small = ModelConfig(
            name="rep-tiny", num_layers=2, num_experts=4, d_model=32, num_heads=4
        )
        base = vanilla_placement(2, 4, 2)
        rep = ReplicatedPlacement(base, (np.array([0]), np.array([2])))
        assert rep.memory_bytes_per_gpu(small) == 5 * small.expert_bytes()

    def test_full_replication_not_double_counted(self):
        # with every expert replicated everywhere, each GPU holds exactly
        # num_experts per layer — owned copies must not be counted twice
        small = ModelConfig(
            name="rep-tiny", num_layers=2, num_experts=4, d_model=32, num_heads=4
        )
        base = vanilla_placement(2, 4, 2)
        rep = ReplicatedPlacement(
            base, (np.arange(4), np.arange(4))
        )
        assert rep.memory_bytes_per_gpu(small) == 2 * 4 * small.expert_bytes()

    def test_worst_case_gpu_is_least_overlapping(self):
        small = ModelConfig(
            name="rep-tiny", num_layers=2, num_experts=4, d_model=32, num_heads=4
        )
        base = vanilla_placement(2, 4, 2)
        # both layers replicate gpu0's experts: gpu1 stores 2 owned + 2
        # foreign per layer (the worst case), gpu0 just its own shard
        rep = ReplicatedPlacement(base, (np.array([0, 1]), np.array([0, 1])))
        assert rep.memory_bytes_per_gpu(small) == 2 * 4 * small.expert_bytes()

    def test_bytes_reject_model_mismatch(self, trace, model):
        rep = popularity_replication(trace, 4, 1)
        wrong = ModelConfig(
            name="wrong", num_layers=6, num_experts=8, d_model=32, num_heads=4
        )
        with pytest.raises(ValueError):
            rep.memory_bytes_per_gpu(wrong)

    def test_fitting_plan_passes(self, trace, model, cluster):
        rep = popularity_replication(trace, 4, 2)
        validate_replication_memory(rep, model, cluster)  # must not raise

    def test_overflowing_plan_raises(self, trace, model):
        rep = popularity_replication(trace, 4, trace.num_experts)
        tiny = ClusterConfig(
            num_nodes=2,
            gpus_per_node=2,
            gpu_memory_bytes=rep.memory_bytes_per_gpu(model) - 1,
        )
        with pytest.raises(ValueError, match="GiB"):
            validate_replication_memory(rep, model, tiny)

    def test_budget_boundary_is_inclusive(self, trace, model):
        rep = popularity_replication(trace, 4, 1)
        exact = ClusterConfig(
            num_nodes=2,
            gpus_per_node=2,
            gpu_memory_bytes=rep.memory_bytes_per_gpu(model),
        )
        validate_replication_memory(rep, model, exact)  # exactly full still fits

    def test_rejects_cluster_mismatch(self, trace, model):
        rep = popularity_replication(trace, 4, 1)
        with pytest.raises(ValueError, match="GPUs"):
            validate_replication_memory(
                rep, model, ClusterConfig(num_nodes=4, gpus_per_node=2)
            )

    def test_public_api_reachable(self):
        import repro

        assert repro.ReplicatedPlacement is ReplicatedPlacement
        assert repro.popularity_replication is popularity_replication
        assert repro.validate_replication_memory is validate_replication_memory


class TestVsExFlow:
    def test_exflow_matches_replication_without_memory(self, trace):
        """The paper's Related-Work claim: affinity placement achieves
        comparable locality to popularity replication *without* replicas."""
        from repro.core.placement.ilp import ilp_placement

        exflow = ilp_placement(trace, 4)
        exflow_stay = placement_locality(exflow, trace).gpu_stay_fraction

        # give the replication baseline a 2-replica budget (100 % memory
        # overhead at 2 owned experts/GPU)
        rep = popularity_replication(trace, 4, 2)
        rep_stay = replicated_locality(rep, trace).gpu_stay_fraction

        assert exflow_stay > rep_stay - 0.05
